//! PLCP (Physical Layer Convergence Procedure) framing for 802.11b.
//!
//! Long-preamble format (IEEE 802.11-2007 §18.2.2): 128 scrambled ones
//! (SYNC) + 16-bit SFD `0xF3A0`, then a 48-bit header — SIGNAL (8), SERVICE
//! (8), LENGTH (16) and CRC-16 (X-25 style: preset ones, complemented) — all
//! transmitted at 1 Mbps DBPSK regardless of the PSDU rate.

use rfd_dsp::coding::{bits_to_u64_lsb, u64_to_bits_lsb, Crc};

/// PSDU data rates of the 802.11b DSSS PHY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WifiRate {
    /// 1 Mbps DBPSK + Barker.
    R1,
    /// 2 Mbps DQPSK + Barker.
    R2,
    /// 5.5 Mbps CCK.
    R5_5,
    /// 11 Mbps CCK.
    R11,
}

impl WifiRate {
    /// Rate in Mbps.
    pub fn mbps(self) -> f64 {
        match self {
            WifiRate::R1 => 1.0,
            WifiRate::R2 => 2.0,
            WifiRate::R5_5 => 5.5,
            WifiRate::R11 => 11.0,
        }
    }

    /// SIGNAL field encoding (rate in units of 100 kbps).
    pub fn signal(self) -> u8 {
        match self {
            WifiRate::R1 => 0x0A,
            WifiRate::R2 => 0x14,
            WifiRate::R5_5 => 0x37,
            WifiRate::R11 => 0x6E,
        }
    }

    /// Decodes a SIGNAL field.
    pub fn from_signal(signal: u8) -> Option<Self> {
        match signal {
            0x0A => Some(WifiRate::R1),
            0x14 => Some(WifiRate::R2),
            0x37 => Some(WifiRate::R5_5),
            0x6E => Some(WifiRate::R11),
            _ => None,
        }
    }

    /// Data bits carried per PSK/CCK symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            WifiRate::R1 => 1,
            WifiRate::R2 => 2,
            WifiRate::R5_5 => 4,
            WifiRate::R11 => 8,
        }
    }

    /// Chips per symbol (Barker = 11, CCK = 8).
    pub fn chips_per_symbol(self) -> usize {
        match self {
            WifiRate::R1 | WifiRate::R2 => 11,
            WifiRate::R5_5 | WifiRate::R11 => 8,
        }
    }
}

impl std::fmt::Display for WifiRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} Mbps", self.mbps())
    }
}

/// SYNC length in bits for the long preamble.
pub const SYNC_BITS: usize = 128;
/// Start frame delimiter for the long preamble, transmitted LSB first.
pub const SFD: u16 = 0xF3A0;
/// Scrambler seed for the long preamble (§18.2.4).
pub const SCRAMBLER_SEED_LONG: u8 = 0x1B;
/// SERVICE-field bit marking the length-extension for 11 Mbps (bit 7).
pub const SERVICE_LENGTH_EXT: u8 = 0x80;
/// SERVICE-field bit indicating locked clocks (bit 2); we always set it.
pub const SERVICE_LOCKED_CLOCKS: u8 = 0x04;

/// A decoded PLCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlcpHeader {
    /// PSDU modulation/rate.
    pub rate: WifiRate,
    /// SERVICE field as transmitted.
    pub service: u8,
    /// LENGTH field: PSDU airtime in microseconds.
    pub length_us: u16,
}

impl PlcpHeader {
    /// Builds the header for a PSDU of `psdu_len` bytes at `rate`,
    /// computing LENGTH (and the 11 Mbps length-extension bit) per
    /// §18.2.3.5.
    pub fn for_psdu(psdu_len: usize, rate: WifiRate) -> Self {
        let bits = psdu_len as f64 * 8.0;
        let (length_us, service) = match rate {
            WifiRate::R1 => (bits as u16, SERVICE_LOCKED_CLOCKS),
            WifiRate::R2 => ((bits / 2.0).ceil() as u16, SERVICE_LOCKED_CLOCKS),
            WifiRate::R5_5 => ((bits / 5.5).ceil() as u16, SERVICE_LOCKED_CLOCKS),
            WifiRate::R11 => {
                let us = (bits / 11.0).ceil() as u16;
                // Length extension: set when rounding overshoots by a byte.
                let implied = (us as f64 * 11.0 / 8.0).floor() as usize;
                let ext = if implied - psdu_len == 1 {
                    SERVICE_LENGTH_EXT
                } else {
                    0
                };
                (us, SERVICE_LOCKED_CLOCKS | ext)
            }
        };
        Self {
            rate,
            service,
            length_us,
        }
    }

    /// PSDU length in bytes implied by this header.
    pub fn psdu_len(&self) -> usize {
        let us = self.length_us as f64;
        match self.rate {
            WifiRate::R1 => (us / 8.0) as usize,
            WifiRate::R2 => (us * 2.0 / 8.0) as usize,
            WifiRate::R5_5 => (us * 5.5 / 8.0) as usize,
            WifiRate::R11 => {
                let ext = (self.service & SERVICE_LENGTH_EXT) != 0;
                (us * 11.0 / 8.0).floor() as usize - ext as usize
            }
        }
    }

    /// Serializes to the 48 header bits (SIGNAL, SERVICE, LENGTH, CRC), LSB
    /// first per field, in transmission order.
    pub fn to_bits(&self) -> Vec<bool> {
        let mut bits = Vec::with_capacity(48);
        bits.extend(u64_to_bits_lsb(self.rate.signal() as u64, 8));
        bits.extend(u64_to_bits_lsb(self.service as u64, 8));
        bits.extend(u64_to_bits_lsb(self.length_us as u64, 16));
        let crc = Crc::crc16_x25().compute_bits(&bits);
        bits.extend(u64_to_bits_lsb(crc, 16));
        bits
    }

    /// Parses 48 header bits, verifying the CRC. Returns `None` on CRC
    /// failure or unknown SIGNAL value.
    pub fn from_bits(bits: &[bool]) -> Option<Self> {
        if bits.len() != 48 {
            return None;
        }
        let crc_rx = bits_to_u64_lsb(&bits[32..48]);
        let crc_calc = Crc::crc16_x25().compute_bits(&bits[..32]);
        if crc_rx != crc_calc {
            return None;
        }
        let signal = bits_to_u64_lsb(&bits[0..8]) as u8;
        let rate = WifiRate::from_signal(signal)?;
        Some(Self {
            rate,
            service: bits_to_u64_lsb(&bits[8..16]) as u8,
            length_us: bits_to_u64_lsb(&bits[16..32]) as u16,
        })
    }
}

/// Builds the unscrambled PPDU prefix bits: SYNC (128 ones) + SFD + header.
pub fn preamble_and_header_bits(header: &PlcpHeader) -> Vec<bool> {
    let mut bits = Vec::with_capacity(SYNC_BITS + 16 + 48);
    bits.extend(std::iter::repeat_n(true, SYNC_BITS));
    bits.extend(u64_to_bits_lsb(SFD as u64, 16));
    bits.extend(header.to_bits());
    bits
}

/// SFD bit pattern (LSB first) for matching in a descrambled bit stream.
pub fn sfd_bits() -> Vec<bool> {
    u64_to_bits_lsb(SFD as u64, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_bits_round_trip_all_rates() {
        for rate in [WifiRate::R1, WifiRate::R2, WifiRate::R5_5, WifiRate::R11] {
            for len in [0usize, 1, 26, 500, 1500, 2312] {
                let h = PlcpHeader::for_psdu(len, rate);
                let bits = h.to_bits();
                assert_eq!(bits.len(), 48);
                let parsed = PlcpHeader::from_bits(&bits).expect("CRC must verify");
                assert_eq!(parsed, h);
                assert_eq!(parsed.psdu_len(), len, "rate {rate} len {len}");
            }
        }
    }

    #[test]
    fn corrupted_header_fails_crc() {
        let h = PlcpHeader::for_psdu(100, WifiRate::R2);
        let mut bits = h.to_bits();
        bits[5] = !bits[5];
        assert!(PlcpHeader::from_bits(&bits).is_none());
    }

    #[test]
    fn length_us_matches_airtime() {
        let h = PlcpHeader::for_psdu(564, WifiRate::R1);
        assert_eq!(h.length_us, 4512);
        let h2 = PlcpHeader::for_psdu(564, WifiRate::R2);
        assert_eq!(h2.length_us, 2256);
    }

    #[test]
    fn eleven_mbps_length_extension_cases() {
        // Exhaustively check the inverse mapping over a range of lengths.
        for len in 1..3000usize {
            let h = PlcpHeader::for_psdu(len, WifiRate::R11);
            assert_eq!(h.psdu_len(), len, "len {len}");
        }
    }

    #[test]
    fn signal_field_is_rate_in_100kbps() {
        assert_eq!(WifiRate::R1.signal(), 10);
        assert_eq!(WifiRate::R2.signal(), 20);
        assert_eq!(WifiRate::R5_5.signal(), 55);
        assert_eq!(WifiRate::R11.signal(), 110);
        assert_eq!(WifiRate::from_signal(0x42), None);
    }

    #[test]
    fn preamble_structure() {
        let h = PlcpHeader::for_psdu(10, WifiRate::R1);
        let bits = preamble_and_header_bits(&h);
        assert_eq!(bits.len(), 192);
        assert!(bits[..128].iter().all(|&b| b));
        assert_eq!(&bits[128..144], sfd_bits().as_slice());
    }
}
