//! Barker-11 spreading.
//!
//! Every 802.11b PSK symbol is multiplied by the 11-chip Barker sequence,
//! pushing the chip rate to 11 Mchips/s and the occupied bandwidth to
//! 22 MHz. The sequence's ideal autocorrelation (peak 11, sidelobes ≤ 1) is
//! what makes both the receiver's despreader and RFDump's precomputed
//! phase-pattern detector work.

use rfd_dsp::Complex32;

/// The 11-chip Barker sequence used by 802.11 DSSS
/// (IEEE 802.11-2007 §18.4.6.4), first-transmitted chip first.
pub const BARKER11: [f32; 11] = [1.0, -1.0, 1.0, 1.0, -1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0];

/// Spreads one complex symbol into 11 chips (one output sample per chip).
pub fn spread_symbol(symbol: Complex32, out: &mut Vec<Complex32>) {
    for &c in BARKER11.iter() {
        out.push(symbol.scale(c));
    }
}

/// Despreads 11 chip samples into one symbol estimate (normalized correlation
/// with the Barker sequence; for a clean signal the output equals the
/// transmitted symbol).
pub fn despread_symbol(chips: &[Complex32]) -> Complex32 {
    debug_assert_eq!(chips.len(), 11);
    let mut acc = Complex32::ZERO;
    for (z, &c) in chips.iter().zip(BARKER11.iter()) {
        acc += z.scale(c);
    }
    acc.scale(1.0 / 11.0)
}

/// Barker autocorrelation magnitude at a given cyclic lag (used in tests and
/// by alignment search heuristics).
pub fn autocorr(lag: usize) -> f32 {
    let n = BARKER11.len();
    (0..n).map(|i| BARKER11[i] * BARKER11[(i + lag) % n]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autocorrelation_peak_and_sidelobes() {
        assert_eq!(autocorr(0), 11.0);
        for lag in 1..11 {
            assert!(
                autocorr(lag).abs() <= 1.0 + 1e-6,
                "lag {lag}: {}",
                autocorr(lag)
            );
        }
    }

    #[test]
    fn spread_despread_round_trip() {
        let sym = Complex32::from_polar(1.0, 2.1);
        let mut chips = Vec::new();
        spread_symbol(sym, &mut chips);
        assert_eq!(chips.len(), 11);
        let back = despread_symbol(&chips);
        assert!((back - sym).abs() < 1e-6);
    }

    #[test]
    fn misaligned_despread_is_weak() {
        // Despreading with a one-chip misalignment across two identical
        // symbols collapses toward the autocorrelation sidelobe level.
        let sym = Complex32::ONE;
        let mut chips = Vec::new();
        spread_symbol(sym, &mut chips);
        spread_symbol(sym, &mut chips);
        let off = despread_symbol(&chips[1..12]);
        assert!(off.abs() < 0.4, "misaligned magnitude {}", off.abs());
    }
}
