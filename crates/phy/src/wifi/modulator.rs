//! 802.11b transmit chain.
//!
//! Bits → scrambler → differential PSK (or CCK) symbols → Barker/CCK chips →
//! one complex sample per chip at 11 Msps. The long PLCP preamble and header
//! are always 1 Mbps DBPSK; the PSDU follows at the configured rate with
//! phase and scrambler state carried across the boundary, exactly as clause
//! 18 specifies.

use super::barker::spread_symbol;
use super::cck;
use super::plcp::{preamble_and_header_bits, PlcpHeader, WifiRate, SCRAMBLER_SEED_LONG};
use crate::Waveform;
use rfd_dsp::coding::{bytes_to_bits_lsb, Scrambler};
use rfd_dsp::Complex32;
use std::f32::consts::{FRAC_PI_2, PI};

/// Transmit configuration.
#[derive(Debug, Clone, Copy)]
pub struct WifiTxConfig {
    /// PSDU rate.
    pub rate: WifiRate,
}

impl Default for WifiTxConfig {
    fn default() -> Self {
        Self { rate: WifiRate::R1 }
    }
}

/// DBPSK phase increment: bit 0 keeps phase, bit 1 flips it.
fn dbpsk_increment(bit: bool) -> f32 {
    if bit {
        PI
    } else {
        0.0
    }
}

/// DQPSK phase increment for a dibit, first-transmitted bit `d0`
/// (§18.4.6.3, Gray-coded): 00 -> 0, 01 -> pi/2, 11 -> pi, 10 -> 3pi/2.
pub(crate) fn dqpsk_increment(d0: bool, d1: bool) -> f32 {
    match (d0, d1) {
        (false, false) => 0.0,
        (false, true) => FRAC_PI_2,
        (true, true) => PI,
        (true, false) => 3.0 * FRAC_PI_2,
    }
}

/// Modulates a PSDU into a baseband waveform at 11 Msps (one sample per
/// chip), including the long PLCP preamble and header.
pub fn modulate(psdu: &[u8], cfg: WifiTxConfig) -> Waveform {
    let header = PlcpHeader::for_psdu(psdu.len(), cfg.rate);
    let prefix_bits = preamble_and_header_bits(&header);
    let psdu_bits = bytes_to_bits_lsb(psdu);

    // Scramble the entire PPDU with one continuous scrambler.
    let mut scrambler = Scrambler::new(SCRAMBLER_SEED_LONG);
    let tx_prefix = scrambler.scramble(&prefix_bits);
    let tx_psdu = scrambler.scramble(&psdu_bits);

    let mut phase = 0.0f32;
    let chips_per_sym = cfg.rate.chips_per_symbol();
    let est_chips = tx_prefix.len() * 11
        + tx_psdu.len() / cfg.rate.bits_per_symbol().max(1) * chips_per_sym
        + 16;
    let mut samples: Vec<Complex32> = Vec::with_capacity(est_chips);

    // Preamble + header: DBPSK + Barker.
    for &bit in &tx_prefix {
        phase += dbpsk_increment(bit);
        spread_symbol(Complex32::cis(phase), &mut samples);
    }

    // PSDU at the configured rate.
    match cfg.rate {
        WifiRate::R1 => {
            for &bit in &tx_psdu {
                phase += dbpsk_increment(bit);
                spread_symbol(Complex32::cis(phase), &mut samples);
            }
        }
        WifiRate::R2 => {
            assert!(tx_psdu.len().is_multiple_of(2));
            for dibit in tx_psdu.chunks(2) {
                phase += dqpsk_increment(dibit[0], dibit[1]);
                spread_symbol(Complex32::cis(phase), &mut samples);
            }
        }
        WifiRate::R5_5 | WifiRate::R11 => {
            let bps = cfg.rate.bits_per_symbol();
            // Pad the tail with zero bits if the PSDU does not fill the final
            // symbol (cannot happen for whole bytes at 4/8 bits per symbol,
            // but keep the encoder total).
            assert!(tx_psdu.len().is_multiple_of(bps));
            for (i, group) in tx_psdu.chunks(bps).enumerate() {
                let chips = cck::encode_symbol(group, &mut phase, i);
                samples.extend_from_slice(&chips);
            }
        }
    }

    Waveform {
        samples,
        sample_rate: super::CHIP_RATE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::frame_airtime_us;

    #[test]
    fn waveform_length_matches_airtime_1mbps() {
        let psdu = vec![0xA5u8; 100];
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        // (192 + 800) bits at 11 chips/bit.
        assert_eq!(w.samples.len(), (192 + 800) * 11);
        assert!((w.duration_us() - frame_airtime_us(100, WifiRate::R1)).abs() < 1e-6);
    }

    #[test]
    fn waveform_length_matches_airtime_2mbps() {
        let psdu = vec![0x5Au8; 100];
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R2 });
        assert_eq!(w.samples.len(), 192 * 11 + (800 / 2) * 11);
    }

    #[test]
    fn waveform_length_cck_rates() {
        let psdu = vec![0x11u8; 110];
        let w55 = modulate(
            &psdu,
            WifiTxConfig {
                rate: WifiRate::R5_5,
            },
        );
        assert_eq!(w55.samples.len(), 192 * 11 + (880 / 4) * 8);
        let w11 = modulate(
            &psdu,
            WifiTxConfig {
                rate: WifiRate::R11,
            },
        );
        assert_eq!(w11.samples.len(), 192 * 11 + (880 / 8) * 8);
    }

    #[test]
    fn envelope_is_constant() {
        let w = modulate(&[0xFF, 0x00, 0x37], WifiTxConfig { rate: WifiRate::R1 });
        for z in &w.samples {
            assert!((z.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn different_psdus_differ_after_preamble() {
        let a = modulate(&[0x00; 10], WifiTxConfig::default());
        let b = modulate(&[0xFF; 10], WifiTxConfig::default());
        // Identical preamble chips... (the PLCP header differs only in CRC
        // region; compare the sync portion).
        let sync_chips = 128 * 11;
        assert_eq!(&a.samples[..sync_chips], &b.samples[..sync_chips]);
        // ...but PSDU chips differ.
        let psdu_start = 192 * 11;
        assert_ne!(&a.samples[psdu_start..], &b.samples[psdu_start..]);
    }
}
