//! 802.11b receive chain.
//!
//! Two entry points:
//!
//! * [`demodulate`] — one-shot decode of a sample block believed to contain a
//!   single frame (what RFDump's analysis stage calls after the detection
//!   stage has isolated a peak).
//! * [`WifiRx`] — a continuously running receiver that performs full-rate
//!   despreading and SFD search over an unbounded stream. This is the
//!   expensive block the *naïve* architecture runs over every sample, and it
//!   is deliberately implemented the way a real continuous DSSS receiver
//!   works (sliding Barker correlation at every chip offset, per-phase
//!   differential decode and SFD matching) so its CPU cost is honest.
//!
//! The receiver resamples its input to the 11 Mchips/s chip rate first; when
//! the input is the paper's 8 Msps USRP stream this reproduces the awkward
//! 11:8 reconstruction the paper describes.

use super::barker::despread_symbol;
use super::cck;
use super::frame::MacFrame;
use super::plcp::{sfd_bits, PlcpHeader, WifiRate};
use rfd_dsp::coding::{bits_to_bytes_lsb, Crc, Scrambler};
use rfd_dsp::resample::resample_windowed_sinc;
use rfd_dsp::Complex32;
use std::f32::consts::FRAC_PI_2;

/// Maximum PSDU length we will attempt to decode (guards against a corrupt
/// LENGTH field that still passed the CRC).
pub const MAX_PSDU: usize = 4096;

/// Result of a successful 802.11b decode.
#[derive(Debug, Clone)]
pub struct WifiRxResult {
    /// The decoded PLCP header.
    pub header: PlcpHeader,
    /// The raw PSDU bytes (including FCS).
    pub psdu: Vec<u8>,
    /// Whether the MAC FCS verified.
    pub fcs_ok: bool,
    /// The parsed MAC frame when the FCS verified and the type is known.
    pub frame: Option<MacFrame>,
    /// Chip index (at 11 Mcps, relative to the start of the input block)
    /// where the frame's preamble begins.
    pub start_chip: usize,
}

/// Decodes a dibit from a DQPSK phase increment (inverse of the modulator's
/// Gray mapping).
fn dqpsk_decode(delta: f32) -> (bool, bool) {
    let quad = ((delta / FRAC_PI_2).round().rem_euclid(4.0)) as u8;
    match quad {
        0 => (false, false),
        1 => (false, true),
        2 => (true, true),
        _ => (true, false),
    }
}

/// One-shot demodulation of a block of samples containing (at most) one
/// 802.11b frame. `sample_rate` is the rate of `samples`; anything other
/// than 11 Msps is resampled first.
pub fn demodulate(samples: &[Complex32], sample_rate: f64) -> Option<WifiRxResult> {
    let chips_owned;
    let chips: &[Complex32] = if (sample_rate - super::CHIP_RATE).abs() < 1.0 {
        samples
    } else {
        chips_owned = resample_windowed_sinc(samples, sample_rate, super::CHIP_RATE, 8);
        &chips_owned
    };
    if chips.len() < 192 * 11 {
        return None; // can't even hold a preamble
    }

    // Coarse start: first chip where local power reaches a fraction of the
    // block's sustained level.
    let peak_power = sustained_power(chips);
    let threshold = peak_power * 0.25;
    let coarse = (0..chips.len().saturating_sub(22))
        .find(|&i| window_power(&chips[i..i + 22]) > threshold)?;

    // Fine chip alignment: try the 11 offsets after the coarse start and
    // keep the one with the strongest despread magnitude over the first
    // 30 symbols.
    let mut best_off = coarse;
    let mut best_metric = -1.0f32;
    for off in coarse..(coarse + 11).min(chips.len()) {
        let mut metric = 0.0;
        for s in 0..30 {
            let a = off + s * 11;
            if a + 11 > chips.len() {
                break;
            }
            metric += despread_symbol(&chips[a..a + 11]).abs();
        }
        if metric > best_metric {
            best_metric = metric;
            best_off = off;
        }
    }

    decode_from(chips, best_off).map(|mut r| {
        r.start_chip = best_off;
        r
    })
}

/// Sustained (75th percentile of windowed) power — robust to a noise prefix.
fn sustained_power(chips: &[Complex32]) -> f32 {
    let mut powers: Vec<f32> = chips.chunks(64).map(window_power).collect();
    powers.sort_by(f32::total_cmp);
    powers[(powers.len() - 1) * 3 / 4]
}

fn window_power(w: &[Complex32]) -> f32 {
    rfd_dsp::complex::mean_power(w)
}

/// Decodes a frame whose first preamble chip is at `off` in `chips`.
fn decode_from(chips: &[Complex32], off: usize) -> Option<WifiRxResult> {
    // Despread every full symbol from the alignment point. The 1 Mbps
    // portion (sync + SFD + header) sits at the front; for 1 Mbps PSDUs the
    // same symbol stream carries the payload too.
    let nsyms = (chips.len() - off) / 11;
    let mut syms = Vec::with_capacity(nsyms);
    for s in 0..nsyms {
        let a = off + s * 11;
        syms.push(despread_symbol(&chips[a..a + 11]));
    }
    if syms.len() < 64 {
        return None;
    }

    // DBPSK differential decode (first symbol is the phase reference).
    let mut raw_bits = Vec::with_capacity(syms.len() - 1);
    for w in syms.windows(2) {
        raw_bits.push((w[1] * w[0].conj()).re < 0.0);
    }

    // Self-synchronizing descramble; the seed does not matter after 7 bits.
    let mut desc = Scrambler::new(0);
    let bits = desc.descramble(&raw_bits);

    // Find the SFD; it must appear near the front (sync is at most 128 bits
    // plus a little slack for an imprecise block start).
    let sfd = sfd_bits();
    let sfd_pos = find_pattern(&bits, &sfd, 400)?;
    let hdr_start = sfd_pos + 16;
    if hdr_start + 48 > bits.len() {
        return None;
    }
    let header = PlcpHeader::from_bits(&bits[hdr_start..hdr_start + 48])?;
    let psdu_len = header.psdu_len().min(MAX_PSDU);

    // Chip index where the PSDU starts: symbols consumed so far is
    // (hdr_start + 48) bits + 1 reference symbol.
    let psdu_sym0 = hdr_start + 48 + 1;
    let psdu_chip0 = off + psdu_sym0 * 11;

    // Scrambler state for the PSDU continues from the header; rebuild a
    // descrambler primed with the last 7 raw (scrambled) bits of the header.
    let mut psdu_desc = Scrambler::new(0);
    for &b in &raw_bits[psdu_sym0.saturating_sub(8)..psdu_sym0 - 1] {
        psdu_desc.descramble_bit(b);
    }

    let nbits = psdu_len * 8;
    let mut psdu_bits = Vec::with_capacity(nbits);
    match header.rate {
        WifiRate::R1 => {
            let have = raw_bits.len().saturating_sub(psdu_sym0 - 1);
            if have < nbits {
                return None;
            }
            for &b in &raw_bits[psdu_sym0 - 1..psdu_sym0 - 1 + nbits] {
                psdu_bits.push(psdu_desc.descramble_bit(b));
            }
        }
        WifiRate::R2 => {
            let nsyms = nbits / 2;
            let mut prev = syms.get(psdu_sym0 - 1).copied()?;
            for s in 0..nsyms {
                let a = psdu_chip0 + s * 11;
                if a + 11 > chips.len() {
                    return None;
                }
                let cur = despread_symbol(&chips[a..a + 11]);
                let (d0, d1) = dqpsk_decode((cur * prev.conj()).arg());
                psdu_bits.push(psdu_desc.descramble_bit(d0));
                psdu_bits.push(psdu_desc.descramble_bit(d1));
                prev = cur;
            }
        }
        WifiRate::R5_5 | WifiRate::R11 => {
            let bps = header.rate.bits_per_symbol();
            let nsyms = nbits / bps;
            let mut phase_ref = syms.get(psdu_sym0 - 1)?.arg();
            for s in 0..nsyms {
                let a = psdu_chip0 + s * 8;
                if a + 8 > chips.len() {
                    return None;
                }
                let (bits, _q) = cck::decode_symbol(&chips[a..a + 8], bps, &mut phase_ref, s);
                for b in bits {
                    psdu_bits.push(psdu_desc.descramble_bit(b));
                }
            }
        }
    }

    let psdu = bits_to_bytes_lsb(&psdu_bits);
    let frame = MacFrame::from_bytes(&psdu);
    let fcs_ok = frame.is_some() || fcs_raw_ok(&psdu);
    Some(WifiRxResult {
        header,
        psdu,
        fcs_ok,
        frame,
        start_chip: off,
    })
}

/// Checks the trailing CRC-32 over a PSDU even if the MAC type is unknown.
fn fcs_raw_ok(psdu: &[u8]) -> bool {
    if psdu.len() < 4 {
        return false;
    }
    let (data, fcs) = psdu.split_at(psdu.len() - 4);
    Crc::crc32_ieee().compute(data) as u32 == u32::from_le_bytes(fcs.try_into().unwrap())
}

/// Finds `pattern` in `bits[..limit]`, returning the start index.
fn find_pattern(bits: &[bool], pattern: &[bool], limit: usize) -> Option<usize> {
    let limit = limit.min(bits.len());
    if pattern.len() > limit {
        return None;
    }
    (0..=limit - pattern.len()).find(|&i| bits[i..i + pattern.len()] == *pattern)
}

// ---------------------------------------------------------------------------
// Continuous receiver (the naïve architecture's workhorse)
// ---------------------------------------------------------------------------

/// A continuously-running 802.11b receiver.
///
/// Performs full-rate work on every input sample: resampling to chip rate,
/// sliding Barker correlation at every chip offset, then differential decode
/// and descrambled-SFD search on all 11 comb phases. When an SFD is found
/// the frame start is queued; once the frame's chips have all arrived, the
/// buffered region is handed to the one-shot decoder.
pub struct WifiRx {
    input_rate: f64,
    /// Buffered chips at 11 Mcps awaiting packet extraction.
    chips: Vec<Complex32>,
    /// Absolute chip index of `chips[0]` since stream start.
    chip_base: u64,
    /// Per comb-phase SFD matchers.
    phases: Vec<PhaseScanner>,
    /// Sliding despread values (`corr[i]` despreads `chips[i..i+11]`).
    corr: Vec<Complex32>,
    /// Frame starts (absolute chip index) whose decode is awaiting data.
    pending: Vec<u64>,
    /// Decoded frames.
    results: Vec<WifiRxResult>,
    /// Frames starting before this absolute chip index are duplicates.
    decoded_until: u64,
}

struct PhaseScanner {
    prev_sym: Complex32,
    descrambler: Scrambler,
    shift: u16,
    /// Symbols of this phase consumed so far (index into the comb).
    seen: usize,
}

impl PhaseScanner {
    fn new() -> Self {
        Self {
            prev_sym: Complex32::ONE,
            descrambler: Scrambler::new(0),
            shift: 0,
            seen: 0,
        }
    }
}

/// Baseline chip history (~9 ms): must cover the longest frame we expect to
/// decode end-to-end. Trimming never evicts a pending frame start, so longer
/// frames survive as long as they are being tracked.
const HISTORY_CHIPS: usize = 100_000;

impl WifiRx {
    /// Creates a receiver for an input stream at `input_rate`.
    pub fn new(input_rate: f64) -> Self {
        Self {
            input_rate,
            chips: Vec::new(),
            chip_base: 0,
            phases: (0..11).map(|_| PhaseScanner::new()).collect(),
            corr: Vec::new(),
            pending: Vec::new(),
            results: Vec::new(),
            decoded_until: 0,
        }
    }

    /// Processes a block of input samples; any frames completed inside the
    /// buffered history are appended to the result list.
    pub fn process(&mut self, samples: &[Complex32]) {
        let new_chips = if (self.input_rate - super::CHIP_RATE).abs() < 1.0 {
            samples.to_vec()
        } else {
            resample_windowed_sinc(samples, self.input_rate, super::CHIP_RATE, 8)
        };
        self.chips.extend_from_slice(&new_chips);

        // Extend the sliding despread correlation (corr[i] needs chips
        // through i+10).
        while self.corr.len() + 11 <= self.chips.len() {
            let i = self.corr.len();
            self.corr.push(despread_symbol(&self.chips[i..i + 11]));
        }

        // Scan each comb phase for SFDs at symbol cadence.
        let sfd = sfd_pattern_u16();
        for p in 0..11usize {
            loop {
                let s = self.phases[p].seen;
                let idx = s * 11 + p;
                if idx >= self.corr.len() {
                    break;
                }
                let cur = self.corr[idx];
                let scanner = &mut self.phases[p];
                let bit = (cur * scanner.prev_sym.conj()).re < 0.0;
                scanner.prev_sym = cur;
                let descrambled = scanner.descrambler.descramble_bit(bit);
                scanner.shift = (scanner.shift >> 1) | ((descrambled as u16) << 15);
                scanner.seen += 1;
                if scanner.shift == sfd {
                    // The SFD's last bit (packet bit 143) is decoded while
                    // processing packet symbol 143, so the preamble begins
                    // 143 symbols earlier.
                    let abs_start = (self.chip_base + idx as u64).saturating_sub(143 * 11);
                    if abs_start >= self.decoded_until
                        && !self.pending.iter().any(|&q| q.abs_diff(abs_start) < 22)
                    {
                        self.pending.push(abs_start);
                    }
                }
            }
        }

        self.drain_pending();
        self.trim_history();
    }

    /// Attempts to decode queued frame starts whose data has arrived.
    fn drain_pending(&mut self) {
        let mut keep = Vec::new();
        let pending = std::mem::take(&mut self.pending);
        for abs_start in pending {
            if abs_start < self.chip_base {
                continue; // evicted (should not happen; trim protects these)
            }
            if abs_start < self.decoded_until {
                continue; // duplicate of an already-decoded frame
            }
            let rel = (abs_start - self.chip_base) as usize;
            // Need the header (symbols 144..192 plus one despread window).
            if rel + 193 * 11 + 11 > self.chips.len() {
                keep.push(abs_start);
                continue;
            }
            match self.peek_header(rel) {
                None => continue, // false SFD hit; drop
                Some(header) => {
                    let frame_chips = frame_len_chips(&header);
                    if rel + frame_chips + 11 > self.chips.len() {
                        // Frame longer than what we will ever buffer? Give up.
                        if frame_chips > 4 * HISTORY_CHIPS {
                            continue;
                        }
                        keep.push(abs_start);
                        continue;
                    }
                    if let Some(mut r) = decode_from(&self.chips, rel) {
                        r.start_chip = abs_start as usize;
                        self.decoded_until = abs_start + frame_chips as u64;
                        self.results.push(r);
                    }
                }
            }
        }
        self.pending = keep;
    }

    /// Parses just the PLCP header of a frame starting at relative chip
    /// `rel`, without decoding the PSDU.
    fn peek_header(&self, rel: usize) -> Option<PlcpHeader> {
        // Despread symbols 143..192 (one reference + 48 header bits).
        let mut syms = Vec::with_capacity(49);
        for s in 143..192 {
            let a = rel + s * 11;
            syms.push(despread_symbol(&self.chips[a..a + 11]));
        }
        let mut raw = Vec::with_capacity(48);
        for w in syms.windows(2) {
            raw.push((w[1] * w[0].conj()).re < 0.0);
        }
        // Warm the descrambler with the 7 scrambled bits before the header
        // (despread symbols 136..144).
        let mut desc = Scrambler::new(0);
        let mut warm = Vec::new();
        for s in 135..144 {
            let a = rel + s * 11;
            warm.push(despread_symbol(&self.chips[a..a + 11]));
        }
        for w in warm.windows(2) {
            desc.descramble_bit((w[1] * w[0].conj()).re < 0.0);
        }
        let bits: Vec<bool> = raw.iter().map(|&b| desc.descramble_bit(b)).collect();
        PlcpHeader::from_bits(&bits)
    }

    fn trim_history(&mut self) {
        if self.chips.len() <= HISTORY_CHIPS {
            return;
        }
        let mut cut = self.chips.len() - HISTORY_CHIPS;
        // Never evict a pending frame start (keep a small preamble margin).
        if let Some(&min_pending) = self.pending.iter().min() {
            let rel = (min_pending.saturating_sub(self.chip_base)) as usize;
            cut = cut.min(rel.saturating_sub(11));
        }
        // Keep comb phases aligned: trim whole symbols only.
        cut -= cut % 11;
        if cut == 0 {
            return;
        }
        self.chips.drain(..cut);
        let ccut = cut.min(self.corr.len());
        self.corr.drain(..ccut);
        self.chip_base += cut as u64;
        let removed_syms = cut / 11;
        for ph in &mut self.phases {
            ph.seen = ph.seen.saturating_sub(removed_syms);
        }
    }

    /// Drains decoded frames.
    pub fn take_results(&mut self) -> Vec<WifiRxResult> {
        std::mem::take(&mut self.results)
    }
}

fn frame_len_chips(h: &PlcpHeader) -> usize {
    (192 + h.length_us as usize) * 11
}

fn sfd_pattern_u16() -> u16 {
    // The scanner shifts bits in from the top, so after 16 bits the register
    // holds b0 at bit 0 ... b15 at bit 15 == the LSB-first SFD value.
    super::plcp::SFD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wifi::frame::{icmp_echo_body, MacAddr, MacFrame};
    use crate::wifi::modulator::{modulate, WifiTxConfig};
    use rfd_dsp::rng::GaussianGen;

    fn test_frame(len: usize) -> Vec<u8> {
        MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            42,
            icmp_echo_body(3, len),
        )
        .to_bytes()
    }

    fn pad(wave: &[Complex32], lead: usize, tail: usize) -> Vec<Complex32> {
        let mut v = vec![Complex32::ZERO; lead];
        v.extend_from_slice(wave);
        v.extend(vec![Complex32::ZERO; tail]);
        v
    }

    #[test]
    fn clean_1mbps_round_trip_at_chip_rate() {
        let psdu = test_frame(100);
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        let rx = demodulate(&pad(&w.samples, 50, 50), super::super::CHIP_RATE).unwrap();
        assert_eq!(rx.header.rate, WifiRate::R1);
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
        assert!(rx.frame.is_some());
    }

    #[test]
    fn clean_2mbps_round_trip_at_chip_rate() {
        let psdu = test_frame(200);
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R2 });
        let rx = demodulate(&pad(&w.samples, 33, 60), super::super::CHIP_RATE).unwrap();
        assert_eq!(rx.header.rate, WifiRate::R2);
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
    }

    #[test]
    fn clean_cck_round_trips_at_chip_rate() {
        for rate in [WifiRate::R5_5, WifiRate::R11] {
            let psdu = test_frame(64);
            let w = modulate(&psdu, WifiTxConfig { rate });
            let rx = demodulate(&pad(&w.samples, 17, 40), super::super::CHIP_RATE)
                .unwrap_or_else(|| panic!("decode failed at {rate}"));
            assert_eq!(rx.header.rate, rate);
            assert!(rx.fcs_ok, "FCS at {rate}");
            assert_eq!(rx.psdu, psdu);
        }
    }

    #[test]
    fn round_trip_through_8msps_bottleneck_1mbps() {
        // The paper's USRP sees only 8 of the 22 MHz; 1 Mbps still decodes.
        let psdu = test_frame(80);
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        let at8 = resample_windowed_sinc(&pad(&w.samples, 40, 40), 11e6, 8e6, 8);
        let rx = demodulate(&at8, 8e6).expect("1 Mbps must survive 8 Msps");
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
    }

    #[test]
    fn round_trip_with_noise_1mbps() {
        let psdu = test_frame(60);
        let w = modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        let mut sig = pad(&w.samples, 100, 100);
        GaussianGen::new(99).add_awgn(&mut sig, 0.05); // ~13 dB SNR
        let rx = demodulate(&sig, super::super::CHIP_RATE).expect("decode under noise");
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
    }

    #[test]
    fn pure_noise_decodes_nothing() {
        let mut sig = vec![Complex32::ZERO; 30_000];
        GaussianGen::new(5).add_awgn(&mut sig, 0.1);
        assert!(demodulate(&sig, super::super::CHIP_RATE).is_none());
    }

    #[test]
    fn too_short_input_is_rejected() {
        assert!(demodulate(&[Complex32::ONE; 100], super::super::CHIP_RATE).is_none());
    }

    #[test]
    fn continuous_rx_finds_multiple_frames() {
        let f1 = test_frame(40);
        let f2 = test_frame(70);
        let w1 = modulate(&f1, WifiTxConfig { rate: WifiRate::R1 });
        let w2 = modulate(&f2, WifiTxConfig { rate: WifiRate::R1 });
        let mut stream = vec![Complex32::ZERO; 500];
        stream.extend_from_slice(&w1.samples);
        stream.extend(vec![Complex32::ZERO; 2000]);
        stream.extend_from_slice(&w2.samples);
        stream.extend(vec![Complex32::ZERO; 500]);

        let mut rx = WifiRx::new(super::super::CHIP_RATE);
        for chunk in stream.chunks(4096) {
            rx.process(chunk);
        }
        let results = rx.take_results();
        assert_eq!(results.len(), 2, "found {}", results.len());
        assert_eq!(results[0].psdu, f1);
        assert_eq!(results[1].psdu, f2);
        assert!(results[0].start_chip < results[1].start_chip);
    }

    #[test]
    fn continuous_rx_at_8msps() {
        let f = test_frame(50);
        let w = modulate(&f, WifiTxConfig { rate: WifiRate::R1 });
        let mut stream = vec![Complex32::ZERO; 800];
        stream.extend_from_slice(&w.samples);
        stream.extend(vec![Complex32::ZERO; 800]);
        let at8 = resample_windowed_sinc(&stream, 11e6, 8e6, 8);
        let mut rx = WifiRx::new(8e6);
        for chunk in at8.chunks(2000) {
            rx.process(chunk);
        }
        let results = rx.take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].psdu, f);
    }
}
