//! IEEE 802.11b physical and MAC layer.
//!
//! The transmit chain implements the DSSS PHY of IEEE 802.11-2007 clause 18:
//! long PLCP preamble and header (always DBPSK at 1 Mbps), PSDU at 1 Mbps
//! DBPSK, 2 Mbps DQPSK, or 5.5/11 Mbps CCK, all chipped at 11 Mchips/s
//! (Barker-11 for the PSK rates). The receive chain undoes the whole stack
//! and verifies both the PLCP header CRC-16 and the MAC FCS (CRC-32).
//!
//! Timing constants (SIFS/DIFS/slot) live here too; they are what RFDump's
//! 802.11 timing detectors key on.

pub mod barker;
pub mod cck;
pub mod demod;
pub mod frame;
pub mod modulator;
pub mod plcp;

pub use demod::{demodulate, WifiRx};
pub use frame::{MacFrame, MacFrameKind};
pub use modulator::{modulate, WifiTxConfig};
pub use plcp::{PlcpHeader, WifiRate};

/// 802.11b/g short interframe space, microseconds.
pub const SIFS_US: f64 = 10.0;
/// 802.11b slot time, microseconds.
pub const SLOT_US: f64 = 20.0;
/// 802.11b distributed interframe space: SIFS + 2 × slot.
pub const DIFS_US: f64 = SIFS_US + 2.0 * SLOT_US;
/// Long PLCP preamble duration (144 bits at 1 Mbps), microseconds.
pub const LONG_PREAMBLE_US: f64 = 144.0;
/// PLCP header duration (48 bits at 1 Mbps), microseconds.
pub const PLCP_HEADER_US: f64 = 48.0;
/// Chip rate of the DSSS PHY, chips per second.
pub const CHIP_RATE: f64 = 11e6;
/// 802.11 DSSS channel width (drives what fraction an 8 MHz monitor sees).
pub const CHANNEL_WIDTH_HZ: f64 = 22e6;

/// Airtime of a PSDU of `len` bytes at `rate`, excluding preamble+header, in
/// microseconds.
pub fn psdu_airtime_us(len: usize, rate: WifiRate) -> f64 {
    (len as f64) * 8.0 / rate.mbps()
}

/// Total frame airtime including long preamble and PLCP header, microseconds.
pub fn frame_airtime_us(psdu_len: usize, rate: WifiRate) -> f64 {
    LONG_PREAMBLE_US + PLCP_HEADER_US + psdu_airtime_us(psdu_len, rate).ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_constants_match_table2() {
        // Paper Table 2: slot 20 us, SIFS 10 us for 802.11b.
        assert_eq!(SIFS_US, 10.0);
        assert_eq!(SLOT_US, 20.0);
        assert_eq!(DIFS_US, 50.0);
    }

    #[test]
    fn airtime_of_588_byte_frame_at_1mbps() {
        // Paper §5.1.2: 588 bytes including PLCP preamble and header; 500B
        // ICMP payload + MAC overhead. At 1 Mbps a 564-byte PSDU is 4512 us
        // plus 192 us of PLCP = 4704 us = 588 "byte times".
        let us = frame_airtime_us(564, WifiRate::R1);
        assert!((us - 4704.0).abs() < 1e-9);
    }
}
