//! 802.11 MAC framing.
//!
//! Enough of the MAC frame format to generate and verify the traffic the
//! paper's microbenchmarks use: data frames (ICMP-echo-like payloads),
//! MAC-level ACKs, beacons, and ARP-like broadcasts — each with a real FCS
//! (CRC-32) so the receiver can verify end-to-end correctness.

use rfd_dsp::coding::Crc;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered address derived from an index.
    pub fn station(idx: u16) -> MacAddr {
        MacAddr([0x02, 0x00, 0xC0, 0xDE, (idx >> 8) as u8, idx as u8])
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The frame types we generate and parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacFrameKind {
    /// Data frame (type 2, subtype 0).
    Data,
    /// Control ACK (type 1, subtype 13).
    Ack,
    /// Management beacon (type 0, subtype 8).
    Beacon,
}

impl MacFrameKind {
    fn frame_control(self) -> u16 {
        // protocol version 0 | type | subtype, little-endian field layout:
        // bits 0-1 version, 2-3 type, 4-7 subtype.
        match self {
            MacFrameKind::Beacon => 8 << 4,
            MacFrameKind::Ack => (1 << 2) | (13 << 4),
            MacFrameKind::Data => 2 << 2,
        }
    }

    fn from_frame_control(fc: u16) -> Option<Self> {
        let ty = (fc >> 2) & 0b11;
        let subtype = (fc >> 4) & 0b1111;
        match (ty, subtype) {
            (0, 8) => Some(MacFrameKind::Beacon),
            (1, 13) => Some(MacFrameKind::Ack),
            (2, 0) => Some(MacFrameKind::Data),
            _ => None,
        }
    }
}

/// A parsed or to-be-built MAC frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacFrame {
    /// Frame type.
    pub kind: MacFrameKind,
    /// Duration/ID field (microseconds the medium is reserved).
    pub duration_us: u16,
    /// Receiver address.
    pub addr1: MacAddr,
    /// Transmitter address (absent on ACKs).
    pub addr2: Option<MacAddr>,
    /// BSSID / filtering address (absent on ACKs).
    pub addr3: Option<MacAddr>,
    /// Sequence number (0-4095; absent on ACKs).
    pub seq: u16,
    /// Frame body.
    pub body: Vec<u8>,
}

impl MacFrame {
    /// Builds a data frame.
    pub fn data(src: MacAddr, dst: MacAddr, bssid: MacAddr, seq: u16, body: Vec<u8>) -> Self {
        Self {
            kind: MacFrameKind::Data,
            duration_us: if dst.is_broadcast() { 0 } else { 44 },
            addr1: dst,
            addr2: Some(src),
            addr3: Some(bssid),
            seq: seq & 0x0FFF,
            body,
        }
    }

    /// Builds a MAC-level acknowledgment for a frame from `ra`.
    pub fn ack(ra: MacAddr) -> Self {
        Self {
            kind: MacFrameKind::Ack,
            duration_us: 0,
            addr1: ra,
            addr2: None,
            addr3: None,
            seq: 0,
            body: Vec::new(),
        }
    }

    /// Builds a beacon with a given SSID-like body tag.
    pub fn beacon(src: MacAddr, seq: u16, ssid: &[u8]) -> Self {
        let mut body = vec![0u8; 12]; // timestamp (8) + interval (2) + caps (2)
        body.extend_from_slice(&[0x00, ssid.len() as u8]);
        body.extend_from_slice(ssid);
        Self {
            kind: MacFrameKind::Beacon,
            duration_us: 0,
            addr1: MacAddr::BROADCAST,
            addr2: Some(src),
            addr3: Some(src),
            seq: seq & 0x0FFF,
            body,
        }
    }

    /// True if the frame expects a MAC-level ACK (unicast data).
    pub fn expects_ack(&self) -> bool {
        self.kind == MacFrameKind::Data && !self.addr1.is_broadcast()
    }

    /// Serializes to PSDU bytes including the FCS.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.body.len() + 4);
        out.extend_from_slice(&self.kind.frame_control().to_le_bytes());
        out.extend_from_slice(&self.duration_us.to_le_bytes());
        out.extend_from_slice(&self.addr1.0);
        if self.kind != MacFrameKind::Ack {
            out.extend_from_slice(&self.addr2.expect("non-ACK needs addr2").0);
            out.extend_from_slice(&self.addr3.expect("non-ACK needs addr3").0);
            out.extend_from_slice(&(self.seq << 4).to_le_bytes());
        }
        out.extend_from_slice(&self.body);
        let fcs = Crc::crc32_ieee().compute(&out) as u32;
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Parses PSDU bytes, verifying the FCS. Returns `None` if the FCS is
    /// bad, the frame is truncated, or the type is unknown.
    pub fn from_bytes(psdu: &[u8]) -> Option<Self> {
        if psdu.len() < 14 {
            return None;
        }
        let (data, fcs_bytes) = psdu.split_at(psdu.len() - 4);
        let fcs_rx = u32::from_le_bytes(fcs_bytes.try_into().ok()?);
        if Crc::crc32_ieee().compute(data) as u32 != fcs_rx {
            return None;
        }
        let fc = u16::from_le_bytes(data[0..2].try_into().ok()?);
        let kind = MacFrameKind::from_frame_control(fc)?;
        let duration_us = u16::from_le_bytes(data[2..4].try_into().ok()?);
        let addr1 = MacAddr(data[4..10].try_into().ok()?);
        if kind == MacFrameKind::Ack {
            if data.len() != 10 {
                return None;
            }
            return Some(MacFrame {
                kind,
                duration_us,
                addr1,
                addr2: None,
                addr3: None,
                seq: 0,
                body: Vec::new(),
            });
        }
        if data.len() < 24 {
            return None;
        }
        let addr2 = MacAddr(data[10..16].try_into().ok()?);
        let addr3 = MacAddr(data[16..22].try_into().ok()?);
        let seq = u16::from_le_bytes(data[22..24].try_into().ok()?) >> 4;
        Some(MacFrame {
            kind,
            duration_us,
            addr1,
            addr2: Some(addr2),
            addr3: Some(addr3),
            seq,
            body: data[24..].to_vec(),
        })
    }
}

/// Builds an ICMP-echo-like payload of `payload_len` bytes carrying a
/// sequence number, mimicking the paper's `ping` workloads.
pub fn icmp_echo_body(seq: u16, payload_len: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(payload_len.max(4));
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(payload_len as u16).to_le_bytes());
    while body.len() < payload_len {
        body.push((body.len() % 251) as u8);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frame_round_trip() {
        let f = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            1234,
            icmp_echo_body(7, 500),
        );
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 24 + 500 + 4);
        let parsed = MacFrame::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn ack_frame_is_14_bytes() {
        let f = MacFrame::ack(MacAddr::station(3));
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), 14); // 10 + FCS
        let parsed = MacFrame::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.kind, MacFrameKind::Ack);
        assert_eq!(parsed.addr1, MacAddr::station(3));
    }

    #[test]
    fn beacon_round_trip() {
        let f = MacFrame::beacon(MacAddr::station(0), 9, b"rfdump-test");
        let parsed = MacFrame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(parsed.kind, MacFrameKind::Beacon);
        assert!(parsed.addr1.is_broadcast());
    }

    #[test]
    fn corrupted_fcs_rejected() {
        let f = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            5,
            vec![1, 2, 3],
        );
        let mut bytes = f.to_bytes();
        bytes[10] ^= 0x40;
        assert!(MacFrame::from_bytes(&bytes).is_none());
    }

    #[test]
    fn truncated_frames_rejected() {
        assert!(MacFrame::from_bytes(&[]).is_none());
        assert!(MacFrame::from_bytes(&[0u8; 8]).is_none());
    }

    #[test]
    fn broadcast_data_expects_no_ack() {
        let bc = MacFrame::data(
            MacAddr::station(1),
            MacAddr::BROADCAST,
            MacAddr::station(0),
            0,
            vec![],
        );
        assert!(!bc.expects_ack());
        let uc = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            0,
            vec![],
        );
        assert!(uc.expects_ack());
    }

    #[test]
    fn icmp_body_embeds_sequence() {
        let b = icmp_echo_body(0xBEEF, 64);
        assert_eq!(b.len(), 64);
        assert_eq!(u16::from_le_bytes([b[0], b[1]]), 0xBEEF);
    }
}
