//! Complementary Code Keying for 5.5 and 11 Mbps 802.11b.
//!
//! Each CCK symbol is 8 complex chips derived from four phases
//! (IEEE 802.11-2007 §18.4.6.5):
//!
//! ```text
//! c = ( e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
//!       e^{j(p1+p2+p3)},    e^{j(p1+p3)},   -e^{j(p1+p2)},    e^{j p1} )
//! ```
//!
//! `p1` is DQPSK-encoded across symbols (with an extra pi on odd-numbered
//! symbols); `p2..p4` carry the remaining data bits.

use rfd_dsp::Complex32;
use std::f32::consts::{FRAC_PI_2, PI};

/// Chips per CCK symbol.
pub const CHIPS_PER_SYMBOL: usize = 8;

/// QPSK phase for a data dibit, first-transmitted bit `d0`:
/// (0,0) -> 0, (1,0) -> pi/2, (0,1) -> pi, (1,1) -> 3pi/2.
fn qpsk_phase(d0: bool, d1: bool) -> f32 {
    match (d0, d1) {
        (false, false) => 0.0,
        (true, false) => FRAC_PI_2,
        (false, true) => PI,
        (true, true) => 3.0 * FRAC_PI_2,
    }
}

/// DQPSK phase *increment* for the `p1` dibit. Even/odd refers to the symbol
/// index within the PSDU; odd symbols get an extra pi.
fn dqpsk_increment(d0: bool, d1: bool, odd_symbol: bool) -> f32 {
    let base = match (d0, d1) {
        (false, false) => 0.0,
        (true, false) => FRAC_PI_2,
        (false, true) => PI,
        (true, true) => 3.0 * FRAC_PI_2,
    };
    if odd_symbol {
        base + PI
    } else {
        base
    }
}

/// Generates the 8 chips for given phases.
pub fn chips_for_phases(p1: f32, p2: f32, p3: f32, p4: f32) -> [Complex32; 8] {
    let e = Complex32::cis;
    [
        e(p1 + p2 + p3 + p4),
        e(p1 + p3 + p4),
        e(p1 + p2 + p4),
        -e(p1 + p4),
        e(p1 + p2 + p3),
        e(p1 + p3),
        -e(p1 + p2),
        e(p1),
    ]
}

/// Encodes one CCK symbol.
///
/// * `bits` — 4 bits (5.5 Mbps) or 8 bits (11 Mbps), in transmission order.
/// * `phase_ref` — running DQPSK reference phase; updated in place.
/// * `symbol_index` — index within the PSDU (drives the even/odd pi).
pub fn encode_symbol(bits: &[bool], phase_ref: &mut f32, symbol_index: usize) -> [Complex32; 8] {
    let odd = symbol_index % 2 == 1;
    match bits.len() {
        4 => {
            *phase_ref += dqpsk_increment(bits[0], bits[1], odd);
            // 5.5 Mbps phase mapping (§18.4.6.5.3):
            let p2 = if bits[2] { PI + FRAC_PI_2 } else { FRAC_PI_2 };
            let p3 = 0.0;
            let p4 = if bits[3] { PI } else { 0.0 };
            chips_for_phases(*phase_ref, p2, p3, p4)
        }
        8 => {
            *phase_ref += dqpsk_increment(bits[0], bits[1], odd);
            let p2 = qpsk_phase(bits[2], bits[3]);
            let p3 = qpsk_phase(bits[4], bits[5]);
            let p4 = qpsk_phase(bits[6], bits[7]);
            chips_for_phases(*phase_ref, p2, p3, p4)
        }
        n => panic!("CCK symbol must be 4 or 8 bits, got {n}"),
    }
}

/// All candidate `(p2, p3, p4)` phase triples (and their data bits) for a
/// rate, used by the maximum-likelihood demodulator.
pub fn candidates(bits_per_symbol: usize) -> Vec<(Vec<bool>, f32, f32, f32)> {
    match bits_per_symbol {
        4 => {
            let mut v = Vec::with_capacity(4);
            for d2 in [false, true] {
                for d3 in [false, true] {
                    let p2 = if d2 { PI + FRAC_PI_2 } else { FRAC_PI_2 };
                    let p4 = if d3 { PI } else { 0.0 };
                    v.push((vec![d2, d3], p2, 0.0, p4));
                }
            }
            v
        }
        8 => {
            let mut v = Vec::with_capacity(64);
            for b in 0..64u8 {
                let bits: Vec<bool> = (0..6).map(|i| (b >> i) & 1 == 1).collect();
                let p2 = qpsk_phase(bits[0], bits[1]);
                let p3 = qpsk_phase(bits[2], bits[3]);
                let p4 = qpsk_phase(bits[4], bits[5]);
                v.push((bits, p2, p3, p4));
            }
            v
        }
        n => panic!("CCK bits/symbol must be 4 or 8, got {n}"),
    }
}

/// Maximum-likelihood decode of one received 8-chip CCK symbol.
///
/// Correlates against every codeword; the correlation's complex angle
/// recovers `p1`, from which the DQPSK dibit is decoded against
/// `phase_ref` (updated in place on success).
///
/// Returns the decoded bits (4 or 8) and the correlation magnitude
/// (normalized to 1.0 for a clean symbol).
pub fn decode_symbol(
    chips: &[Complex32],
    bits_per_symbol: usize,
    phase_ref: &mut f32,
    symbol_index: usize,
) -> (Vec<bool>, f32) {
    debug_assert_eq!(chips.len(), 8);
    let cands = candidates(bits_per_symbol);
    let mut best: Option<(usize, Complex32)> = None;
    for (i, (_, p2, p3, p4)) in cands.iter().enumerate() {
        // Correlate against the codeword with p1 = 0; the residual angle of
        // the correlation is the received p1.
        let cw = chips_for_phases(0.0, *p2, *p3, *p4);
        let mut acc = Complex32::ZERO;
        for (r, c) in chips.iter().zip(cw.iter()) {
            acc += *r * c.conj();
        }
        if best.is_none_or(|(_, b)| acc.norm_sqr() > b.norm_sqr()) {
            best = Some((i, acc));
        }
    }
    let (idx, acc) = best.expect("candidate list is never empty");
    let p1_rx = acc.arg();
    // Decode the DQPSK increment.
    let odd = symbol_index % 2 == 1;
    let mut delta = p1_rx - *phase_ref;
    if odd {
        delta -= PI;
    }
    // Snap to the nearest quadrant.
    let quad = ((delta / FRAC_PI_2).round().rem_euclid(4.0)) as u8;
    let (d0, d1) = match quad {
        0 => (false, false),
        1 => (true, false),
        2 => (false, true),
        _ => (true, true),
    };
    *phase_ref = p1_rx;
    let mut bits = vec![d0, d1];
    bits.extend_from_slice(&cands[idx].0);
    let quality = acc.abs() / 8.0 / avg_chip_mag(chips).max(1e-9);
    (bits, quality)
}

fn avg_chip_mag(chips: &[Complex32]) -> f32 {
    chips.iter().map(|z| z.abs()).sum::<f32>() / chips.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codewords_are_constant_envelope() {
        let cw = chips_for_phases(0.3, 1.1, 2.2, 0.7);
        for c in cw {
            assert!((c.abs() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cck_11_round_trip_random_bits() {
        let mut enc_ref = 0.0f32;
        let mut dec_ref = 0.0f32;
        let mut state = 0x1234_5678u64;
        for sym in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits: Vec<bool> = (0..8).map(|i| (state >> (i + 20)) & 1 == 1).collect();
            let chips = encode_symbol(&bits, &mut enc_ref, sym);
            let (decoded, q) = decode_symbol(&chips, 8, &mut dec_ref, sym);
            assert_eq!(decoded, bits, "symbol {sym}");
            assert!(q > 0.99);
        }
    }

    #[test]
    fn cck_5_5_round_trip_random_bits() {
        let mut enc_ref = 0.0f32;
        let mut dec_ref = 0.0f32;
        let mut state = 0x9E37_79B9u64;
        for sym in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits: Vec<bool> = (0..4).map(|i| (state >> (i + 17)) & 1 == 1).collect();
            let chips = encode_symbol(&bits, &mut enc_ref, sym);
            let (decoded, q) = decode_symbol(&chips, 4, &mut dec_ref, sym);
            assert_eq!(decoded, bits, "symbol {sym}");
            assert!(q > 0.99);
        }
    }

    #[test]
    fn round_trip_survives_common_phase_rotation() {
        // A common phase rotation (carrier offset) must not break the
        // differential p1 decode once the reference tracks it.
        let rot = Complex32::cis(0.4);
        let mut enc_ref = 0.0f32;
        let mut dec_ref = 0.4f32; // receiver reference absorbs the rotation
        for sym in 0..50 {
            let bits: Vec<bool> = (0..8).map(|i| (sym >> i) & 1 == 1).collect();
            let chips = encode_symbol(&bits, &mut enc_ref, sym);
            let rx: Vec<Complex32> = chips.iter().map(|&c| c * rot).collect();
            let (decoded, _) = decode_symbol(&rx, 8, &mut dec_ref, sym);
            assert_eq!(decoded, bits, "symbol {sym}");
        }
    }

    #[test]
    fn candidate_counts() {
        assert_eq!(candidates(4).len(), 4);
        assert_eq!(candidates(8).len(), 64);
    }
}
