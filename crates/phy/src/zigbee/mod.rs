//! IEEE 802.15.4 (2.4 GHz O-QPSK PHY), i.e. the ZigBee PHY.
//!
//! This is the protocol the RFDump paper repeatedly uses as its
//! *extensibility* example (Table 2, §3.2): 2 Mchips/s, 32-chip DSSS with
//! 16 PN sequences, half-sine (MSK-equivalent) O-QPSK shaping, 62.5 ksym/s.
//!
//! The implementation covers the full PPDU: SHR (8-symbol preamble + SFD),
//! PHR (7-bit length), PSDU with CRC-16 FCS; a modulator producing complex
//! baseband at a configurable integer number of samples per chip; and a
//! noncoherent MSK-style receiver (chip detection via phase increments,
//! despreading by best-of-16 correlation).

use crate::Waveform;
use rfd_dsp::coding::{bits_to_bytes_lsb, Crc};
use rfd_dsp::phase::wrap_phase;
use rfd_dsp::Complex32;

/// Chip rate of the 2.4 GHz PHY.
pub const CHIP_RATE: f64 = 2e6;
/// Symbol rate (4 bits per symbol, 32 chips per symbol).
pub const SYMBOL_RATE: f64 = 62.5e3;
/// Chips per symbol.
pub const CHIPS_PER_SYMBOL: usize = 32;
/// Occupied channel width (approximately; the main lobe).
pub const CHANNEL_WIDTH_HZ: f64 = 5e6;
/// MAC/PHY timing: one backoff period = 20 symbols = 320 µs (Table 2).
pub const BACKOFF_US: f64 = 320.0;
/// Turnaround/ack gap `t_ACK` = 12 symbols = 192 µs (Table 2's 192).
pub const TACK_US: f64 = 192.0;
/// LIFS (long interframe space) = 40 symbols = 640 µs; paper's Table 2
/// quotes the 600 µs order of magnitude.
pub const LIFS_US: f64 = 640.0;
/// SIFS (short interframe space) = 12 symbols = 192 µs.
pub const SIFS_US: f64 = 192.0;

/// The 16 PN sequences (IEEE 802.15.4-2006 Table 24), chip 0 first,
/// bit i of the u32 = chip i.
pub const PN: [u32; 16] = [
    0b1101_1001_1100_0011_0101_0010_0010_1110,
    0b1110_1101_1001_1100_0011_0101_0010_0010,
    0b0010_1110_1101_1001_1100_0011_0101_0010,
    0b0010_0010_1110_1101_1001_1100_0011_0101,
    0b0101_0010_0010_1110_1101_1001_1100_0011,
    0b0011_0101_0010_0010_1110_1101_1001_1100,
    0b1100_0011_0101_0010_0010_1110_1101_1001,
    0b1001_1100_0011_0101_0010_0010_1110_1101,
    0b1000_1100_1001_0110_0000_0111_0111_1011,
    0b1011_1000_1100_1001_0110_0000_0111_0111,
    0b0111_1011_1000_1100_1001_0110_0000_0111,
    0b0111_0111_1011_1000_1100_1001_0110_0000,
    0b0000_0111_0111_1011_1000_1100_1001_0110,
    0b0110_0000_0111_0111_1011_1000_1100_1001,
    0b1001_0110_0000_0111_0111_1011_1000_1100,
    0b1100_1001_0110_0000_0111_0111_1011_1000,
];

/// SHR: 8 zero symbols of preamble followed by the SFD byte 0xA7.
pub const PREAMBLE_SYMBOLS: usize = 8;
/// Start-of-frame delimiter.
pub const SFD: u8 = 0xA7;

// NOTE on bit order inside PN constants: the binary literals above read
// left-to-right as chip 31 .. chip 0 because Rust literals are MSB-first;
// `chip(seq, i)` accounts for that.

/// Chip `i` (0 = first transmitted) of PN sequence `s`.
#[inline]
pub fn chip(s: u8, i: usize) -> bool {
    debug_assert!(i < 32);
    (PN[s as usize] >> (31 - i)) & 1 == 1
}

/// A PHY frame: just the PSDU (MAC frame) bytes; the FCS is appended by the
/// builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZigbeeFrame {
    /// MAC payload without FCS.
    pub payload: Vec<u8>,
}

impl ZigbeeFrame {
    /// Creates a frame; payload + 2-byte FCS must fit the 127-byte PSDU.
    pub fn new(payload: Vec<u8>) -> Self {
        assert!(payload.len() + 2 <= 127, "PSDU limit is 127 bytes");
        Self { payload }
    }

    /// PSDU bytes including FCS.
    pub fn psdu(&self) -> Vec<u8> {
        let mut v = self.payload.clone();
        let fcs = Crc::crc16_802154().compute(&v) as u16;
        v.extend_from_slice(&fcs.to_le_bytes());
        v
    }

    /// Parses and FCS-verifies a PSDU.
    pub fn from_psdu(psdu: &[u8]) -> Option<Self> {
        if psdu.len() < 2 {
            return None;
        }
        let (data, fcs) = psdu.split_at(psdu.len() - 2);
        let rx = u16::from_le_bytes(fcs.try_into().ok()?);
        if Crc::crc16_802154().compute(data) as u16 != rx {
            return None;
        }
        Some(Self {
            payload: data.to_vec(),
        })
    }

    /// Total airtime in microseconds (SHR + PHR + PSDU at 62.5 ksym/s).
    pub fn airtime_us(&self) -> f64 {
        let symbols = (PREAMBLE_SYMBOLS + 2 + 2 + (self.psdu().len()) * 2) as f64;
        symbols * 16.0 // 16 us per symbol
    }
}

/// The 4-bit data symbols of a full PPDU: preamble, SFD, PHR (length), PSDU.
pub fn ppdu_symbols(frame: &ZigbeeFrame) -> Vec<u8> {
    let psdu = frame.psdu();
    let mut nibbles = Vec::with_capacity(PREAMBLE_SYMBOLS + 2 + 2 + psdu.len() * 2);
    nibbles.extend(std::iter::repeat_n(0u8, PREAMBLE_SYMBOLS));
    nibbles.push(SFD & 0x0F);
    nibbles.push(SFD >> 4);
    let phr = psdu.len() as u8 & 0x7F;
    nibbles.push(phr & 0x0F);
    nibbles.push(phr >> 4);
    for b in &psdu {
        nibbles.push(b & 0x0F);
        nibbles.push(b >> 4);
    }
    nibbles
}

/// Modulates a frame with O-QPSK half-sine shaping.
///
/// `samples_per_chip` must be ≥ 2 and even (the I/Q half-chip offset is
/// `samples_per_chip/2` samples). At 4 samples/chip the output rate is the
/// monitor's 8 Msps.
pub fn modulate(frame: &ZigbeeFrame, samples_per_chip: usize) -> Waveform {
    assert!(samples_per_chip >= 2 && samples_per_chip.is_multiple_of(2));
    let symbols = ppdu_symbols(frame);
    let nchips = symbols.len() * CHIPS_PER_SYMBOL;
    let spc = samples_per_chip;
    // Each I (even) or Q (odd) chip is stretched over 2 chip periods with a
    // half-sine pulse; Q is delayed by one chip period.
    let total = nchips * spc + spc; // room for the trailing Q half
    let mut i_rail = vec![0.0f32; total];
    let mut q_rail = vec![0.0f32; total];
    let pulse: Vec<f32> = (0..2 * spc)
        .map(|k| ((k as f64 + 0.5) * std::f64::consts::PI / (2 * spc) as f64).sin() as f32)
        .collect();
    let mut chip_idx = 0usize;
    for &sym in &symbols {
        for c in 0..CHIPS_PER_SYMBOL {
            let bit = chip(sym, c);
            let v = if bit { 1.0 } else { -1.0 };
            let start = (chip_idx / 2) * 2 * spc + if chip_idx % 2 == 1 { spc } else { 0 };
            let rail = if chip_idx.is_multiple_of(2) {
                &mut i_rail
            } else {
                &mut q_rail
            };
            for (k, &p) in pulse.iter().enumerate() {
                if start + k < total {
                    rail[start + k] += v * p;
                }
            }
            chip_idx += 1;
        }
    }
    let samples: Vec<Complex32> = i_rail
        .iter()
        .zip(q_rail.iter())
        .map(|(&i, &q)| Complex32::new(i, q))
        .collect();
    Waveform {
        samples,
        sample_rate: CHIP_RATE * spc as f64,
    }
}

/// Demodulates a sample block: noncoherent MSK chip detection, symbol sync
/// via preamble/SFD search, despreading by best-of-16 correlation, PHR/PSDU
/// extraction and FCS check.
///
/// `samples` must be at `CHIP_RATE * spc` for integer `spc` (resample first
/// otherwise).
///
/// Half-sine O-QPSK **is** MSK: the carrier phase advances by exactly ±π/2
/// between consecutive chip centers. The rotation direction is a function of
/// the *pair* of adjacent chips and the chip parity (because I and Q rails
/// alternate), so the receiver measures the sign sequence of center-to-center
/// phase increments and runs it through a differential chain
/// `a[k+1] = a[k] ⊕ (s[k] ⊕ parity(k))`, trying both initial values and both
/// parities (via the sample-offset search) and keeping the hypothesis that
/// best matches the known preamble.
pub fn demodulate(samples: &[Complex32], samples_per_chip: usize) -> Option<ZigbeeFrame> {
    let spc = samples_per_chip;
    if samples.len() < (PREAMBLE_SYMBOLS + 4) * CHIPS_PER_SYMBOL * spc {
        return None;
    }
    let sym0 = symbol_pattern(0);
    // Collect every plausible (sampling offset, chain init, alignment)
    // hypothesis: a two-symbol preamble correlation ≥ 60/64. The payload can
    // legitimately contain two consecutive symbol-0s (64 chips identical to
    // preamble), and a wrong sampling phase can still slice chips well
    // enough to score perfectly — so candidates are *verified* by the
    // SFD + FCS parse rather than trusted on score.
    let mut candidates: Vec<(Vec<bool>, usize, u32)> = Vec::new();
    for off in 0..spc * 2 {
        let signs = extract_increment_signs(samples, spc, off);
        if signs.len() < 65 {
            continue;
        }
        for init in [false, true] {
            let chips = differential_chain(&signs, init);
            let search = chips.len().saturating_sub(64).min(600);
            let mut w = 0usize;
            while w < search {
                let agree = (0..64).filter(|&i| chips[w + i] == sym0[i % 32]).count() as u32;
                if agree >= 60 {
                    candidates.push((chips.clone(), w, agree));
                    // Skip past this preamble region; nearby offsets are the
                    // same lock.
                    w += 24;
                } else {
                    w += 1;
                }
            }
        }
    }
    // Best score first, earliest alignment breaking ties.
    candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)));
    candidates.truncate(16);
    for (chips, align, _score) in &candidates {
        if let Some(frame) = try_parse(chips, *align) {
            return Some(frame);
        }
    }
    None
}

/// Attempts to parse a PPDU from `chips` assuming a preamble symbol starts
/// at `align`: despread, locate the SFD, read PHR and PSDU, verify the FCS.
fn try_parse(chips: &[bool], align: usize) -> Option<ZigbeeFrame> {
    let nsym = (chips.len() - align) / 32;
    if nsym < 4 {
        return None;
    }
    let symbols: Vec<(u8, u32)> = (0..nsym)
        .map(|s| despread(&chips[align + s * 32..align + s * 32 + 32]))
        .collect();
    // Find SFD: symbol pair (7, 10) = 0xA7 nibbles (low first: 7 then A),
    // preceded by a preamble symbol 0.
    let sfd_pos = (1..symbols.len().saturating_sub(3)).find(|&i| {
        symbols[i].0 == (SFD & 0x0F) && symbols[i + 1].0 == (SFD >> 4) && symbols[i - 1].0 == 0
    })?;
    let phr_lo = symbols.get(sfd_pos + 2)?.0;
    let phr_hi = symbols.get(sfd_pos + 3)?.0;
    let len = ((phr_hi << 4) | phr_lo) as usize & 0x7F;
    let data_start = sfd_pos + 4;
    if data_start + len * 2 > symbols.len() {
        return None;
    }
    let mut bits = Vec::with_capacity(len * 8);
    for k in 0..len * 2 {
        let nib = symbols[data_start + k].0;
        for b in 0..4 {
            bits.push((nib >> b) & 1 == 1);
        }
    }
    let psdu = bits_to_bytes_lsb(&bits);
    ZigbeeFrame::from_psdu(&psdu)
}

/// The chip pattern of data symbol `s` as a bool vector.
fn symbol_pattern(s: u8) -> Vec<bool> {
    (0..32).map(|i| chip(s, i)).collect()
}

/// Signs of the phase increments between consecutive chip centers starting
/// at sample offset `off` (`true` = counterclockwise).
fn extract_increment_signs(samples: &[Complex32], spc: usize, off: usize) -> Vec<bool> {
    let mut signs = Vec::with_capacity(samples.len() / spc);
    let mut i = off;
    while i + spc < samples.len() {
        let d = wrap_phase((samples[i + spc] * samples[i].conj()).arg());
        signs.push(d > 0.0);
        i += spc;
    }
    signs
}

/// Runs the MSK differential chain: `a[k+1] = a[k] ^ s[k] ^ (k even)`,
/// starting from hypothesis `a[0] = init`. Output length is
/// `signs.len() + 1`.
fn differential_chain(signs: &[bool], init: bool) -> Vec<bool> {
    let mut chips = Vec::with_capacity(signs.len() + 1);
    let mut a = init;
    chips.push(a);
    for (k, &s) in signs.iter().enumerate() {
        a = a ^ s ^ (k % 2 == 0);
        chips.push(a);
    }
    chips
}

/// Despreads 32 chips: returns (best symbol, agreement count).
fn despread(chips: &[bool]) -> (u8, u32) {
    let mut word = 0u32;
    for (i, &c) in chips.iter().enumerate() {
        if c {
            word |= 1 << (31 - i);
        }
    }
    let mut best_sym = 0u8;
    let mut best_score = 0u32;
    for s in 0..16u8 {
        let agree = 32 - (word ^ PN[s as usize]).count_ones();
        if agree > best_score {
            best_score = agree;
            best_sym = s;
        }
    }
    (best_sym, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_dsp::rng::GaussianGen;

    #[test]
    fn pn_sequences_are_distinct_and_balanced() {
        for (i, &a) in PN.iter().enumerate() {
            for &b in PN.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
            let ones = a.count_ones();
            assert!((12..=20).contains(&ones), "sequence {i} unbalanced: {ones}");
        }
    }

    #[test]
    fn pn_cross_correlation_is_low() {
        // The first 8 sequences are cyclic shifts; any two distinct
        // sequences should agree in well under 32 positions.
        for (i, &pi) in PN.iter().enumerate() {
            for (j, &pj) in PN.iter().enumerate() {
                if i == j {
                    continue;
                }
                let agree = 32 - (pi ^ pj).count_ones();
                assert!(agree <= 24, "PN {i} vs {j}: {agree}");
            }
        }
    }

    #[test]
    fn psdu_round_trip_with_fcs() {
        let f = ZigbeeFrame::new(vec![1, 2, 3, 4, 5]);
        let psdu = f.psdu();
        assert_eq!(psdu.len(), 7);
        assert_eq!(ZigbeeFrame::from_psdu(&psdu).unwrap(), f);
        let mut bad = psdu.clone();
        bad[2] ^= 1;
        assert!(ZigbeeFrame::from_psdu(&bad).is_none());
    }

    #[test]
    fn ppdu_symbol_structure() {
        let f = ZigbeeFrame::new(vec![0xAB]);
        let syms = ppdu_symbols(&f);
        // 8 preamble + 2 SFD + 2 PHR + 3 bytes * 2 nibbles.
        assert_eq!(syms.len(), 8 + 2 + 2 + 6);
        assert!(syms[..8].iter().all(|&s| s == 0));
        assert_eq!(syms[8], 0x7);
        assert_eq!(syms[9], 0xA);
    }

    #[test]
    fn modulated_envelope_is_nearly_constant() {
        // Half-sine O-QPSK is constant-envelope away from the edges.
        let f = ZigbeeFrame::new(vec![0x55; 10]);
        let w = modulate(&f, 4);
        let mid = &w.samples[200..w.samples.len() - 200];
        for z in mid {
            assert!((z.abs() - 1.0).abs() < 0.05, "envelope {}", z.abs());
        }
    }

    #[test]
    fn clean_round_trip() {
        let f = ZigbeeFrame::new((0..40).map(|i| (i * 7) as u8).collect());
        let w = modulate(&f, 4);
        let mut sig = vec![Complex32::ZERO; 64];
        sig.extend_from_slice(&w.samples);
        sig.extend(vec![Complex32::ZERO; 64]);
        let rx = demodulate(&sig, 4).expect("decode");
        assert_eq!(rx, f);
    }

    #[test]
    fn round_trip_with_noise() {
        let f = ZigbeeFrame::new(vec![0xDE, 0xAD, 0xBE, 0xEF, 9, 9, 9]);
        let w = modulate(&f, 4);
        let mut sig = vec![Complex32::ZERO; 100];
        sig.extend_from_slice(&w.samples);
        sig.extend(vec![Complex32::ZERO; 100]);
        GaussianGen::new(21).add_awgn(&mut sig, 0.03); // ~15 dB
        let rx = demodulate(&sig, 4).expect("decode under noise");
        assert_eq!(rx, f);
    }

    #[test]
    fn noise_only_rejected() {
        let mut sig = vec![Complex32::ZERO; 20_000];
        GaussianGen::new(8).add_awgn(&mut sig, 0.2);
        assert!(demodulate(&sig, 4).is_none());
    }

    #[test]
    fn airtime_formula() {
        let f = ZigbeeFrame::new(vec![0; 18]); // PSDU 20 bytes
                                               // (8 + 2 + 2 + 40 symbols) * 16 us.
        assert!((f.airtime_us() - 52.0 * 16.0).abs() < 1e-9);
    }
}
