//! A minimal complex sample type.
//!
//! The whole workspace traffics in interleaved complex baseband samples, so
//! this type is deliberately tiny (`#[repr(C)]`, two `f32`s) and implements
//! only the operations the DSP code actually needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex baseband sample with `f32` components.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex32 {
    /// In-phase (real) component.
    pub re: f32,
    /// Quadrature (imaginary) component.
    pub im: f32,
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex32 = Complex32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(magnitude: f32, angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(magnitude * c, magnitude * s)
    }

    /// Unit phasor `e^{j angle}`.
    #[inline]
    pub fn cis(angle: f32) -> Self {
        Self::from_polar(1.0, angle)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|^2`, i.e. the instantaneous power of a sample.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Self::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Fused multiply-accumulate convenience: `self + a * b`.
    #[inline]
    pub fn mul_add(self, a: Complex32, b: Complex32) -> Self {
        self + a * b
    }
}

impl fmt::Debug for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline]
    fn add(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex32 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline]
    fn sub(self, rhs: Complex32) -> Complex32 {
        Complex32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        Complex32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: f32) -> Complex32 {
        self.scale(rhs)
    }
}

impl Mul<Complex32> for f32 {
    type Output = Complex32;
    #[inline]
    fn mul(self, rhs: Complex32) -> Complex32 {
        rhs.scale(self)
    }
}

impl Div<f32> for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: f32) -> Complex32 {
        self.scale(1.0 / rhs)
    }
}

impl DivAssign<f32> for Complex32 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Div for Complex32 {
    type Output = Complex32;
    #[inline]
    fn div(self, rhs: Complex32) -> Complex32 {
        let d = rhs.norm_sqr();
        Complex32::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline]
    fn neg(self) -> Complex32 {
        Complex32::new(-self.re, -self.im)
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |a, b| a + b)
    }
}

impl From<f32> for Complex32 {
    #[inline]
    fn from(re: f32) -> Self {
        Complex32::new(re, 0.0)
    }
}

impl From<(f32, f32)> for Complex32 {
    #[inline]
    fn from((re, im): (f32, f32)) -> Self {
        Complex32::new(re, im)
    }
}

/// Converts a USRP-style interleaved `i16` I/Q pair into a unit-scale sample.
///
/// The USRP 1 delivers 12-bit samples in 16-bit containers; we normalize by
/// `i16::MAX` so a full-scale trace maps onto roughly `[-1, 1]`.
#[inline]
pub fn from_i16_iq(i: i16, q: i16) -> Complex32 {
    const SCALE: f32 = 1.0 / i16::MAX as f32;
    Complex32::new(i as f32 * SCALE, q as f32 * SCALE)
}

/// Converts a unit-scale sample back to an interleaved `i16` I/Q pair,
/// saturating on overflow.
#[inline]
pub fn to_i16_iq(z: Complex32) -> (i16, i16) {
    let clamp = |x: f32| (x * i16::MAX as f32).clamp(i16::MIN as f32, i16::MAX as f32) as i16;
    (clamp(z.re), clamp(z.im))
}

/// Average power (mean squared magnitude) of a slice of samples.
///
/// Dispatches through the vectorized kernel layer; see
/// [`crate::kernels::mean_power`].
pub fn mean_power(samples: &[Complex32]) -> f32 {
    crate::kernels::mean_power(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex32::new(3.0, -4.0);
        assert_eq!(z + Complex32::ZERO, z);
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(z - z, Complex32::ZERO);
        assert!(close((z * z.conj()).re, z.norm_sqr()));
        assert!(close((z * z.conj()).im, 0.0));
    }

    #[test]
    fn division_is_mul_inverse() {
        let a = Complex32::new(1.5, -2.5);
        let b = Complex32::new(-0.25, 3.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn polar_round_trip() {
        for k in 0..16 {
            let angle = (k as f32) * std::f32::consts::FRAC_PI_8 - 3.0;
            let z = Complex32::from_polar(2.5, angle);
            assert!(close(z.abs(), 2.5));
            let diff = (z.arg() - angle).rem_euclid(std::f32::consts::TAU);
            assert!(!(1e-4..=std::f32::consts::TAU - 1e-4).contains(&diff));
        }
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex32::I * Complex32::I, Complex32::new(-1.0, 0.0));
    }

    #[test]
    fn i16_round_trip_is_close() {
        let z = Complex32::new(0.5, -0.25);
        let (i, q) = to_i16_iq(z);
        let back = from_i16_iq(i, q);
        assert!((back.re - z.re).abs() < 1e-3);
        assert!((back.im - z.im).abs() < 1e-3);
    }

    #[test]
    fn i16_saturates() {
        let (i, q) = to_i16_iq(Complex32::new(4.0, -4.0));
        assert_eq!(i, i16::MAX);
        assert_eq!(q, i16::MIN);
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Complex32> = (0..64).map(|k| Complex32::cis(k as f32 * 0.1)).collect();
        assert!(close(mean_power(&v), 1.0));
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }
}
