//! Instantaneous-phase extraction and derivatives.
//!
//! §3.3 of the paper: "with one arctan operation per sample we get the phase
//! of the IF signal. The frequency offset ... will contribute a constant to
//! the first derivative ... GFSK ... can be detected by checking that the
//! second derivative of phase is always zero." These are exactly the
//! primitives implemented here, plus a quadrature FM discriminator used by
//! the Bluetooth demodulator.

use crate::complex::Complex32;
use std::f32::consts::PI;

/// Instantaneous phase of each sample, in `(-pi, pi]`.
pub fn instantaneous_phase(samples: &[Complex32]) -> Vec<f32> {
    samples.iter().map(|z| z.arg()).collect()
}

/// Wraps an angle difference into `(-pi, pi]`.
#[inline]
pub fn wrap_phase(mut d: f32) -> f32 {
    while d > PI {
        d -= 2.0 * PI;
    }
    while d <= -PI {
        d += 2.0 * PI;
    }
    d
}

/// Unwraps a phase sequence in place (removes 2*pi jumps between
/// consecutive samples).
pub fn unwrap_in_place(phases: &mut [f32]) {
    for i in 1..phases.len() {
        let d = wrap_phase(phases[i] - phases[i - 1]);
        phases[i] = phases[i - 1] + d;
    }
}

/// Scratch block length (complex products) for the blockwise conjugate
/// multiply used by the phase-derivative helpers: big enough to amortize
/// dispatch, small enough to live on the stack.
const CONJ_BLOCK: usize = 256;

/// Runs the vectorized adjacent conjugate-multiply over `samples` in
/// stack-sized blocks, invoking `sink` on each product in stream order.
#[inline]
fn for_each_adjacent_product<F: FnMut(Complex32)>(samples: &[Complex32], mut sink: F) {
    if samples.len() < 2 {
        return;
    }
    let m = samples.len() - 1;
    let mut scratch = [Complex32::ZERO; CONJ_BLOCK];
    let mut i = 0;
    while i < m {
        let take = (m - i).min(CONJ_BLOCK);
        crate::kernels::conj_mul_adjacent(&samples[i..i + take + 1], &mut scratch[..take]);
        for &z in &scratch[..take] {
            sink(z);
        }
        i += take;
    }
}

/// First phase derivative via conjugate multiplication:
/// `d[n] = arg(x[n] * conj(x[n-1]))`, length `samples.len() - 1`.
///
/// This is the robust way to compute phase increments — it needs no
/// unwrapping and is exactly the "complex conjugation, multiplication and
/// arctan" pipeline the paper costs out for its GFSK detector (§4.5).
pub fn phase_diff(samples: &[Complex32]) -> Vec<f32> {
    let mut out = Vec::new();
    phase_diff_into(samples, &mut out);
    out
}

/// [`phase_diff`] into a caller-provided buffer (cleared first). The
/// conjugate products run through the vectorized kernels; only the `atan2`
/// per output stays scalar.
pub fn phase_diff_into(samples: &[Complex32], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(samples.len().saturating_sub(1));
    for_each_adjacent_product(samples, |z| out.push(z.arg()));
}

/// Magnitude of the first phase derivative, wrapped into `[0, pi]`:
/// `out[n] = |wrap(arg(x[n+1] * conj(x[n])))|`. Used by the Wi-Fi Barker
/// detector, which matches on absolute phase-change patterns.
pub fn phase_diff_abs_into(samples: &[Complex32], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(samples.len().saturating_sub(1));
    for_each_adjacent_product(samples, |z| out.push(wrap_phase(z.arg()).abs()));
}

/// Fused first/second phase-derivative summary of a sample run.
///
/// Computed in one pass over the vectorized conjugate products with the
/// exact sequential accumulation the Bluetooth GFSK detector historically
/// used, so detector scores are bit-identical to the unfused formulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseDerivStats {
    /// Sum of first-derivative values `arg(x[n] * conj(x[n-1]))`.
    pub sum_d1: f64,
    /// Sum of `|wrap(d1[n] - d1[n-1])|` (second-derivative magnitudes).
    pub sum_abs_d2: f64,
    /// Number of second-derivative terms (`samples.len() - 2` when ≥ 2).
    pub count_d2: usize,
}

/// Computes [`PhaseDerivStats`] over `samples` in a single fused pass.
pub fn phase_deriv_stats(samples: &[Complex32]) -> PhaseDerivStats {
    let mut stats = PhaseDerivStats::default();
    let mut prev: Option<f32> = None;
    for_each_adjacent_product(samples, |z| {
        let d1 = z.arg();
        stats.sum_d1 += d1 as f64;
        if let Some(p) = prev {
            stats.sum_abs_d2 += wrap_phase(d1 - p).abs() as f64;
            stats.count_d2 += 1;
        }
        prev = Some(d1);
    });
    stats
}

/// Second phase derivative: differences of [`phase_diff`], wrapped; length
/// `samples.len() - 2`.
pub fn phase_diff2(samples: &[Complex32]) -> Vec<f32> {
    let d1 = phase_diff(samples);
    d1.windows(2).map(|w| wrap_phase(w[1] - w[0])).collect()
}

/// A streaming quadrature FM discriminator.
///
/// Output is instantaneous frequency in Hz given the configured sample rate.
#[derive(Debug, Clone)]
pub struct FmDiscriminator {
    fs: f64,
    prev: Option<Complex32>,
}

impl FmDiscriminator {
    /// Creates a discriminator for a stream at `fs` samples/second.
    pub fn new(fs: f64) -> Self {
        assert!(fs > 0.0);
        Self { fs, prev: None }
    }

    /// Resets stream state.
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Demodulates a slice, appending instantaneous frequency estimates (Hz)
    /// to `out`. The first call emits `input.len() - 1` values; subsequent
    /// calls emit one per input sample.
    pub fn process(&mut self, input: &[Complex32], out: &mut Vec<f32>) {
        let Some(&last) = input.last() else {
            return;
        };
        let k = (self.fs / crate::TAU64) as f32;
        // The pair straddling the previous chunk, then all in-chunk pairs
        // through the vectorized conjugate-multiply kernel.
        if let Some(p) = self.prev {
            out.push((input[0] * p.conj()).arg() * k);
        }
        out.reserve(input.len().saturating_sub(1));
        for_each_adjacent_product(input, |z| out.push(z.arg() * k));
        self.prev = Some(last);
    }
}

/// Summary statistics of a phase-derivative sequence, used by detectors to
/// score "is this GFSK?" / "what channel is it on?" questions cheaply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Mean of the sequence (for the first derivative this is the carrier
    /// offset in radians/sample).
    pub mean: f32,
    /// Standard deviation around the mean.
    pub std_dev: f32,
    /// Mean absolute value.
    pub mean_abs: f32,
}

/// Computes [`PhaseStats`] over a slice. Returns zeros for an empty slice.
pub fn phase_stats(seq: &[f32]) -> PhaseStats {
    if seq.is_empty() {
        return PhaseStats {
            mean: 0.0,
            std_dev: 0.0,
            mean_abs: 0.0,
        };
    }
    let n = seq.len() as f64;
    let mean = seq.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = seq.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
    let mean_abs = seq.iter().map(|&x| (x as f64).abs()).sum::<f64>() / n;
    PhaseStats {
        mean: mean as f32,
        std_dev: var.sqrt() as f32,
        mean_abs: mean_abs as f32,
    }
}

/// Builds a histogram of phase values over `bins` equal sectors of
/// `(-pi, pi]`, as in the paper's Figure 4 ("computing a phase histogram with
/// some number of bins, and making sure the appropriate bins are filled while
/// others are empty"). Returns normalized occupancy per bin.
pub fn phase_histogram(phases: &[f32], bins: usize) -> Vec<f32> {
    assert!(bins > 0);
    let mut hist = vec![0u32; bins];
    for &p in phases {
        let x = (wrap_phase(p) + PI) / (2.0 * PI); // [0, 1)
        let idx = ((x * bins as f32) as usize).min(bins - 1);
        hist[idx] += 1;
    }
    let total = phases.len().max(1) as f32;
    hist.into_iter().map(|c| c as f32 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    #[test]
    fn wrap_phase_range() {
        for k in -20..20 {
            let w = wrap_phase(k as f32 * 1.7);
            assert!(w > -PI - 1e-6 && w <= PI + 1e-6);
        }
        assert!((wrap_phase(3.0 * PI) - PI).abs() < 1e-5);
    }

    #[test]
    fn unwrap_makes_linear_ramp() {
        let mut nco = Nco::new(1e6, 8e6);
        let sig: Vec<Complex32> = (0..100).map(|_| nco.next()).collect();
        let mut ph = instantaneous_phase(&sig);
        unwrap_in_place(&mut ph);
        let step = crate::TAU64 as f32 * 1e6 / 8e6;
        for w in ph.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-4);
        }
    }

    #[test]
    fn phase_diff_of_tone_is_constant() {
        let mut nco = Nco::new(-0.7e6, 8e6);
        let sig: Vec<Complex32> = (0..64).map(|_| nco.next()).collect();
        let d = phase_diff(&sig);
        let expect = -(crate::TAU64 as f32) * 0.7e6 / 8e6;
        for v in d {
            assert!((v - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn phase_diff2_of_tone_is_zero() {
        let mut nco = Nco::new(2.1e6, 8e6);
        let sig: Vec<Complex32> = (0..64).map(|_| nco.next()).collect();
        for v in phase_diff2(&sig) {
            assert!(v.abs() < 1e-4);
        }
    }

    #[test]
    fn discriminator_reads_tone_frequency() {
        let f = 1.25e6;
        let mut nco = Nco::new(f, 8e6);
        let sig: Vec<Complex32> = (0..256).map(|_| nco.next()).collect();
        let mut disc = FmDiscriminator::new(8e6);
        let mut out = Vec::new();
        disc.process(&sig, &mut out);
        assert_eq!(out.len(), 255);
        for v in out {
            assert!((v - f as f32).abs() < 1e3, "got {v}");
        }
    }

    #[test]
    fn discriminator_streams_across_chunks() {
        let mut nco = Nco::new(0.5e6, 8e6);
        let sig: Vec<Complex32> = (0..100).map(|_| nco.next()).collect();
        let mut one = Vec::new();
        FmDiscriminator::new(8e6).process(&sig, &mut one);
        let mut disc = FmDiscriminator::new(8e6);
        let mut parts = Vec::new();
        for c in sig.chunks(9) {
            disc.process(c, &mut parts);
        }
        assert_eq!(one.len(), parts.len());
        for (a, b) in one.iter().zip(parts.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn bpsk_fills_two_opposite_histogram_bins() {
        // Alternate 0 / pi phases, as a BPSK signal would (paper Fig. 4).
        let sig: Vec<Complex32> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    Complex32::ONE
                } else {
                    -Complex32::ONE
                }
            })
            .collect();
        let ph = instantaneous_phase(&sig);
        let hist = phase_histogram(&ph, 4);
        let filled = hist.iter().filter(|&&h| h > 0.1).count();
        assert_eq!(filled, 2);
        assert!((hist.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stats_of_constant_sequence() {
        let s = phase_stats(&[0.5; 32]);
        assert!((s.mean - 0.5).abs() < 1e-6);
        assert!(s.std_dev < 1e-6);
        assert!((s.mean_abs - 0.5).abs() < 1e-6);
        let empty = phase_stats(&[]);
        assert_eq!(empty.mean, 0.0);
    }
}
