//! Correlation helpers.
//!
//! Used by the Wi-Fi DBPSK detector (correlating a precomputed Barker
//! phase-change pattern against the incoming phase-difference stream, §4.5),
//! the 802.11b despreader, and the Bluetooth access-code search.

use crate::complex::Complex32;

/// Sliding normalized cross-correlation of a real `pattern` against a real
/// `signal`.
///
/// Output `out[i]` is the correlation coefficient (in `[-1, 1]`) of
/// `signal[i .. i+pattern.len()]` with `pattern`; output length is
/// `signal.len() - pattern.len() + 1` (empty if the signal is shorter than
/// the pattern). Windows with near-zero energy correlate to 0.
pub fn normalized_xcorr_real(signal: &[f32], pattern: &[f32]) -> Vec<f32> {
    let m = pattern.len();
    if m == 0 || signal.len() < m {
        return Vec::new();
    }
    let p_energy: f64 = pattern.iter().map(|&x| (x as f64).powi(2)).sum();
    let p_norm = p_energy.sqrt();
    let n_out = signal.len() - m + 1;
    let mut out = Vec::with_capacity(n_out);
    // Running window energy for normalization.
    let mut w_energy: f64 = signal[..m].iter().map(|&x| (x as f64).powi(2)).sum();
    for i in 0..n_out {
        let dot = crate::kernels::dot_f32(&signal[i..i + m], pattern);
        let denom = p_norm * w_energy.max(0.0).sqrt();
        out.push(if denom > 1e-12 {
            (dot / denom) as f32
        } else {
            0.0
        });
        if i + m < signal.len() {
            w_energy += (signal[i + m] as f64).powi(2) - (signal[i] as f64).powi(2);
        }
    }
    out
}

/// Sliding complex correlation `out[i] = sum_k signal[i+k] * conj(pattern[k])`
/// (unnormalized). Output length is `signal.len() - pattern.len() + 1`.
pub fn xcorr_complex(signal: &[Complex32], pattern: &[Complex32]) -> Vec<Complex32> {
    let m = pattern.len();
    if m == 0 || signal.len() < m {
        return Vec::new();
    }
    let n_out = signal.len() - m + 1;
    let mut out = Vec::with_capacity(n_out);
    for i in 0..n_out {
        out.push(crate::kernels::conj_dot(&signal[i..i + m], pattern));
    }
    out
}

/// Finds the index and value of the maximum of a slice. Returns `None` for
/// an empty slice.
pub fn argmax(xs: &[f32]) -> Option<(usize, f32)> {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &v)| (i, v))
}

/// Finds the index and magnitude of the largest-magnitude complex value.
pub fn argmax_abs(xs: &[Complex32]) -> Option<(usize, f32)> {
    xs.iter()
        .enumerate()
        .map(|(i, z)| (i, z.abs()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Counts matching bit positions between two equal-length bit slices.
pub fn bit_agreement(a: &[bool], b: &[bool]) -> usize {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).filter(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_correlates_to_one() {
        let pat = vec![1.0, -1.0, 1.0, 1.0, -1.0];
        let mut sig = vec![0.0; 3];
        sig.extend_from_slice(&pat);
        sig.extend_from_slice(&[0.0; 3]);
        let c = normalized_xcorr_real(&sig, &pat);
        let (idx, v) = argmax(&c).unwrap();
        assert_eq!(idx, 3);
        assert!((v - 1.0).abs() < 1e-5);
    }

    #[test]
    fn inverted_match_correlates_to_minus_one() {
        let pat = vec![1.0, -1.0, 1.0];
        let sig: Vec<f32> = pat.iter().map(|x| -x).collect();
        let c = normalized_xcorr_real(&sig, &pat);
        assert!((c[0] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn scaling_does_not_change_normalized_correlation() {
        let pat = vec![1.0, 2.0, -1.0, 0.5];
        let sig: Vec<f32> = pat.iter().map(|x| x * 7.3).collect();
        let c = normalized_xcorr_real(&sig, &pat);
        assert!((c[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_window_correlates_to_zero() {
        let pat = vec![1.0, -1.0];
        let sig = vec![0.0, 0.0, 0.0];
        let c = normalized_xcorr_real(&sig, &pat);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn short_signal_yields_empty() {
        assert!(normalized_xcorr_real(&[1.0], &[1.0, 2.0]).is_empty());
        assert!(xcorr_complex(&[Complex32::ONE], &[Complex32::ONE, Complex32::ONE]).is_empty());
    }

    #[test]
    fn complex_xcorr_peak_at_alignment() {
        let pattern: Vec<Complex32> = (0..8).map(|i| Complex32::cis(i as f32 * 0.9)).collect();
        let mut sig = vec![Complex32::ZERO; 5];
        sig.extend(pattern.iter().map(|z| z.scale(2.0)));
        sig.extend(vec![Complex32::ZERO; 5]);
        let c = xcorr_complex(&sig, &pattern);
        let (idx, mag) = argmax_abs(&c).unwrap();
        assert_eq!(idx, 5);
        assert!((mag - 16.0).abs() < 1e-3); // 8 taps * |2 * conj(unit)| = 16
    }

    #[test]
    fn bit_agreement_counts() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert_eq!(bit_agreement(&a, &b), 2);
    }
}
