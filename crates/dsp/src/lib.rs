//! # rfd-dsp — DSP substrate for the RFDump workspace
//!
//! This crate provides every signal-processing primitive the rest of the
//! workspace builds on, implemented from scratch with no external numeric
//! dependencies:
//!
//! * [`Complex32`] — a small, `Copy`, cache-friendly complex sample type.
//! * [`fft`] — iterative radix-2 FFT/IFFT and power-spectrum helpers.
//! * [`fir`] — FIR filtering plus classic designs (windowed-sinc low-pass,
//!   Gaussian pulse shapers for GFSK, root-raised-cosine, half-sine).
//! * [`window`] — analysis window functions.
//! * [`resample`] — fractional-ratio resampling. The RFDump paper's USRP
//!   front-end samples at 8 Msps while 802.11b chips at 11 Mcps; the awkward
//!   11:8 ratio is central to the paper's Wi-Fi phase detector, so the
//!   resampler is a first-class citizen here.
//! * [`nco`] — numerically controlled oscillator / frequency translation.
//! * [`phase`] — instantaneous-phase extraction, unwrapping, first and second
//!   phase derivatives, and a quadrature FM discriminator. RFDump's phase
//!   detectors (§3.3 of the paper) are built directly on these.
//! * [`energy`] — dB conversions, running power averages and noise-floor
//!   estimation used by the peak detector (§4.3).
//! * [`corr`] — cross-correlation and pattern-matching helpers used by the
//!   Barker-phase Wi-Fi detector and the Bluetooth access-code search.
//! * [`kernels`] — the vectorized kernel layer underneath all of the above:
//!   runtime-dispatched scalar/SSE2/AVX2 implementations of the hot inner
//!   loops (power, reductions, FIR/correlation dots, conjugate-multiply
//!   chains, FFT butterfly stages), selectable via `RFD_KERNEL`.
//! * [`coding`] — generic bit/byte utilities, a table-driven CRC engine,
//!   self-synchronizing LFSR scramblers and additive whitening registers.
//! * [`rng`] — deterministic SplitMix64/xoshiro random numbers and Gaussian
//!   (AWGN) sample generation so every experiment in the workspace is
//!   reproducible from a seed.
//!
//! Everything is synchronous and allocation-conscious: hot paths take slices
//! and write into caller-provided buffers where that matters.

#![warn(missing_docs)]
// `unsafe` is denied crate-wide; the only exception is the SIMD intrinsic
// code in `kernels`, which carries its own `#[allow(unsafe_code)]` plus
// per-function safety contracts.
#![deny(unsafe_code)]

pub mod coding;
pub mod complex;
pub mod corr;
pub mod energy;
pub mod fft;
pub mod fir;
#[allow(unsafe_code)]
pub mod kernels;
pub mod nco;
pub mod phase;
pub mod resample;
pub mod rng;
pub mod window;

pub use complex::Complex32;

/// Two pi as `f32`, used pervasively when working with phases.
pub const TAU32: f32 = std::f32::consts::TAU;

/// Two pi as `f64`.
pub const TAU64: f64 = std::f64::consts::TAU;
