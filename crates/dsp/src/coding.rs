//! Generic bit-level utilities and channel-coding primitives shared by the
//! PHY implementations: bit/byte packing, a parameterized CRC engine, GF(2)
//! polynomial division, LFSR scrambling/whitening, and simple FEC codes
//! (repetition, shortened Hamming (15,10) used by Bluetooth's 2/3-rate FEC).

/// Unpacks bytes into bits, least-significant bit of each byte first
/// (the transmission order used by 802.11 and Bluetooth).
pub fn bytes_to_bits_lsb(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in 0..8 {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

/// Packs bits (LSB-first per byte) back into bytes. The bit count must be a
/// multiple of 8.
pub fn bits_to_bytes_lsb(bits: &[bool]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count {} not a multiple of 8",
        bits.len()
    );
    bits.chunks(8)
        .map(|c| {
            c.iter()
                .enumerate()
                .fold(0u8, |b, (i, &bit)| b | ((bit as u8) << i))
        })
        .collect()
}

/// Unpacks a `u64` into `n` bits, LSB first.
pub fn u64_to_bits_lsb(v: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (v >> i) & 1 == 1).collect()
}

/// Packs up to 64 bits (LSB first) into a `u64`.
pub fn bits_to_u64_lsb(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter()
        .enumerate()
        .fold(0u64, |v, (i, &b)| v | ((b as u64) << i))
}

// ---------------------------------------------------------------------------
// CRC engine
// ---------------------------------------------------------------------------

/// A parameterized CRC (reflected, LSB-first variant as used by IEEE 802
/// protocols).
#[derive(Debug, Clone)]
pub struct Crc {
    /// Reflected polynomial (e.g. `0xEDB88320` for CRC-32/IEEE).
    poly_reflected: u64,
    width: u32,
    init: u64,
    xor_out: u64,
}

impl Crc {
    /// Creates a CRC from its *normal* (MSB-first) polynomial representation.
    ///
    /// * `width` — CRC width in bits (≤ 64).
    /// * `poly` — normal polynomial without the leading term, e.g. `0x04C11DB7`.
    /// * `init` — initial register value (pre-reflection not applied; pass the
    ///   reflected init, which for all-ones/all-zeros is the same).
    /// * `xor_out` — final XOR.
    pub fn new(width: u32, poly: u64, init: u64, xor_out: u64) -> Self {
        assert!((1..=64).contains(&width));
        Self {
            poly_reflected: reflect(poly, width),
            width,
            init,
            xor_out,
        }
    }

    /// CRC-32/IEEE 802.3 (used for the 802.11 MAC FCS).
    pub fn crc32_ieee() -> Self {
        Self::new(32, 0x04C11DB7, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// CRC-16/X25 aka CRC-16/IBM-SDLC: poly 0x1021 (reflected), init all
    /// ones, output complemented. This is the CRC used by the 802.11b PLCP
    /// header per IEEE 802.11-2007 §18.2.3.6 and by many HDLC-derived links.
    pub fn crc16_x25() -> Self {
        Self::new(16, 0x1021, 0xFFFF, 0xFFFF)
    }

    /// CRC-16/CCITT with zero init (802.15.4 FCS, ITU-T variant).
    pub fn crc16_802154() -> Self {
        Self::new(16, 0x1021, 0x0000, 0x0000)
    }

    /// Bluetooth payload CRC: poly 0x1021 with init taken from the UAP
    /// (placed in the upper byte per Bluetooth BB §7.1.4).
    pub fn crc16_bluetooth(uap: u8) -> Self {
        Self::new(16, 0x1021, reflect((uap as u64) << 8, 16), 0x0000)
    }

    /// Computes the CRC over `data` bytes (bit order: LSB-first).
    pub fn compute(&self, data: &[u8]) -> u64 {
        let mut reg = self.init;
        for &byte in data {
            reg ^= byte as u64;
            for _ in 0..8 {
                if reg & 1 == 1 {
                    reg = (reg >> 1) ^ self.poly_reflected;
                } else {
                    reg >>= 1;
                }
            }
            reg &= mask(self.width);
        }
        (reg ^ self.xor_out) & mask(self.width)
    }

    /// Computes the CRC over a bit slice (LSB-first semantics matching
    /// [`Crc::compute`]).
    pub fn compute_bits(&self, bits: &[bool]) -> u64 {
        let mut reg = self.init;
        for &bit in bits {
            let inbit = (reg & 1) ^ (bit as u64);
            reg >>= 1;
            if inbit == 1 {
                reg ^= self.poly_reflected;
            }
            reg &= mask(self.width);
        }
        (reg ^ self.xor_out) & mask(self.width)
    }

    /// The CRC width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }
}

fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn reflect(v: u64, width: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..width {
        if (v >> i) & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// GF(2) polynomial arithmetic (for BCH-style systematic encoders)
// ---------------------------------------------------------------------------

/// Computes `data(x) * x^deg mod gen(x)` over GF(2), where `gen` includes its
/// leading term and `deg` is the generator degree. Both polynomials are
/// bit-packed LSB = x^0. Used to build systematic codewords (parity bits).
pub fn gf2_mod(mut data: u128, data_bits: u32, generator: u128, deg: u32) -> u128 {
    // Shift data up by deg (multiply by x^deg).
    data <<= deg;
    let total = data_bits + deg;
    for i in (deg..total).rev() {
        if (data >> i) & 1 == 1 {
            data ^= generator << (i - deg);
        }
    }
    data & ((1u128 << deg) - 1)
}

// ---------------------------------------------------------------------------
// Scramblers
// ---------------------------------------------------------------------------

/// A self-synchronizing (multiplicative) scrambler with polynomial
/// `x^7 + x^4 + 1`, as specified for 802.11b (IEEE 802.11-2007 §18.2.4).
///
/// The same structure descrambles: feed received bits through
/// [`Scrambler::descramble_bit`].
#[derive(Debug, Clone)]
pub struct Scrambler {
    state: u8, // 7 bits
}

impl Scrambler {
    /// Creates a scrambler with the given 7-bit seed. 802.11b uses `0x1B`
    /// for the long preamble and `0x6C` for the short preamble.
    pub fn new(seed: u8) -> Self {
        Self { state: seed & 0x7F }
    }

    /// Scrambles one bit.
    #[inline]
    pub fn scramble_bit(&mut self, bit: bool) -> bool {
        // Feedback from taps at positions 4 and 7 (x^4, x^7).
        let fb = ((self.state >> 3) ^ (self.state >> 6)) & 1;
        let out = (bit as u8) ^ fb;
        self.state = ((self.state << 1) | out) & 0x7F;
        out == 1
    }

    /// Descrambles one bit (self-synchronizing: state is fed from the
    /// *received* bit, so the descrambler locks on after 7 bits even with a
    /// wrong seed).
    #[inline]
    pub fn descramble_bit(&mut self, bit: bool) -> bool {
        let fb = ((self.state >> 3) ^ (self.state >> 6)) & 1;
        let out = (bit as u8) ^ fb;
        self.state = ((self.state << 1) | bit as u8) & 0x7F;
        out == 1
    }

    /// Scrambles a bit slice.
    pub fn scramble(&mut self, bits: &[bool]) -> Vec<bool> {
        bits.iter().map(|&b| self.scramble_bit(b)).collect()
    }

    /// Descrambles a bit slice.
    pub fn descramble(&mut self, bits: &[bool]) -> Vec<bool> {
        bits.iter().map(|&b| self.descramble_bit(b)).collect()
    }
}

/// An additive (synchronous) whitening LFSR with polynomial `x^7 + x^4 + 1`,
/// as used for Bluetooth data whitening (BB §7.2). Unlike [`Scrambler`] the
/// keystream is independent of the data, so whitening and dewhitening are the
/// same operation.
#[derive(Debug, Clone)]
pub struct Whitener {
    state: u8, // 7 bits
}

impl Whitener {
    /// Creates a whitener seeded from the Bluetooth clock bits (CLK6-1 with
    /// bit 6 forced to 1, per spec).
    pub fn for_bt_clock(clk: u32) -> Self {
        Self {
            state: ((clk as u8) & 0x3F) | 0x40,
        }
    }

    /// Raw seed constructor.
    pub fn new(seed: u8) -> Self {
        Self { state: seed & 0x7F }
    }

    /// XORs the keystream over `bits` in place.
    pub fn apply(&mut self, bits: &mut [bool]) {
        for b in bits.iter_mut() {
            let out = (self.state >> 6) & 1;
            *b ^= out == 1;
            let fb = ((self.state >> 6) ^ (self.state >> 3)) & 1;
            self.state = ((self.state << 1) | fb) & 0x7F;
        }
    }
}

// ---------------------------------------------------------------------------
// FEC
// ---------------------------------------------------------------------------

/// Encodes with the rate-1/3 repetition code (each bit sent three times),
/// used by the Bluetooth packet header.
pub fn repeat3_encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() * 3);
    for &b in bits {
        out.extend_from_slice(&[b, b, b]);
    }
    out
}

/// Majority-decodes a rate-1/3 repetition stream. Input length must be a
/// multiple of 3.
pub fn repeat3_decode(bits: &[bool]) -> Vec<bool> {
    assert!(bits.len().is_multiple_of(3));
    bits.chunks(3)
        .map(|c| (c[0] as u8 + c[1] as u8 + c[2] as u8) >= 2)
        .collect()
}

/// The Bluetooth 2/3-rate FEC: a (15,10) shortened Hamming code with
/// generator polynomial `g(D) = D^5 + D^4 + D^2 + 1` (0b110101).
///
/// Encodes 10 information bits into 15 (10 data + 5 parity). Input length
/// must be a multiple of 10 (pad upstream per spec).
pub fn hamming1510_encode(bits: &[bool]) -> Vec<bool> {
    assert!(bits.len().is_multiple_of(10));
    const GEN: u128 = 0b110101; // degree 5
    let mut out = Vec::with_capacity(bits.len() / 10 * 15);
    for block in bits.chunks(10) {
        // Pack block LSB-first (bit 0 transmitted first = x^9 coefficient in
        // the systematic view; a consistent convention on both ends is all
        // that matters here).
        let data = bits_to_u64_lsb(block) as u128;
        let parity = gf2_mod(data, 10, GEN, 5);
        out.extend_from_slice(block);
        out.extend(u64_to_bits_lsb(parity as u64, 5));
    }
    out
}

/// Decodes the (15,10) code, correcting any single-bit error per block.
/// Returns `(data_bits, corrected_error_count)`. Input length must be a
/// multiple of 15.
pub fn hamming1510_decode(bits: &[bool]) -> (Vec<bool>, usize) {
    assert!(bits.len().is_multiple_of(15));
    const GEN: u128 = 0b110101;
    let mut out = Vec::with_capacity(bits.len() / 15 * 10);
    let mut corrected = 0;
    for block in bits.chunks(15) {
        let data = bits_to_u64_lsb(&block[..10]) as u128;
        let rx_parity = bits_to_u64_lsb(&block[10..]) as u128;
        let syndrome = gf2_mod(data, 10, GEN, 5) ^ rx_parity;
        if syndrome == 0 {
            out.extend_from_slice(&block[..10]);
            continue;
        }
        // Single-error correction: try flipping each of the 15 positions and
        // accept the first that zeroes the syndrome. 15 trials per block is
        // plenty fast for header-sized payloads.
        let mut fixed = None;
        for pos in 0..15 {
            let mut trial: Vec<bool> = block.to_vec();
            trial[pos] = !trial[pos];
            let d = bits_to_u64_lsb(&trial[..10]) as u128;
            let p = bits_to_u64_lsb(&trial[10..]) as u128;
            if gf2_mod(d, 10, GEN, 5) == p {
                fixed = Some(trial);
                break;
            }
        }
        match fixed {
            Some(t) => {
                corrected += 1;
                out.extend_from_slice(&t[..10]);
            }
            None => {
                // Uncorrectable; emit as-is and let the CRC catch it.
                out.extend_from_slice(&block[..10]);
            }
        }
    }
    (out, corrected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_bytes_round_trip() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01];
        let bits = bytes_to_bits_lsb(&bytes);
        assert_eq!(bits.len(), 40);
        assert_eq!(bits_to_bytes_lsb(&bits), bytes);
        // LSB first: 0xA5 = 1010_0101 -> first bit is 1.
        let a5 = bytes_to_bits_lsb(&[0xA5]);
        assert!(a5[0]);
        assert!(!a5[1]);
        assert!(a5[7]);
    }

    #[test]
    fn u64_bits_round_trip() {
        let v = 0xDEAD_BEEF_u64;
        assert_eq!(bits_to_u64_lsb(&u64_to_bits_lsb(v, 40)), v);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE of "123456789" is 0xCBF43926.
        let crc = Crc::crc32_ieee();
        assert_eq!(crc.compute(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn crc16_x25_known_vector() {
        // CRC-16/X-25 of "123456789" is 0x906E.
        let crc = Crc::crc16_x25();
        assert_eq!(crc.compute(b"123456789"), 0x906E);
    }

    #[test]
    fn crc16_802154_known_vector() {
        // CRC-16/KERMIT-family with init 0: check value 0x2189 for "123456789".
        let crc = Crc::crc16_802154();
        assert_eq!(crc.compute(b"123456789"), 0x2189);
    }

    #[test]
    fn crc_bits_matches_bytes() {
        let crc = Crc::crc32_ieee();
        let data = b"hello rfdump";
        assert_eq!(
            crc.compute(data),
            crc.compute_bits(&bytes_to_bits_lsb(data))
        );
    }

    #[test]
    fn crc_detects_single_bit_errors() {
        let crc = Crc::crc16_x25();
        let data = b"packet payload".to_vec();
        let good = crc.compute(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc.compute(&bad), good);
            }
        }
    }

    #[test]
    fn scrambler_descrambler_round_trip() {
        let data: Vec<bool> = (0..200).map(|i| (i * 7 % 5) % 2 == 0).collect();
        let mut s = Scrambler::new(0x1B);
        let tx = s.scramble(&data);
        assert_ne!(tx, data);
        let mut d = Scrambler::new(0x1B);
        assert_eq!(d.descramble(&tx), data);
    }

    #[test]
    fn descrambler_self_synchronizes_with_wrong_seed() {
        let data: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let mut s = Scrambler::new(0x1B);
        let tx = s.scramble(&data);
        let mut d = Scrambler::new(0x00); // wrong seed
        let rx = d.descramble(&tx);
        // After the 7-bit register flushes, output matches.
        assert_eq!(&rx[7..], &data[7..]);
    }

    #[test]
    fn scrambled_ones_look_random() {
        // The 802.11b sync field is 128 scrambled ones; it must not be a
        // constant sequence.
        let mut s = Scrambler::new(0x1B);
        let tx = s.scramble(&[true; 128]);
        let ones = tx.iter().filter(|&&b| b).count();
        assert!(ones > 40 && ones < 90, "ones {ones}");
    }

    #[test]
    fn whitener_is_involutive() {
        let mut bits: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let orig = bits.clone();
        Whitener::for_bt_clock(0x2A).apply(&mut bits);
        assert_ne!(bits, orig);
        Whitener::for_bt_clock(0x2A).apply(&mut bits);
        assert_eq!(bits, orig);
    }

    #[test]
    fn repeat3_majority_corrects_single_errors() {
        let data = vec![true, false, true, true, false];
        let mut coded = repeat3_encode(&data);
        // Flip one bit in each triple.
        for i in 0..data.len() {
            coded[i * 3 + (i % 3)] = !coded[i * 3 + (i % 3)];
        }
        assert_eq!(repeat3_decode(&coded), data);
    }

    #[test]
    fn hamming1510_round_trip_and_single_error_correction() {
        let data: Vec<bool> = (0..40).map(|i| (i * 11) % 7 < 3).collect();
        let coded = hamming1510_encode(&data);
        assert_eq!(coded.len(), 60);
        let (decoded, n) = hamming1510_decode(&coded);
        assert_eq!(decoded, data);
        assert_eq!(n, 0);
        // Flip one bit per block.
        let mut bad = coded.clone();
        for blk in 0..4 {
            bad[blk * 15 + (blk * 4 % 15)] = !bad[blk * 15 + (blk * 4 % 15)];
        }
        let (decoded, n) = hamming1510_decode(&bad);
        assert_eq!(decoded, data);
        assert_eq!(n, 4);
    }

    #[test]
    fn gf2_mod_simple() {
        // x^3 mod (x^2 + 1) = x * (x^2 mod ...) -> x^3 = x*(x^2+1) + x -> rem x.
        let rem = gf2_mod(0b1, 1, 0b101, 2); // data=1 (degree 0), shifted by 2: x^2 mod x^2+1 = 1
        assert_eq!(rem, 0b1);
    }
}
