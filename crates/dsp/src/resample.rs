//! Fractional-ratio resampling.
//!
//! The paper's front-end (USRP 1) delivers 8 Msps while 802.11b transmits at
//! 11 Mchips/s; that 11:8 mismatch is why the paper's Wi-Fi phase detector
//! resorts to a precomputed Barker phase-change pattern (§4.5). We reproduce
//! the mismatch faithfully: the 802.11b modulator renders at the native chip
//! rate and the ether simulator resamples to the monitor rate with this
//! module.
//!
//! Two resamplers are provided:
//!
//! * [`LinearResampler`] — streaming linear interpolation, cheap and accurate
//!   enough for oversampled signals.
//! * [`resample_windowed_sinc`] — a higher-quality one-shot polyphase
//!   windowed-sinc resampler used when rendering transmitter waveforms, where
//!   quality matters more than speed.

use crate::complex::Complex32;
use crate::window::{generate, Window};
use std::f64::consts::PI;

/// A streaming fractional resampler using linear interpolation.
///
/// Produces output samples at rate `fs_out` from an input stream at rate
/// `fs_in`. Output sample `k` is taken at input position `k * fs_in/fs_out`.
#[derive(Debug, Clone)]
pub struct LinearResampler {
    /// Input samples consumed per output sample.
    step: f64,
    /// Fractional read position relative to `prev`.
    pos: f64,
    /// The last input sample from the previous call (for interpolation
    /// across slice boundaries).
    prev: Option<Complex32>,
}

impl LinearResampler {
    /// Creates a resampler converting `fs_in` to `fs_out`.
    pub fn new(fs_in: f64, fs_out: f64) -> Self {
        assert!(fs_in > 0.0 && fs_out > 0.0);
        Self {
            step: fs_in / fs_out,
            pos: 0.0,
            prev: None,
        }
    }

    /// Resamples `input`, appending to `out`. May be called repeatedly with
    /// consecutive stream slices.
    pub fn process(&mut self, input: &[Complex32], out: &mut Vec<Complex32>) {
        if input.is_empty() {
            return;
        }
        // Build a virtual sequence [prev, input...] with read index `pos`
        // measured from `prev` (index 0).
        let offset = if self.prev.is_some() { 1.0 } else { 0.0 };
        let get = |idx: usize| -> Complex32 {
            match self.prev {
                Some(p) if idx == 0 => p,
                Some(_) => input[idx - 1],
                None => input[idx],
            }
        };
        let virtual_len = input.len() as f64 + offset;
        while self.pos + 1.0 < virtual_len {
            let i = self.pos.floor() as usize;
            let frac = (self.pos - i as f64) as f32;
            let a = get(i);
            let b = get(i + 1);
            out.push(a + (b - a) * frac);
            self.pos += self.step;
        }
        // Keep the final input sample and rebase `pos` onto it.
        self.prev = Some(input[input.len() - 1]);
        self.pos -= virtual_len - 1.0;
    }
}

/// One-shot high-quality resampling with a polyphase windowed-sinc kernel.
///
/// * `input` — source samples at `fs_in`.
/// * `fs_in`, `fs_out` — sample rates.
/// * `half_taps` — one-sided kernel length in input samples (e.g. 8).
///
/// When downsampling, the kernel cutoff is scaled to the output Nyquist to
/// act as an anti-aliasing filter.
pub fn resample_windowed_sinc(
    input: &[Complex32],
    fs_in: f64,
    fs_out: f64,
    half_taps: usize,
) -> Vec<Complex32> {
    assert!(fs_in > 0.0 && fs_out > 0.0 && half_taps > 0);
    if input.is_empty() {
        return Vec::new();
    }
    let ratio = fs_in / fs_out;
    let out_len = ((input.len() as f64) / ratio).floor() as usize;

    // Rational ratios with a small denominator (e.g. the paper's 11:8) let
    // us precompute a polyphase tap table: output k reads input around
    // position k·p/q, whose fractional part cycles through q values.
    if let Some((p, q)) = small_rational(ratio, 128) {
        return resample_polyphase(input, out_len, p, q, half_taps);
    }

    // Fallback: direct evaluation for irrational-ish ratios.
    let cutoff = 0.5 * (fs_out / fs_in).min(1.0);
    let span = 2 * half_taps + 1;
    let win = generate(Window::Blackman, span);
    let mut out = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let center = k as f64 * ratio;
        let base = center.floor() as isize;
        let mut acc = Complex32::ZERO;
        let mut wsum = 0.0f64;
        for t in -(half_taps as isize)..=(half_taps as isize) {
            let idx = base + t;
            if idx < 0 || idx as usize >= input.len() {
                continue;
            }
            let x = center - idx as f64;
            let sinc = if x.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * x).sin() / (PI * x)
            };
            let w = sinc * win[(t + half_taps as isize) as usize];
            acc += input[idx as usize] * (w as f32);
            wsum += w;
        }
        // Normalize by the kernel sum for unity passband gain, including at
        // buffer edges where part of the kernel falls outside the input.
        if wsum.abs() > 1e-9 {
            acc = acc.scale((1.0 / wsum) as f32);
        }
        out.push(acc);
    }
    out
}

/// Finds a small rational `p/q ≈ ratio` with `q <= max_den`, requiring an
/// essentially exact match (sample-rate ratios in this workspace are exact
/// rationals like 11/8 or 1/1).
fn small_rational(ratio: f64, max_den: usize) -> Option<(usize, usize)> {
    for q in 1..=max_den {
        let p = ratio * q as f64;
        if (p - p.round()).abs() < 1e-9 && p.round() >= 1.0 {
            return Some((p.round() as usize, q));
        }
    }
    None
}

/// Polyphase resampling: precomputed taps per fractional phase.
fn resample_polyphase(
    input: &[Complex32],
    out_len: usize,
    p: usize,
    q: usize,
    half_taps: usize,
) -> Vec<Complex32> {
    let span = 2 * half_taps + 1;
    let win = generate(Window::Blackman, span);
    let cutoff = 0.5 * (q as f64 / p as f64).min(1.0);
    // Phase r = (k*p) mod q; fractional offset = r/q. Taps for offset f at
    // window position t (t in -H..=H relative to floor(center)):
    // sinc(2*cutoff*(f - t)) style kernel evaluated at x = center - idx.
    let mut tables: Vec<Vec<f32>> = Vec::with_capacity(q);
    let mut sums: Vec<f32> = Vec::with_capacity(q);
    for r in 0..q {
        let frac = r as f64 / q as f64;
        let mut taps = Vec::with_capacity(span);
        let mut sum = 0.0f64;
        for t in -(half_taps as isize)..=(half_taps as isize) {
            let x = frac - t as f64;
            let sinc = if x.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * PI * cutoff * x).sin() / (PI * x)
            };
            let w = sinc * win[(t + half_taps as isize) as usize];
            taps.push(w as f32);
            sum += w;
        }
        tables.push(taps);
        sums.push(sum as f32);
    }

    let mut out = Vec::with_capacity(out_len);
    let n = input.len() as isize;
    for k in 0..out_len {
        let num = k * p;
        let base = (num / q) as isize;
        let r = num % q;
        let taps = &tables[r];
        let lo = base - half_taps as isize;
        let hi = base + half_taps as isize;
        if lo >= 0 && hi < n {
            // Interior fast path: full kernel, precomputed normalization.
            let mut acc = Complex32::ZERO;
            let base_idx = lo as usize;
            // taps[i] was built for window position t = i - half_taps, which
            // reads input index base + t = lo + i.
            for (i, &w) in taps.iter().enumerate() {
                acc += input[base_idx + i] * w;
            }
            let s = sums[r];
            if s.abs() > 1e-9 {
                acc = acc.scale(1.0 / s);
            }
            out.push(acc);
        } else {
            // Edge: partial kernel with on-the-fly normalization.
            let mut acc = Complex32::ZERO;
            let mut wsum = 0.0f32;
            for (i, &w) in taps.iter().enumerate() {
                let idx = lo + i as isize;
                if idx < 0 || idx >= n {
                    continue;
                }
                acc += input[idx as usize] * w;
                wsum += w;
            }
            if wsum.abs() > 1e-9 {
                acc = acc.scale(1.0 / wsum);
            }
            out.push(acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nco::Nco;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<Complex32> {
        let mut nco = Nco::new(f, fs);
        (0..n).map(|_| nco.next()).collect()
    }

    #[test]
    fn linear_identity_ratio_passes_through() {
        let sig = tone(1e5, 1e6, 100);
        let mut rs = LinearResampler::new(1e6, 1e6);
        let mut out = Vec::new();
        rs.process(&sig, &mut out);
        // First output equals first input; subsequent track within epsilon.
        assert!((out[0] - sig[0]).abs() < 1e-6);
        for (a, b) in out.iter().zip(sig.iter()) {
            assert!((*a - *b).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_11_to_8_preserves_tone_frequency() {
        // An 11 Msps stream carrying a 500 kHz tone resampled to 8 Msps must
        // still carry a 500 kHz tone.
        let fs_in = 11e6;
        let fs_out = 8e6;
        let f = 0.5e6;
        let sig = tone(f, fs_in, 11_000);
        let mut rs = LinearResampler::new(fs_in, fs_out);
        let mut out = Vec::new();
        rs.process(&sig, &mut out);
        assert!(out.len() >= 7900 && out.len() <= 8001, "len {}", out.len());
        // Measure phase increment per output sample.
        let mut sum = 0.0f64;
        let mut count = 0;
        for w in out[100..7000].windows(2) {
            sum += (w[1] * w[0].conj()).arg() as f64;
            count += 1;
        }
        let measured = sum / count as f64 * fs_out / crate::TAU64;
        assert!((measured - f).abs() < 2e3, "measured {measured}");
    }

    #[test]
    fn linear_streaming_matches_one_shot() {
        let sig = tone(3e5, 11e6, 1000);
        let mut a = LinearResampler::new(11e6, 8e6);
        let mut one = Vec::new();
        a.process(&sig, &mut one);

        let mut b = LinearResampler::new(11e6, 8e6);
        let mut parts = Vec::new();
        for chunk in sig.chunks(13) {
            b.process(chunk, &mut parts);
        }
        assert_eq!(one.len(), parts.len());
        for (x, y) in one.iter().zip(parts.iter()) {
            assert!((*x - *y).abs() < 1e-5);
        }
    }

    #[test]
    fn sinc_resampler_preserves_amplitude_and_frequency() {
        let fs_in = 11e6;
        let fs_out = 8e6;
        let f = 1e6;
        let sig = tone(f, fs_in, 4400);
        let out = resample_windowed_sinc(&sig, fs_in, fs_out, 8);
        assert_eq!(out.len(), 3200);
        let mid = &out[200..3000];
        let p = crate::complex::mean_power(mid);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
        let mut sum = 0.0f64;
        for w in mid.windows(2) {
            sum += (w[1] * w[0].conj()).arg() as f64;
        }
        let measured = sum / (mid.len() - 1) as f64 * fs_out / crate::TAU64;
        assert!((measured - f).abs() < 1e3, "measured {measured}");
    }

    #[test]
    fn sinc_downsampling_rejects_out_of_band_aliases() {
        // 5 MHz tone at 11 Msps is beyond 8 Msps Nyquist (4 MHz) and must be
        // attenuated, not aliased at full strength.
        let sig = tone(5.2e6, 11e6, 4400);
        let out = resample_windowed_sinc(&sig, 11e6, 8e6, 12);
        let p = crate::complex::mean_power(&out[200..3000]);
        assert!(p < 0.1, "alias power {p}");
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rs = LinearResampler::new(11e6, 8e6);
        let mut out = Vec::new();
        rs.process(&[], &mut out);
        assert!(out.is_empty());
        assert!(resample_windowed_sinc(&[], 11e6, 8e6, 8).is_empty());
    }
}
