//! Iterative radix-2 FFT.
//!
//! RFDump's frequency detector (§3.4/§4.6 of the paper) runs small FFTs over
//! chunks of samples and bins the result into channels. Sizes are powers of
//! two; the planner precomputes twiddles and the bit-reversal permutation so
//! repeated transforms of the same size are allocation-free.

use crate::complex::Complex32;
use crate::TAU64;

/// A planned FFT of a fixed power-of-two size.
///
/// Create one with [`Fft::new`] and reuse it; planning precomputes twiddles.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Per-stage contiguous twiddles: `stages[s][k] = e^{-j 2 pi k / len}`
    /// with `len = 2^(s+1)`, laid out so each butterfly stage streams its
    /// twiddles sequentially through the vectorized stage kernel.
    stages: Vec<Vec<Complex32>>,
    /// Bit-reversal permutation indices.
    rev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two, got {n}"
        );
        let base: Vec<Complex32> = (0..n / 2)
            .map(|k| {
                let angle = -(TAU64 * k as f64 / n as f64);
                Complex32::new(angle.cos() as f32, angle.sin() as f32)
            })
            .collect();
        // One contiguous twiddle run per butterfly stage, subsampled from
        // the same base table so planned values are identical to the
        // classic strided lookup `base[k * step]`.
        let mut stages = Vec::new();
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            stages.push((0..half).map(|k| base[k * step]).collect());
            len <<= 1;
        }
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        Self { n, stages, rev }
    }

    /// The transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned size is zero (never true; kept for API symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform. `buf.len()` must equal the planned size.
    pub fn forward(&self, buf: &mut [Complex32]) {
        self.transform(buf, false);
    }

    /// In-place inverse transform, including the `1/n` normalization, so that
    /// `inverse(forward(x)) == x`.
    pub fn inverse(&self, buf: &mut [Complex32]) {
        self.transform(buf, true);
        let k = 1.0 / self.n as f32;
        for z in buf.iter_mut() {
            *z = z.scale(k);
        }
    }

    fn transform(&self, buf: &mut [Complex32], inverse: bool) {
        let n = self.n;
        assert_eq!(
            buf.len(),
            n,
            "buffer length {} != planned FFT size {}",
            buf.len(),
            n
        );
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative Cooley-Tukey butterflies, one vectorized stage at a time.
        for stage_tw in &self.stages {
            crate::kernels::fft_stage(buf, stage_tw.len(), stage_tw, inverse);
        }
    }

    /// Computes the power spectrum `|X_k|^2 / n` of `input` into `out`.
    ///
    /// `input` and `out` must both have the planned length. Uses `scratch`-free
    /// internal copy; for repeated calls prefer [`Fft::forward`] on your own
    /// buffer if you need the complex bins.
    pub fn power_spectrum(&self, input: &[Complex32], out: &mut [f32]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(out.len(), self.n);
        let mut buf = input.to_vec();
        self.forward(&mut buf);
        let k = 1.0 / self.n as f32;
        for (o, z) in out.iter_mut().zip(buf.iter()) {
            *o = z.norm_sqr() * k;
        }
    }
}

/// Returns the center frequency (Hz) of FFT bin `k` for a transform of size
/// `n` over complex baseband sampled at `fs`, in `[-fs/2, fs/2)`.
///
/// Bin 0 is DC; bins above `n/2` alias to negative frequencies.
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    let signed = if k <= n / 2 {
        k as f64
    } else {
        k as f64 - n as f64
    };
    signed * fs / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32, tol: f32) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    #[should_panic]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(48);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let fft = Fft::new(16);
        let mut buf = vec![Complex32::ZERO; 16];
        buf[0] = Complex32::ONE;
        fft.forward(&mut buf);
        for z in &buf {
            assert!(approx(z.re, 1.0, 1e-5) && approx(z.im, 0.0, 1e-5));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let fft = Fft::new(n);
        let bin = 37;
        let mut buf: Vec<Complex32> = (0..n)
            .map(|i| Complex32::cis((TAU64 * bin as f64 * i as f64 / n as f64) as f32))
            .collect();
        fft.forward(&mut buf);
        for (k, z) in buf.iter().enumerate() {
            let mag = z.abs();
            if k == bin {
                assert!(approx(mag, n as f32, 0.01 * n as f32), "bin {k} mag {mag}");
            } else {
                assert!(mag < 0.02 * n as f32, "leak in bin {k}: {mag}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_round_trips() {
        let n = 128;
        let fft = Fft::new(n);
        let orig: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
            .collect();
        let mut buf = orig.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(orig.iter()) {
            assert!(approx(a.re, b.re, 1e-4) && approx(a.im, b.im, 1e-4));
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 64;
        let fft = Fft::new(n);
        let sig: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.5).cos()))
            .collect();
        let time_energy: f32 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = sig.clone();
        fft.forward(&mut buf);
        let freq_energy: f32 = buf.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!(approx(time_energy, freq_energy, 1e-2 * time_energy));
    }

    #[test]
    fn power_spectrum_matches_forward() {
        let n = 32;
        let fft = Fft::new(n);
        let sig: Vec<Complex32> = (0..n).map(|i| Complex32::cis(i as f32 * 0.7)).collect();
        let mut ps = vec![0.0f32; n];
        fft.power_spectrum(&sig, &mut ps);
        let mut buf = sig.clone();
        fft.forward(&mut buf);
        for (p, z) in ps.iter().zip(buf.iter()) {
            assert!(approx(*p, z.norm_sqr() / n as f32, 1e-4));
        }
    }

    #[test]
    fn bin_frequency_signs() {
        assert_eq!(bin_frequency(0, 8, 8e6), 0.0);
        assert_eq!(bin_frequency(1, 8, 8e6), 1e6);
        assert_eq!(bin_frequency(7, 8, 8e6), -1e6);
        assert_eq!(bin_frequency(4, 8, 8e6), 4e6); // Nyquist maps to +fs/2 here
    }

    #[test]
    fn size_one_and_two() {
        let fft1 = Fft::new(1);
        let mut b = vec![Complex32::new(2.0, 3.0)];
        fft1.forward(&mut b);
        assert_eq!(b[0], Complex32::new(2.0, 3.0));

        let fft2 = Fft::new(2);
        let mut b = vec![Complex32::new(1.0, 0.0), Complex32::new(-1.0, 0.0)];
        fft2.forward(&mut b);
        assert!(approx(b[0].re, 0.0, 1e-6));
        assert!(approx(b[1].re, 2.0, 1e-6));
    }
}
