//! Power/energy utilities: dB conversion, running averages and noise-floor
//! estimation.
//!
//! The RFDump peak detector (§4.3) computes "the average energy of the last
//! window of samples within the chunk" and compares it against "a certain
//! threshold (4 dB more than the noise floor)"; these helpers provide that
//! machinery.

use crate::complex::Complex32;

/// Converts a linear power ratio to decibels. Clamps at -300 dB for zero.
#[inline]
pub fn power_to_db(p: f32) -> f32 {
    if p <= 0.0 {
        -300.0
    } else {
        10.0 * p.log10()
    }
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_power(db: f32) -> f32 {
    10f32.powf(db / 10.0)
}

/// A running average of instantaneous power over a fixed window of samples.
///
/// The paper uses a 2.5 µs (20-sample) window so that the smallest timing it
/// must resolve (802.11 SIFS, 10 µs) spans several windows.
#[derive(Debug, Clone)]
pub struct RunningPower {
    window: Vec<f32>,
    pos: usize,
    filled: usize,
    sum: f64,
}

impl RunningPower {
    /// Creates an averager over `window` samples.
    pub fn new(window: usize) -> Self {
        assert!(window > 0);
        Self {
            window: vec![0.0; window],
            pos: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Window length in samples.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Pushes one sample and returns the current windowed average power.
    /// Until the window fills, the average is over the samples seen so far.
    #[inline]
    pub fn push(&mut self, z: Complex32) -> f32 {
        self.push_power(z.norm_sqr())
    }

    /// Pushes a precomputed instantaneous power (`|z|²`) and returns the
    /// current windowed average. The fused detection path uses this with
    /// powers materialized once per chunk by [`crate::kernels::power_into`].
    #[inline]
    pub fn push_power(&mut self, p: f32) -> f32 {
        self.sum -= self.window[self.pos] as f64;
        self.window[self.pos] = p;
        self.sum += p as f64;
        self.pos = (self.pos + 1) % self.window.len();
        if self.filled < self.window.len() {
            self.filled += 1;
        }
        (self.sum / self.filled as f64) as f32
    }

    /// Current average without pushing.
    pub fn average(&self) -> f32 {
        if self.filled == 0 {
            0.0
        } else {
            (self.sum / self.filled as f64) as f32
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.window.fill(0.0);
        self.sum = 0.0;
        self.pos = 0;
        self.filled = 0;
    }
}

/// Estimates the noise floor of a trace as a low percentile of windowed
/// power, which is robust to packets occupying a large fraction of airtime.
///
/// * `samples` — the trace (or a representative prefix).
/// * `window` — averaging window in samples.
/// * `percentile` — e.g. `0.1` for the 10th percentile.
///
/// Returns linear power. Returns 0.0 for an empty trace.
pub fn estimate_noise_floor(samples: &[Complex32], window: usize, percentile: f64) -> f32 {
    assert!(window > 0);
    assert!((0.0..=1.0).contains(&percentile));
    if samples.is_empty() {
        return 0.0;
    }
    let mut powers: Vec<f32> = samples
        .chunks(window)
        .map(crate::complex::mean_power)
        .collect();
    powers.sort_by(f32::total_cmp);
    let idx = ((powers.len() - 1) as f64 * percentile).round() as usize;
    powers[idx]
}

/// Signal-to-noise ratio in dB given linear signal and noise powers.
#[inline]
pub fn snr_db(signal_power: f32, noise_power: f32) -> f32 {
    power_to_db(signal_power) - power_to_db(noise_power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for db in [-30.0f32, -3.0, 0.0, 10.0, 27.5] {
            assert!((power_to_db(db_to_power(db)) - db).abs() < 1e-4);
        }
        assert_eq!(power_to_db(0.0), -300.0);
    }

    #[test]
    fn running_power_converges_to_signal_power() {
        let mut rp = RunningPower::new(20);
        let mut avg = 0.0;
        for i in 0..100 {
            avg = rp.push(Complex32::cis(i as f32 * 0.3).scale(2.0));
        }
        assert!((avg - 4.0).abs() < 1e-4);
    }

    #[test]
    fn running_power_partial_fill() {
        let mut rp = RunningPower::new(10);
        let a = rp.push(Complex32::new(1.0, 0.0));
        assert!((a - 1.0).abs() < 1e-6); // average over 1 sample, not 10
        rp.push(Complex32::ZERO);
        assert!((rp.average() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn running_power_window_slides() {
        let mut rp = RunningPower::new(4);
        for _ in 0..4 {
            rp.push(Complex32::new(1.0, 0.0));
        }
        for _ in 0..4 {
            rp.push(Complex32::ZERO);
        }
        assert!(rp.average() < 1e-6);
    }

    #[test]
    fn noise_floor_ignores_bursts() {
        // 90% noise at power ~0.01, 10% burst at power ~1.
        let mut sig = Vec::new();
        for i in 0..1000 {
            let p = if (450..550).contains(&i) {
                1.0f32
            } else {
                0.01
            };
            sig.push(Complex32::new(p.sqrt(), 0.0));
        }
        let nf = estimate_noise_floor(&sig, 20, 0.1);
        assert!((nf - 0.01).abs() < 0.005, "floor {nf}");
    }

    #[test]
    fn snr_db_is_difference_of_dbs() {
        assert!((snr_db(1.0, 0.1) - 10.0).abs() < 1e-4);
    }
}
