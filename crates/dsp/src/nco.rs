//! Numerically controlled oscillator and frequency translation.
//!
//! Used by the ether simulator to place each transmitter at its channel
//! offset inside the monitored band, and by receivers to translate a channel
//! of interest down to zero before low-pass channelization.

use crate::complex::Complex32;
use crate::TAU64;

/// A complex oscillator with double-precision phase accumulation (so long
/// traces do not accumulate phase error).
#[derive(Debug, Clone)]
pub struct Nco {
    phase: f64,
    step: f64,
}

impl Nco {
    /// Creates an oscillator producing `e^{j 2 pi f t}` for frequency
    /// `freq_hz` at sample rate `fs`.
    pub fn new(freq_hz: f64, fs: f64) -> Self {
        assert!(fs > 0.0);
        Self {
            phase: 0.0,
            step: TAU64 * freq_hz / fs,
        }
    }

    /// Creates an oscillator with an explicit starting phase (radians).
    pub fn with_phase(freq_hz: f64, fs: f64, phase: f64) -> Self {
        let mut n = Self::new(freq_hz, fs);
        n.phase = phase;
        n
    }

    /// Current phase in radians (wrapped to `[0, 2pi)`).
    pub fn phase(&self) -> f64 {
        self.phase.rem_euclid(TAU64)
    }

    /// Changes the oscillator frequency without a phase discontinuity.
    pub fn set_frequency(&mut self, freq_hz: f64, fs: f64) {
        self.step = TAU64 * freq_hz / fs;
    }

    /// Produces the next oscillator sample.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Complex32 {
        let z = Complex32::cis(self.phase as f32);
        self.phase += self.step;
        if self.phase > 1e9 {
            // Keep the accumulator small; rem_euclid preserves the angle.
            self.phase = self.phase.rem_euclid(TAU64);
        }
        z
    }

    /// Multiplies `input` by the oscillator in place (frequency translation).
    pub fn mix_in_place(&mut self, buf: &mut [Complex32]) {
        for z in buf.iter_mut() {
            *z *= self.next();
        }
    }

    /// Writes `input * osc` into `out` (appending).
    pub fn mix(&mut self, input: &[Complex32], out: &mut Vec<Complex32>) {
        out.reserve(input.len());
        for &x in input {
            out.push(x * self.next());
        }
    }
}

/// One-shot frequency shift of a whole buffer starting at phase zero.
pub fn frequency_shift(input: &[Complex32], freq_hz: f64, fs: f64) -> Vec<Complex32> {
    let mut nco = Nco::new(freq_hz, fs);
    let mut out = Vec::with_capacity(input.len());
    nco.mix(input, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::Fft;

    #[test]
    fn oscillator_tone_lands_in_expected_fft_bin() {
        let fs = 8e6;
        let n = 1024;
        let bin = 96; // 96/1024 * 8 MHz = 750 kHz
        let f = bin as f64 * fs / n as f64;
        let mut nco = Nco::new(f, fs);
        let sig: Vec<Complex32> = (0..n).map(|_| nco.next()).collect();
        let fft = Fft::new(n);
        let mut buf = sig.clone();
        fft.forward(&mut buf);
        let max_bin = buf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .unwrap()
            .0;
        assert_eq!(max_bin, bin);
    }

    #[test]
    fn shift_then_unshift_is_identity() {
        let fs = 8e6;
        let sig: Vec<Complex32> = (0..500)
            .map(|i| Complex32::new((i as f32 * 0.21).sin(), (i as f32 * 0.13).cos()))
            .collect();
        let up = frequency_shift(&sig, 1.5e6, fs);
        let back = frequency_shift(&up, -1.5e6, fs);
        for (a, b) in back.iter().zip(sig.iter()) {
            assert!((*a - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn negative_frequency_rotates_clockwise() {
        let mut nco = Nco::new(-1e6, 8e6);
        let z0 = nco.next();
        let z1 = nco.next();
        // Phase difference should be -2*pi/8 = -0.785 rad.
        let d = (z1 * z0.conj()).arg();
        assert!((d + std::f32::consts::FRAC_PI_4).abs() < 1e-4);
    }

    #[test]
    fn oscillator_keeps_unit_magnitude_over_long_runs() {
        let mut nco = Nco::new(1.234e6, 8e6);
        let mut last = Complex32::ZERO;
        for _ in 0..100_000 {
            last = nco.next();
        }
        assert!((last.abs() - 1.0).abs() < 1e-4);
    }
}
