//! Deterministic random numbers and Gaussian noise.
//!
//! Every stochastic element of the workspace (AWGN, backoff draws, traffic
//! jitter, hop sequences) is driven by seedable generators from this module
//! so experiments are exactly reproducible from a seed — the Rust analogue of
//! the paper's "repeatable, well-controlled wireless workloads" requirement
//! (§5).

use crate::complex::Complex32;

/// SplitMix64: a tiny, high-quality 64-bit PRNG. Also used to seed
/// [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator (expanding the seed through SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Multiply-shift; bias is negligible for our bounds (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Random boolean with probability `p` of being true.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Random data bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// A Gaussian (normal) sample generator using the Marsaglia polar method.
#[derive(Debug, Clone)]
pub struct GaussianGen {
    rng: Xoshiro256,
    spare: Option<f64>,
}

impl GaussianGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::new(seed),
            spare: None,
        }
    }

    /// Next standard-normal sample.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * self.rng.next_f64() - 1.0;
            let v = 2.0 * self.rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * k);
                return u * k;
            }
        }
    }

    /// Next circularly-symmetric complex Gaussian sample with total
    /// (two-sided) power `power` — i.e. `E[|z|^2] = power`.
    pub fn next_complex(&mut self, power: f32) -> Complex32 {
        let sigma = (power as f64 / 2.0).sqrt();
        Complex32::new((self.next() * sigma) as f32, (self.next() * sigma) as f32)
    }

    /// Adds complex AWGN of the given total power to `buf` in place.
    pub fn add_awgn(&mut self, buf: &mut [Complex32], power: f32) {
        if power <= 0.0 {
            return;
        }
        for z in buf.iter_mut() {
            *z += self.next_complex(power);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Xoshiro256::new(7);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_respects_bound() {
        let mut rng = Xoshiro256::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit");
    }

    #[test]
    fn gaussian_moments() {
        let mut g = GaussianGen::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn awgn_power_is_calibrated() {
        let mut g = GaussianGen::new(13);
        let mut buf = vec![Complex32::ZERO; 50_000];
        g.add_awgn(&mut buf, 0.25);
        let p = mean_power(&buf);
        assert!((p - 0.25).abs() < 0.01, "power {p}");
    }

    #[test]
    fn zero_power_awgn_is_noop() {
        let mut g = GaussianGen::new(13);
        let mut buf = vec![Complex32::ONE; 16];
        g.add_awgn(&mut buf, 0.0);
        assert!(buf.iter().all(|&z| z == Complex32::ONE));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Xoshiro256::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
