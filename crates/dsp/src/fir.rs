//! FIR filtering and classic filter designs.
//!
//! The PHY layers use these for pulse shaping (Gaussian for Bluetooth GFSK,
//! half-sine for 802.15.4 O-QPSK, root-raised-cosine where band-limiting is
//! wanted) and the receivers use windowed-sinc low-pass designs for
//! channelization (e.g. carving 1 MHz Bluetooth channels out of the 8 MHz
//! monitored band).

use crate::complex::Complex32;
use crate::window::{generate, Window};
use std::f64::consts::PI;

/// A real-tap FIR filter applied to complex samples, with internal history so
/// it can process a stream in arbitrary-sized slices.
///
/// The delay line is a flat, *duplicated* ring buffer: each pushed sample is
/// written twice, `n` complex slots apart, so the window of the last `n`
/// samples is always one contiguous flat slice and the inner product runs
/// through the vectorized [`crate::kernels::fir_dot`] with no wrap handling.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f32>,
    /// Taps reversed and duplicated per component: `taps2[2j] == taps2[2j+1]
    /// == taps[n-1-j]`, so `taps2` pairs with the oldest→newest window.
    taps2: Vec<f32>,
    /// `4n` floats = `2n` complex slots; slot `i` and slot `i + n` always
    /// hold the same sample.
    buf: Vec<f32>,
    /// Next complex slot (in `0..n`) to write.
    pos: usize,
}

impl Fir {
    /// Builds a filter from the given taps (first tap multiplies the newest
    /// sample).
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<f32>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = taps.len();
        let mut taps2 = vec![0.0f32; 2 * n];
        for j in 0..n {
            taps2[2 * j] = taps[n - 1 - j];
            taps2[2 * j + 1] = taps[n - 1 - j];
        }
        Self {
            taps,
            taps2,
            buf: vec![0.0; 4 * n],
            pos: 0,
        }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True if the filter has no taps (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// The taps.
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Resets the delay line to zeros.
    pub fn reset(&mut self) {
        self.buf.fill(0.0);
        self.pos = 0;
    }

    /// Writes one sample into the duplicated delay line without computing an
    /// output (used by the decimating path to skip discarded outputs).
    #[inline]
    fn shift_in(&mut self, x: Complex32) {
        let n = self.taps.len();
        let a = 2 * self.pos;
        let b = 2 * (self.pos + n);
        self.buf[a] = x.re;
        self.buf[a + 1] = x.im;
        self.buf[b] = x.re;
        self.buf[b + 1] = x.im;
        self.pos = (self.pos + 1) % n;
    }

    /// The current window of the last `n` samples, oldest first, as a flat
    /// `[re, im, ...]` slice aligned with `taps2`.
    #[inline]
    fn window(&self) -> &[f32] {
        let n = self.taps.len();
        &self.buf[2 * self.pos..2 * (self.pos + n)]
    }

    /// Filters one sample.
    #[inline]
    pub fn push(&mut self, x: Complex32) -> Complex32 {
        self.shift_in(x);
        crate::kernels::fir_dot(self.window(), &self.taps2)
    }

    /// Filters a slice, appending outputs to `out` (one output per input).
    pub fn process(&mut self, input: &[Complex32], out: &mut Vec<Complex32>) {
        out.reserve(input.len());
        for &x in input {
            out.push(self.push(x));
        }
    }

    /// Filters and decimates: produces one output for every `decim` inputs.
    ///
    /// Skipped outputs never compute the dot product, so the cost per input
    /// sample is `O(taps / decim)` plus the ring write.
    ///
    /// # Panics
    /// Panics if `decim` is zero.
    pub fn process_decimate(
        &mut self,
        input: &[Complex32],
        decim: usize,
        phase: &mut usize,
        out: &mut Vec<Complex32>,
    ) {
        assert!(decim > 0);
        for &x in input {
            if *phase == 0 {
                out.push(self.push(x));
            } else {
                self.shift_in(x);
            }
            *phase = (*phase + 1) % decim;
        }
    }
}

/// Convolves real taps with a real-valued sequence (used for shaping NRZ
/// streams before frequency modulation). Output length is `input.len()`;
/// the filter is causal with zero initial state.
pub fn convolve_real(taps: &[f32], input: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; input.len()];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, t) in taps.iter().enumerate() {
            if n >= k {
                acc += t * input[n - k];
            }
        }
        *o = acc;
    }
    out
}

/// Designs a windowed-sinc low-pass filter.
///
/// * `cutoff_hz` — one-sided cutoff frequency.
/// * `fs` — sample rate.
/// * `ntaps` — number of taps (forced odd for a symmetric, linear-phase
///   design).
///
/// Taps are normalized for unity DC gain.
pub fn lowpass(cutoff_hz: f64, fs: f64, ntaps: usize, window: Window) -> Vec<f32> {
    assert!(
        cutoff_hz > 0.0 && cutoff_hz < fs / 2.0,
        "cutoff must be in (0, fs/2)"
    );
    let ntaps = if ntaps.is_multiple_of(2) {
        ntaps + 1
    } else {
        ntaps.max(1)
    };
    let m = (ntaps - 1) as f64 / 2.0;
    let wc = 2.0 * PI * cutoff_hz / fs;
    let win = generate(window, ntaps);
    let mut taps: Vec<f64> = (0..ntaps)
        .map(|i| {
            let x = i as f64 - m;
            let sinc = if x.abs() < 1e-12 {
                wc / PI
            } else {
                (wc * x).sin() / (PI * x)
            };
            sinc * win[i]
        })
        .collect();
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps.into_iter().map(|t| t as f32).collect()
}

/// Designs a Gaussian pulse-shaping filter for GFSK/GMSK.
///
/// * `bt` — bandwidth-time product (Bluetooth BR uses 0.5).
/// * `sps` — samples per symbol.
/// * `span` — filter span in symbols (total taps = `span * sps + 1`).
///
/// Taps are normalized to unit sum so that filtering a long run of constant
/// NRZ `±1` converges to `±1` (which keeps the modulation index exact).
pub fn gaussian(bt: f64, sps: usize, span: usize) -> Vec<f32> {
    assert!(bt > 0.0 && sps > 0 && span > 0);
    let n = span * sps + 1;
    let m = (n - 1) as f64 / 2.0;
    // Standard Gaussian impulse response: h(t) = sqrt(2*pi/ln2) * B *
    // exp(-2*pi^2*B^2*t^2 / ln2), with t in symbol units and B = bt.
    let ln2 = std::f64::consts::LN_2;
    let mut taps: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 - m) / sps as f64;
            let a = 2.0 * PI * PI * bt * bt / ln2;
            (-a * t * t).exp()
        })
        .collect();
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps.into_iter().map(|t| t as f32).collect()
}

/// Designs a root-raised-cosine filter.
///
/// * `beta` — roll-off factor in `(0, 1]`.
/// * `sps` — samples per symbol.
/// * `span` — span in symbols.
///
/// Normalized for unity peak of the *raised-cosine* cascade (i.e. the
/// convolution of two RRCs sampled at symbol instants is ISI-free with unit
/// center tap).
pub fn root_raised_cosine(beta: f64, sps: usize, span: usize) -> Vec<f32> {
    assert!(beta > 0.0 && beta <= 1.0 && sps > 0 && span > 0);
    let n = span * sps + 1;
    let m = (n - 1) as f64 / 2.0;
    let mut taps: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 - m) / sps as f64; // in symbol periods
            rrc_impulse(t, beta)
        })
        .collect();
    // Normalize to unit energy, the conventional matched-filter scaling.
    let energy: f64 = taps.iter().map(|t| t * t).sum();
    let k = energy.sqrt();
    for t in &mut taps {
        *t /= k;
    }
    taps.into_iter().map(|t| t as f32).collect()
}

fn rrc_impulse(t: f64, beta: f64) -> f64 {
    let eps = 1e-9;
    if t.abs() < eps {
        return 1.0 - beta + 4.0 * beta / PI;
    }
    let singular = 1.0 / (4.0 * beta);
    if (t.abs() - singular).abs() < eps {
        return (beta / 2f64.sqrt())
            * ((1.0 + 2.0 / PI) * (PI / (4.0 * beta)).sin()
                + (1.0 - 2.0 / PI) * (PI / (4.0 * beta)).cos());
    }
    let num = (PI * t * (1.0 - beta)).sin() + 4.0 * beta * t * (PI * t * (1.0 + beta)).cos();
    let den = PI * t * (1.0 - (4.0 * beta * t).powi(2));
    num / den
}

/// Half-sine pulse used by the 802.15.4 O-QPSK PHY: one half cycle of a sine
/// spanning `sps` samples (one chip period).
pub fn half_sine(sps: usize) -> Vec<f32> {
    assert!(sps > 0);
    (0..sps)
        .map(|i| ((i as f64 + 0.5) * PI / sps as f64).sin() as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_passes_dc_and_blocks_high_band() {
        let taps = lowpass(1e6, 8e6, 63, Window::Hamming);
        let mut fir = Fir::new(taps);
        // DC input.
        let dc: Vec<Complex32> = vec![Complex32::ONE; 512];
        let mut out = Vec::new();
        fir.process(&dc, &mut out);
        let settled = &out[128..];
        let dc_gain = settled.iter().map(|z| z.re).sum::<f32>() / settled.len() as f32;
        assert!((dc_gain - 1.0).abs() < 0.01, "dc gain {dc_gain}");

        // A 3 MHz tone should be strongly attenuated.
        fir.reset();
        let tone: Vec<Complex32> = (0..512)
            .map(|i| Complex32::cis((crate::TAU64 * 3e6 * i as f64 / 8e6) as f32))
            .collect();
        let mut out = Vec::new();
        fir.process(&tone, &mut out);
        let p = crate::complex::mean_power(&out[128..]);
        assert!(p < 1e-3, "stopband power {p}");
    }

    #[test]
    fn fir_impulse_response_reproduces_taps() {
        let taps = vec![0.5, -0.25, 0.125];
        let mut fir = Fir::new(taps.clone());
        let mut imp = vec![Complex32::ZERO; 5];
        imp[0] = Complex32::ONE;
        let mut out = Vec::new();
        fir.process(&imp, &mut out);
        for (i, t) in taps.iter().enumerate() {
            assert!((out[i].re - t).abs() < 1e-6);
        }
        assert!(out[3].abs() < 1e-6 && out[4].abs() < 1e-6);
    }

    #[test]
    fn fir_streaming_matches_one_shot() {
        let taps = lowpass(1e6, 8e6, 31, Window::Hann);
        let input: Vec<Complex32> = (0..200)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.17).cos()))
            .collect();
        let mut a = Fir::new(taps.clone());
        let mut one = Vec::new();
        a.process(&input, &mut one);

        let mut b = Fir::new(taps);
        let mut parts = Vec::new();
        for chunk in input.chunks(7) {
            b.process(chunk, &mut parts);
        }
        assert_eq!(one.len(), parts.len());
        for (x, y) in one.iter().zip(parts.iter()) {
            assert!((*x - *y).abs() < 1e-6);
        }
    }

    #[test]
    fn decimation_keeps_every_nth() {
        let mut fir = Fir::new(vec![1.0]); // identity
        let input: Vec<Complex32> = (0..20).map(|i| Complex32::new(i as f32, 0.0)).collect();
        let mut out = Vec::new();
        let mut phase = 0;
        fir.process_decimate(&input, 4, &mut phase, &mut out);
        let vals: Vec<f32> = out.iter().map(|z| z.re).collect();
        assert_eq!(vals, vec![0.0, 4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn gaussian_taps_sum_to_one_and_peak_centered() {
        let taps = gaussian(0.5, 8, 4);
        let sum: f32 = taps.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let peak = taps.iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(taps[taps.len() / 2], peak);
        // Symmetric.
        for i in 0..taps.len() {
            assert!((taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn rrc_cascade_is_isi_free_at_symbol_instants() {
        let sps = 8;
        let span = 8;
        let rrc = root_raised_cosine(0.35, sps, span);
        // Raised cosine = rrc (*) rrc.
        let rcf: Vec<f32> = {
            let n = rrc.len() * 2 - 1;
            let mut v = vec![0.0f32; n];
            for (i, a) in rrc.iter().enumerate() {
                for (j, b) in rrc.iter().enumerate() {
                    v[i + j] += a * b;
                }
            }
            v
        };
        let center = rcf.len() / 2;
        let peak = rcf[center];
        assert!(peak > 0.5);
        // Zero crossings at nonzero multiples of the symbol period.
        for k in 1..span {
            let v = rcf[center + k * sps].abs() / peak;
            assert!(v < 0.02, "ISI at symbol {k}: {v}");
        }
    }

    #[test]
    fn half_sine_is_positive_and_symmetric() {
        let p = half_sine(16);
        assert_eq!(p.len(), 16);
        assert!(p.iter().all(|&x| x > 0.0));
        for i in 0..p.len() {
            assert!((p[i] - p[p.len() - 1 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn convolve_real_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(convolve_real(&[1.0], &x), x);
        let shifted = convolve_real(&[0.0, 1.0], &x);
        assert_eq!(shifted, vec![0.0, 1.0, 2.0, 3.0]);
    }
}
