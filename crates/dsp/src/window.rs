//! Analysis and filter-design window functions.

use std::f64::consts::PI;

/// Window shapes supported by [`generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Rectangular (no taper).
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (three-term).
    Blackman,
}

/// Generates a symmetric window of length `n`.
pub fn generate(window: Window, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let m = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = i as f64 / m;
            match window {
                Window::Rectangular => 1.0,
                Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(generate(Window::Rectangular, 7).iter().all(|&w| w == 1.0));
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let v = generate(w, 33);
            for i in 0..v.len() {
                assert!(
                    (v[i] - v[v.len() - 1 - i]).abs() < 1e-12,
                    "{w:?} not symmetric"
                );
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let v = generate(Window::Hann, 65);
        assert!(v[0].abs() < 1e-12);
        assert!(v[64].abs() < 1e-12);
        assert!((v[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(generate(Window::Hann, 0).is_empty());
        assert_eq!(generate(Window::Blackman, 1), vec![1.0]);
    }
}
