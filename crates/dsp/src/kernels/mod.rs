//! Runtime-dispatched SIMD kernels for the DSP hot paths.
//!
//! Every inner loop the detection front end spends real time in — per-sample
//! power, windowed-power reductions, FIR and correlation dot products,
//! adjacent conjugate-multiply chains (the paper's "complex conjugation,
//! multiplication and arctan" pipeline, §4.5), and FFT butterfly stages —
//! is routed through the [`KernelTable`] selected here. Three backends ship:
//!
//! * **scalar** — the reference implementation. It *defines* the numeric
//!   contract; the vectorized backends must reproduce it bit-for-bit.
//! * **sse2** — 128-bit `std::arch` intrinsics (baseline on x86-64).
//! * **avx2** — 256-bit intrinsics, used when the CPU reports AVX2.
//!
//! # The bit-exactness contract
//!
//! SIMD changes results only when it changes *evaluation order*. We instead
//! fix the evaluation order in the scalar reference so the natural vector
//! schedule reproduces it exactly:
//!
//! * Element-wise kernels (per-sample power, conjugate products, butterfly
//!   arithmetic) perform the same IEEE operations per element in the same
//!   order, so every backend is trivially bit-identical. Sign manipulation
//!   uses the identities `a + (-b) ≡ a - b` and `x * (-y) ≡ -(x * y)`,
//!   which are exact in IEEE-754.
//! * Reductions use **striped 8-lane accumulation**: lane `j` accumulates
//!   elements with index ≡ `j` (mod 8) over the flat `f32` view, lanes are
//!   combined with the fixed tree `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`,
//!   and tail elements (`len % 8`) are added sequentially afterwards. That
//!   tree is exactly what one 8-lane AVX2 accumulator (add the 128-bit
//!   halves, then reduce pairwise) and two/four SSE2 accumulators produce.
//! * Complex reductions stripe 4 complex lanes with the tree
//!   `(c0+c2) + (c1+c3)`.
//! * Transcendentals (`atan2`, `sin_cos`) always run in scalar `libm` code,
//!   identical across backends; the vector backends only accelerate the
//!   complex multiplies feeding them.
//!
//! Rust never reassociates floating point, so the scalar reference is
//! bit-stable regardless of optimization level, and
//! `tests/kernel_differential.rs` plus the golden-trace matrix prove the
//! contract on every input class.
//!
//! # Backend selection
//!
//! The active backend resolves once from the `RFD_KERNEL` environment
//! variable (`scalar`, `sse2`, `avx2`, or `auto`; default `auto` = best
//! available) and can be overridden in-process with [`set_backend`] — the
//! test suites use that to run the same pipeline under every backend within
//! one process. Requesting an unavailable backend falls back to scalar with
//! a warning on stderr.

use crate::complex::Complex32;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod sse2_avx2;

/// A kernel backend identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Backend {
    /// Portable scalar reference implementation (always available).
    Scalar = 1,
    /// 128-bit SSE2 intrinsics (x86-64 baseline).
    Sse2 = 2,
    /// 256-bit AVX2 intrinsics.
    Avx2 = 3,
}

impl Backend {
    /// Stable lower-case name used in `RFD_KERNEL`, stats and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses an `RFD_KERNEL` value. `"auto"` maps to `None`.
    pub fn parse(s: &str) -> Option<Option<Backend>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Some(Backend::Scalar)),
            "sse2" => Some(Some(Backend::Sse2)),
            "avx2" => Some(Some(Backend::Avx2)),
            "auto" | "" => Some(None),
            _ => None,
        }
    }

    fn from_id(id: u8) -> Option<Backend> {
        match id {
            1 => Some(Backend::Scalar),
            2 => Some(Backend::Sse2),
            3 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The dispatch table: one function pointer per kernel. All backends share
/// the numeric contract documented at module level, so swapping tables can
/// never change observable output — only speed.
struct KernelTable {
    /// Striped sum of squares over a flat `f32` view, accumulated in `f64`.
    sum_sq_f32: fn(&[f32]) -> f64,
    /// Per-sample `|z|²` (`re*re + im*im`, element-wise).
    power_into: fn(&[Complex32], &mut [f32]),
    /// Striped dot product of two real sequences, accumulated in `f64`.
    dot_f32: fn(&[f32], &[f32]) -> f64,
    /// Complex-window × duplicated-real-taps dot, striped 8-lane `f32`.
    fir_dot: fn(&[f32], &[f32]) -> Complex32,
    /// `Σ signal[k] * conj(pattern[k])`, striped 4 complex lanes.
    conj_dot: fn(&[Complex32], &[Complex32]) -> Complex32,
    /// `out[i] = samples[i+1] * conj(samples[i])` (element-wise).
    conj_mul_adjacent: fn(&[Complex32], &mut [Complex32]),
    /// One radix-2 butterfly stage across all blocks (element-wise per k).
    fft_stage: fn(&mut [Complex32], usize, &[Complex32], bool),
}

static SCALAR_TABLE: KernelTable = KernelTable {
    sum_sq_f32: scalar::sum_sq_f32,
    power_into: scalar::power_into,
    dot_f32: scalar::dot_f32,
    fir_dot: scalar::fir_dot,
    conj_dot: scalar::conj_dot,
    conj_mul_adjacent: scalar::conj_mul_adjacent,
    fft_stage: scalar::fft_stage,
};

#[cfg(target_arch = "x86_64")]
static SSE2_TABLE: KernelTable = KernelTable {
    sum_sq_f32: sse2_avx2::sse2_sum_sq_f32,
    power_into: sse2_avx2::sse2_power_into,
    dot_f32: sse2_avx2::sse2_dot_f32,
    fir_dot: sse2_avx2::sse2_fir_dot,
    conj_dot: sse2_avx2::sse2_conj_dot,
    conj_mul_adjacent: sse2_avx2::sse2_conj_mul_adjacent,
    fft_stage: sse2_avx2::sse2_fft_stage,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    sum_sq_f32: sse2_avx2::avx2_sum_sq_f32,
    power_into: sse2_avx2::avx2_power_into,
    dot_f32: sse2_avx2::avx2_dot_f32,
    fir_dot: sse2_avx2::avx2_fir_dot,
    conj_dot: sse2_avx2::avx2_conj_dot,
    conj_mul_adjacent: sse2_avx2::avx2_conj_mul_adjacent,
    fft_stage: sse2_avx2::avx2_fft_stage,
};

fn table_for(b: Backend) -> &'static KernelTable {
    #[cfg(target_arch = "x86_64")]
    match b {
        Backend::Scalar => &SCALAR_TABLE,
        Backend::Sse2 => &SSE2_TABLE,
        Backend::Avx2 => &AVX2_TABLE,
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = b;
        &SCALAR_TABLE
    }
}

/// Active backend id; 0 = not yet resolved.
static ACTIVE: AtomicU8 = AtomicU8::new(0);
static WARNED: AtomicBool = AtomicBool::new(false);

/// The raw `RFD_KERNEL` request captured at first resolution ("auto" when
/// unset), reported by `--stats-json`.
pub fn requested() -> &'static str {
    static REQUESTED: OnceLock<String> = OnceLock::new();
    REQUESTED.get_or_init(|| match std::env::var("RFD_KERNEL") {
        Ok(v) if !v.trim().is_empty() => v.trim().to_ascii_lowercase(),
        _ => "auto".to_string(),
    })
}

/// Backends usable on this machine, in ascending preference order.
pub fn available() -> &'static [Backend] {
    static AVAILABLE: OnceLock<Vec<Backend>> = OnceLock::new();
    AVAILABLE.get_or_init(|| {
        let mut v = vec![Backend::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                v.push(Backend::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Backend::Avx2);
            }
        }
        v
    })
}

/// True if `b` can run on this machine.
pub fn is_available(b: Backend) -> bool {
    available().contains(&b)
}

fn resolve_from_env() -> Backend {
    let req = requested();
    let best = *available().last().unwrap_or(&Backend::Scalar);
    match Backend::parse(req) {
        Some(None) => best,
        Some(Some(b)) if is_available(b) => b,
        Some(Some(b)) => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "rfd-dsp: RFD_KERNEL={} requested but {} is not available \
                     on this CPU; falling back to scalar",
                    req,
                    b.name()
                );
            }
            Backend::Scalar
        }
        None => {
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "rfd-dsp: unrecognized RFD_KERNEL={req} (expected \
                     scalar|sse2|avx2|auto); using auto"
                );
            }
            best
        }
    }
}

/// The currently active backend, resolving `RFD_KERNEL` on first use.
pub fn active() -> Backend {
    match Backend::from_id(ACTIVE.load(Ordering::Relaxed)) {
        Some(b) => b,
        None => {
            let b = resolve_from_env();
            // Racing first calls resolve identically; last store wins.
            ACTIVE.store(b as u8, Ordering::Relaxed);
            b
        }
    }
}

/// Forces the active backend for this process, overriding `RFD_KERNEL`.
///
/// Used by the differential test suites to run the same pipeline under
/// every backend in one process. Fails if the backend is not available on
/// this CPU.
pub fn set_backend(b: Backend) -> Result<(), String> {
    if !is_available(b) {
        return Err(format!("kernel backend {} not available on this CPU", b));
    }
    ACTIVE.store(b as u8, Ordering::Relaxed);
    Ok(())
}

#[inline]
fn table() -> &'static KernelTable {
    table_for(active())
}

/// Reinterprets interleaved complex samples as a flat `[re, im, ...]` view.
///
/// Sound because [`Complex32`] is `#[repr(C)]` with exactly two `f32`
/// fields, so layout, size and alignment match `[f32; 2]`.
pub fn as_flat(samples: &[Complex32]) -> &[f32] {
    // SAFETY: Complex32 is #[repr(C)] { re: f32, im: f32 } — same layout
    // and alignment as two consecutive f32s; total length cannot overflow
    // because the source slice already fits in memory.
    #[allow(unsafe_code)]
    unsafe {
        std::slice::from_raw_parts(samples.as_ptr() as *const f32, samples.len() * 2)
    }
}

// ---------------------------------------------------------------------------
// Public kernel entry points (dispatch through the active table).
// ---------------------------------------------------------------------------

/// Striped sum of squares of a flat `f32` sequence, accumulated in `f64`.
pub fn sum_sq_f32(xs: &[f32]) -> f64 {
    (table().sum_sq_f32)(xs)
}

/// Average power (mean squared magnitude) of complex samples.
pub fn mean_power(samples: &[Complex32]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    (sum_sq_f32(as_flat(samples)) / samples.len() as f64) as f32
}

/// Per-sample instantaneous power `|z|²` into `out` (resized to match).
pub fn power_into(samples: &[Complex32], out: &mut Vec<f32>) {
    out.clear();
    out.resize(samples.len(), 0.0);
    (table().power_into)(samples, out.as_mut_slice());
}

/// Striped dot product of two equal-length real sequences in `f64`.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot_f32 length mismatch");
    (table().dot_f32)(a, b)
}

/// Dot of a flat complex window against per-component duplicated real taps.
///
/// `window` is `[re0, im0, re1, im1, ...]` and `taps2[2j] == taps2[2j+1]`
/// is the tap for complex position `j`; both slices have the same even
/// length. Accumulates in striped 8-lane `f32` (see module docs).
pub fn fir_dot(window: &[f32], taps2: &[f32]) -> Complex32 {
    assert_eq!(window.len(), taps2.len(), "fir_dot length mismatch");
    debug_assert!(window.len().is_multiple_of(2));
    (table().fir_dot)(window, taps2)
}

/// `Σ_k signal[k] * conj(pattern[k])` over equal-length slices.
pub fn conj_dot(signal: &[Complex32], pattern: &[Complex32]) -> Complex32 {
    assert_eq!(signal.len(), pattern.len(), "conj_dot length mismatch");
    (table().conj_dot)(signal, pattern)
}

/// Adjacent conjugate products: `out[i] = samples[i+1] * conj(samples[i])`.
///
/// `out.len()` must be `samples.len() - 1` (no-op for < 2 samples).
pub fn conj_mul_adjacent(samples: &[Complex32], out: &mut [Complex32]) {
    if samples.len() < 2 {
        assert!(out.is_empty(), "conj_mul_adjacent length mismatch");
        return;
    }
    assert_eq!(
        out.len(),
        samples.len() - 1,
        "conj_mul_adjacent length mismatch"
    );
    (table().conj_mul_adjacent)(samples, out);
}

/// One radix-2 Cooley-Tukey stage over all blocks of `buf`.
///
/// `half` is the butterfly half-length; `tw` holds the `half` contiguous
/// stage twiddles; `inverse` conjugates them. `buf.len()` must be a
/// multiple of `2 * half`.
pub fn fft_stage(buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) {
    assert!(half > 0 && tw.len() == half, "fft_stage bad twiddles");
    assert!(
        buf.len().is_multiple_of(2 * half),
        "fft_stage buffer/stage mismatch"
    );
    (table().fft_stage)(buf, half, tw, inverse);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn iq(rng: &mut Xoshiro256, n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|_| Complex32::new((rng.next_f32() - 0.5) * 4.0, (rng.next_f32() - 0.5) * 4.0))
            .collect()
    }

    /// Runs `f` under every available backend and asserts all results are
    /// bit-identical to scalar.
    fn differential<T, F>(label: &str, f: F)
    where
        T: PartialEq + std::fmt::Debug,
        F: Fn() -> T,
    {
        let prev = active();
        set_backend(Backend::Scalar).unwrap();
        let reference = f();
        for &b in available() {
            set_backend(b).unwrap();
            let got = f();
            assert_eq!(got, reference, "{label}: {b} != scalar");
        }
        set_backend(prev).unwrap();
    }

    #[test]
    fn parse_and_names_round_trip() {
        for b in [Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            assert_eq!(Backend::parse(b.name()), Some(Some(b)));
        }
        assert_eq!(Backend::parse("auto"), Some(None));
        assert_eq!(Backend::parse("AVX2"), Some(Some(Backend::Avx2)));
        assert_eq!(Backend::parse("neon"), None);
    }

    #[test]
    fn scalar_always_available_and_settable() {
        assert!(is_available(Backend::Scalar));
        let prev = active();
        set_backend(Backend::Scalar).unwrap();
        assert_eq!(active(), Backend::Scalar);
        set_backend(prev).unwrap();
    }

    #[test]
    fn reductions_bit_identical_across_backends() {
        let mut rng = Xoshiro256::new(0xD1FF);
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 100, 1031] {
            let xs: Vec<f32> = (0..n).map(|_| (rng.next_f32() - 0.5) * 8.0).collect();
            let ys: Vec<f32> = (0..n).map(|_| (rng.next_f32() - 0.5) * 8.0).collect();
            differential(&format!("sum_sq n={n}"), || sum_sq_f32(&xs).to_bits());
            differential(&format!("dot n={n}"), || dot_f32(&xs, &ys).to_bits());
        }
    }

    #[test]
    fn complex_kernels_bit_identical_across_backends() {
        let mut rng = Xoshiro256::new(0xC0);
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 257] {
            let s = iq(&mut rng, n + 16);
            let p = iq(&mut rng, n);
            differential(&format!("power n={n}"), || {
                let mut out = Vec::new();
                power_into(&s[..n], &mut out);
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            });
            differential(&format!("conj_dot n={n}"), || {
                let z = conj_dot(&s[..n], &p);
                (z.re.to_bits(), z.im.to_bits())
            });
            differential(&format!("conj_mul n={n}"), || {
                let m = n.saturating_sub(1);
                let mut out = vec![Complex32::ZERO; m];
                conj_mul_adjacent(&s[..n], &mut out);
                out.iter()
                    .map(|z| (z.re.to_bits(), z.im.to_bits()))
                    .collect::<Vec<_>>()
            });
        }
    }

    #[test]
    fn fir_dot_bit_identical_across_backends() {
        let mut rng = Xoshiro256::new(0xF1);
        for taps in [1usize, 2, 3, 4, 5, 8, 9, 41, 64] {
            let w: Vec<f32> = (0..2 * taps).map(|_| rng.next_f32() - 0.5).collect();
            let t: Vec<f32> = (0..2 * taps).map(|_| rng.next_f32() - 0.5).collect();
            differential(&format!("fir_dot taps={taps}"), || {
                let z = fir_dot(&w, &t);
                (z.re.to_bits(), z.im.to_bits())
            });
        }
    }

    #[test]
    fn fft_stage_bit_identical_across_backends() {
        let mut rng = Xoshiro256::new(0xFF7);
        for n in [2usize, 4, 8, 16, 64, 256] {
            let buf0 = iq(&mut rng, n);
            let tw: Vec<Complex32> = (0..n / 2)
                .map(|k| Complex32::cis(-(crate::TAU32) * k as f32 / n as f32))
                .collect();
            for inverse in [false, true] {
                differential(&format!("fft_stage n={n} inv={inverse}"), || {
                    let mut buf = buf0.clone();
                    fft_stage(&mut buf, n / 2, &tw, inverse);
                    buf.iter()
                        .map(|z| (z.re.to_bits(), z.im.to_bits()))
                        .collect::<Vec<_>>()
                });
            }
        }
    }

    #[test]
    fn mean_power_matches_naive_semantics() {
        let mut rng = Xoshiro256::new(7);
        let s = iq(&mut rng, 333);
        let naive: f64 = s
            .iter()
            .flat_map(|z| [z.re, z.im])
            .map(|x| (x as f64) * (x as f64))
            .sum();
        let got = mean_power(&s);
        assert!(((naive / 333.0) as f32 - got).abs() < 1e-5);
        assert_eq!(mean_power(&[]), 0.0);
    }
}
