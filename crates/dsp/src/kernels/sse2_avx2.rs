//! x86-64 SSE2 and AVX2 kernel backends.
//!
//! Each kernel reproduces the scalar reference in `scalar.rs` bit-for-bit:
//! striped accumulators map one-to-one onto vector lanes, reductions use
//! the same fixed tree, and all sign manipulation is via sign-bit XOR
//! (exact in IEEE-754: `a + (-b) ≡ a - b`). No FMA is used anywhere —
//! every multiply and add is a distinct rounded operation, exactly as the
//! scalar code performs them.
//!
//! # Safety
//!
//! Every `#[target_feature]` function here is reached only through the
//! dispatch tables in `mod.rs`, which select the SSE2/AVX2 tables only
//! after `is_x86_feature_detected!` has confirmed the feature (enforced by
//! `resolve_from_env` / `set_backend`). The `pub(super)` safe wrappers
//! additionally `debug_assert!` the feature in test builds.

use crate::complex::Complex32;
use core::arch::x86_64::*;

// ---------------------------------------------------------------------------
// SSE2
// ---------------------------------------------------------------------------

macro_rules! sse2_wrapper {
    ($pub_name:ident, $impl_name:ident, ($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        pub(super) fn $pub_name($($arg: $ty),*) -> $ret {
            debug_assert!(std::arch::is_x86_feature_detected!("sse2"));
            // SAFETY: only dispatched after runtime SSE2 detection (see
            // module docs); slice/pointer invariants upheld by the callee.
            unsafe { $impl_name($($arg),*) }
        }
    };
}

macro_rules! avx2_wrapper {
    ($pub_name:ident, $impl_name:ident, ($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        pub(super) fn $pub_name($($arg: $ty),*) -> $ret {
            debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
            // SAFETY: only dispatched after runtime AVX2 detection (see
            // module docs); slice/pointer invariants upheld by the callee.
            unsafe { $impl_name($($arg),*) }
        }
    };
}

sse2_wrapper!(sse2_sum_sq_f32, sum_sq_sse2, (xs: &[f32]) -> f64);
sse2_wrapper!(sse2_dot_f32, dot_sse2, (a: &[f32], b: &[f32]) -> f64);
sse2_wrapper!(sse2_power_into, power_sse2, (samples: &[Complex32], out: &mut [f32]) -> ());
sse2_wrapper!(sse2_fir_dot, fir_dot_sse2, (window: &[f32], taps2: &[f32]) -> Complex32);
sse2_wrapper!(sse2_conj_dot, conj_dot_sse2, (signal: &[Complex32], pattern: &[Complex32]) -> Complex32);
sse2_wrapper!(sse2_conj_mul_adjacent, conj_mul_adjacent_sse2, (samples: &[Complex32], out: &mut [Complex32]) -> ());
sse2_wrapper!(sse2_fft_stage, fft_stage_sse2, (buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) -> ());

avx2_wrapper!(avx2_sum_sq_f32, sum_sq_avx2, (xs: &[f32]) -> f64);
avx2_wrapper!(avx2_dot_f32, dot_avx2, (a: &[f32], b: &[f32]) -> f64);
avx2_wrapper!(avx2_power_into, power_avx2, (samples: &[Complex32], out: &mut [f32]) -> ());
avx2_wrapper!(avx2_fir_dot, fir_dot_avx2, (window: &[f32], taps2: &[f32]) -> Complex32);
avx2_wrapper!(avx2_conj_dot, conj_dot_avx2, (signal: &[Complex32], pattern: &[Complex32]) -> Complex32);
avx2_wrapper!(avx2_conj_mul_adjacent, conj_mul_adjacent_avx2, (samples: &[Complex32], out: &mut [Complex32]) -> ());
avx2_wrapper!(avx2_fft_stage, fft_stage_avx2, (buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) -> ());

/// Sign mask flipping the odd (imaginary) lanes of a 128-bit vector.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sign_odd128() -> __m128 {
    _mm_set_ps(-0.0, 0.0, -0.0, 0.0)
}

/// Sign mask flipping the even (real) lanes of a 128-bit vector.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn sign_even128() -> __m128 {
    _mm_set_ps(0.0, -0.0, 0.0, -0.0)
}

#[target_feature(enable = "sse2")]
unsafe fn sum_sq_sse2(xs: &[f32]) -> f64 {
    unsafe {
        let n8 = xs.len() & !7;
        let p = xs.as_ptr();
        // Striped lanes: acc0=[l0,l1] acc1=[l2,l3] acc2=[l4,l5] acc3=[l6,l7].
        let mut acc0 = _mm_setzero_pd();
        let mut acc1 = _mm_setzero_pd();
        let mut acc2 = _mm_setzero_pd();
        let mut acc3 = _mm_setzero_pd();
        let mut i = 0usize;
        while i < n8 {
            let a = _mm_loadu_ps(p.add(i));
            let b = _mm_loadu_ps(p.add(i + 4));
            let a_lo = _mm_cvtps_pd(a);
            let a_hi = _mm_cvtps_pd(_mm_movehl_ps(a, a));
            let b_lo = _mm_cvtps_pd(b);
            let b_hi = _mm_cvtps_pd(_mm_movehl_ps(b, b));
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(a_lo, a_lo));
            acc1 = _mm_add_pd(acc1, _mm_mul_pd(a_hi, a_hi));
            acc2 = _mm_add_pd(acc2, _mm_mul_pd(b_lo, b_lo));
            acc3 = _mm_add_pd(acc3, _mm_mul_pd(b_hi, b_hi));
            i += 8;
        }
        let mut acc = reduce8_pd(acc0, acc1, acc2, acc3);
        for &x in &xs[n8..] {
            acc += (x as f64) * (x as f64);
        }
        acc
    }
}

#[target_feature(enable = "sse2")]
unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f64 {
    unsafe {
        let n8 = a.len() & !7;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm_setzero_pd();
        let mut acc1 = _mm_setzero_pd();
        let mut acc2 = _mm_setzero_pd();
        let mut acc3 = _mm_setzero_pd();
        let mut i = 0usize;
        while i < n8 {
            let xa = _mm_loadu_ps(pa.add(i));
            let xb = _mm_loadu_ps(pb.add(i));
            let ya = _mm_loadu_ps(pa.add(i + 4));
            let yb = _mm_loadu_ps(pb.add(i + 4));
            acc0 = _mm_add_pd(acc0, _mm_mul_pd(_mm_cvtps_pd(xa), _mm_cvtps_pd(xb)));
            acc1 = _mm_add_pd(
                acc1,
                _mm_mul_pd(
                    _mm_cvtps_pd(_mm_movehl_ps(xa, xa)),
                    _mm_cvtps_pd(_mm_movehl_ps(xb, xb)),
                ),
            );
            acc2 = _mm_add_pd(acc2, _mm_mul_pd(_mm_cvtps_pd(ya), _mm_cvtps_pd(yb)));
            acc3 = _mm_add_pd(
                acc3,
                _mm_mul_pd(
                    _mm_cvtps_pd(_mm_movehl_ps(ya, ya)),
                    _mm_cvtps_pd(_mm_movehl_ps(yb, yb)),
                ),
            );
            i += 8;
        }
        let mut acc = reduce8_pd(acc0, acc1, acc2, acc3);
        for k in n8..a.len() {
            acc += (a[k] as f64) * (b[k] as f64);
        }
        acc
    }
}

/// Reduces striped f64 lanes [l0,l1] [l2,l3] [l4,l5] [l6,l7] with the
/// contract tree `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn reduce8_pd(acc0: __m128d, acc1: __m128d, acc2: __m128d, acc3: __m128d) -> f64 {
    let s02 = _mm_add_pd(acc0, acc2); // [l0+l4, l1+l5]
    let s13 = _mm_add_pd(acc1, acc3); // [l2+l6, l3+l7]
    let t = _mm_add_pd(s02, s13); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7)]
    _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t))
}

#[target_feature(enable = "sse2")]
unsafe fn power_sse2(samples: &[Complex32], out: &mut [f32]) {
    unsafe {
        let n = samples.len();
        let p = samples.as_ptr() as *const f32;
        let o = out.as_mut_ptr();
        let n4 = n & !3;
        let mut i = 0usize;
        while i < n4 {
            let a = _mm_loadu_ps(p.add(2 * i)); // re0 im0 re1 im1
            let b = _mm_loadu_ps(p.add(2 * i + 4)); // re2 im2 re3 im3
            let sa = _mm_mul_ps(a, a);
            let sb = _mm_mul_ps(b, b);
            let evens = _mm_shuffle_ps::<0x88>(sa, sb); // re² in order
            let odds = _mm_shuffle_ps::<0xDD>(sa, sb); // im² in order
            _mm_storeu_ps(o.add(i), _mm_add_ps(evens, odds));
            i += 4;
        }
        for k in n4..n {
            out[k] = samples[k].norm_sqr();
        }
    }
}

#[target_feature(enable = "sse2")]
unsafe fn fir_dot_sse2(window: &[f32], taps2: &[f32]) -> Complex32 {
    unsafe {
        let len = window.len();
        let n8 = len & !7;
        let pw = window.as_ptr();
        let pt = taps2.as_ptr();
        let mut acc0 = _mm_setzero_ps(); // lanes l0..l3
        let mut acc1 = _mm_setzero_ps(); // lanes l4..l7
        let mut i = 0usize;
        while i < n8 {
            acc0 = _mm_add_ps(
                acc0,
                _mm_mul_ps(_mm_loadu_ps(pw.add(i)), _mm_loadu_ps(pt.add(i))),
            );
            acc1 = _mm_add_ps(
                acc1,
                _mm_mul_ps(_mm_loadu_ps(pw.add(i + 4)), _mm_loadu_ps(pt.add(i + 4))),
            );
            i += 8;
        }
        let (mut re, mut im) = reduce8_ps(acc0, acc1);
        let mut k = n8;
        while k < len {
            re += window[k] * taps2[k];
            im += window[k + 1] * taps2[k + 1];
            k += 2;
        }
        Complex32::new(re, im)
    }
}

/// Reduces striped f32 lanes [l0..l3] [l4..l7] to
/// `((l0+l4)+(l2+l6), (l1+l5)+(l3+l7))`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn reduce8_ps(acc0: __m128, acc1: __m128) -> (f32, f32) {
    let s = _mm_add_ps(acc0, acc1); // [l0+l4, l1+l5, l2+l6, l3+l7]
    let r = _mm_add_ps(s, _mm_movehl_ps(s, s)); // pairwise tree
    (
        _mm_cvtss_f32(r),
        _mm_cvtss_f32(_mm_shuffle_ps::<0x01>(r, r)),
    )
}

/// Per-element `s * conj(p)` on two packed complex values:
/// `re = s.re*p.re + s.im*p.im`, `im = s.im*p.re - s.re*p.im`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn conj_mul_128(s: __m128, p: __m128) -> __m128 {
    unsafe {
        let p_re = _mm_shuffle_ps::<0xA0>(p, p); // [p0.re, p0.re, p1.re, p1.re]
        let p_im = _mm_shuffle_ps::<0xF5>(p, p); // [p0.im, p0.im, p1.im, p1.im]
        let s_swap = _mm_shuffle_ps::<0xB1>(s, s); // [s0.im, s0.re, s1.im, s1.re]
        let t1 = _mm_mul_ps(s, p_re); // [s.re*p.re, s.im*p.re, ...]
        let t2 = _mm_mul_ps(s_swap, p_im); // [s.im*p.im, s.re*p.im, ...]
                                           // even: t1 + t2 ; odd: t1 - t2 (as t1 + (-t2), exact).
        _mm_add_ps(t1, _mm_xor_ps(t2, sign_odd128()))
    }
}

#[target_feature(enable = "sse2")]
unsafe fn conj_dot_sse2(signal: &[Complex32], pattern: &[Complex32]) -> Complex32 {
    unsafe {
        let n = signal.len();
        let n4 = n & !3;
        let ps = signal.as_ptr() as *const f32;
        let pp = pattern.as_ptr() as *const f32;
        let mut acc_a = _mm_setzero_ps(); // complex lanes c0, c1
        let mut acc_b = _mm_setzero_ps(); // complex lanes c2, c3
        let mut i = 0usize;
        while i < n4 {
            let sa = _mm_loadu_ps(ps.add(2 * i));
            let pa = _mm_loadu_ps(pp.add(2 * i));
            let sb = _mm_loadu_ps(ps.add(2 * i + 4));
            let pb = _mm_loadu_ps(pp.add(2 * i + 4));
            acc_a = _mm_add_ps(acc_a, conj_mul_128(sa, pa));
            acc_b = _mm_add_ps(acc_b, conj_mul_128(sb, pb));
            i += 4;
        }
        // (c0+c2) + (c1+c3), matching the scalar contract tree.
        let s = _mm_add_ps(acc_a, acc_b);
        let r = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let mut z = Complex32::new(
            _mm_cvtss_f32(r),
            _mm_cvtss_f32(_mm_shuffle_ps::<0x01>(r, r)),
        );
        for k in n4..n {
            let (s, p) = (signal[k], pattern[k]);
            z.re += s.re * p.re + s.im * p.im;
            z.im += s.im * p.re - s.re * p.im;
        }
        z
    }
}

#[target_feature(enable = "sse2")]
unsafe fn conj_mul_adjacent_sse2(samples: &[Complex32], out: &mut [Complex32]) {
    unsafe {
        let m = out.len();
        let p = samples.as_ptr() as *const f32;
        let o = out.as_mut_ptr() as *mut f32;
        let mut i = 0usize;
        // Two outputs per iteration; loads touch samples[i .. i+3).
        while i + 2 <= m {
            let s = _mm_loadu_ps(p.add(2 * (i + 1)));
            let pv = _mm_loadu_ps(p.add(2 * i));
            _mm_storeu_ps(o.add(2 * i), conj_mul_128(s, pv));
            i += 2;
        }
        while i < m {
            let (s, pz) = (samples[i + 1], samples[i]);
            out[i] = Complex32::new(s.re * pz.re + s.im * pz.im, s.im * pz.re - s.re * pz.im);
            i += 1;
        }
    }
}

/// Per-element complex multiply `b * w` (the butterfly twiddle product):
/// `re = b.re*w.re - b.im*w.im`, `im = b.re*w.im + b.im*w.re`.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn mul_128(b: __m128, w: __m128) -> __m128 {
    unsafe {
        let w_re = _mm_shuffle_ps::<0xA0>(w, w);
        let w_im = _mm_shuffle_ps::<0xF5>(w, w);
        let b_swap = _mm_shuffle_ps::<0xB1>(b, b);
        let t1 = _mm_mul_ps(b, w_re); // [b.re*w.re, b.im*w.re, ...]
        let t2 = _mm_mul_ps(b_swap, w_im); // [b.im*w.im, b.re*w.im, ...]
                                           // even: t1 - t2 (as t1 + (-t2)) ; odd: t1 + t2.
        _mm_add_ps(t1, _mm_xor_ps(t2, sign_even128()))
    }
}

#[target_feature(enable = "sse2")]
unsafe fn fft_stage_sse2(buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) {
    unsafe {
        let len = half * 2;
        let n = buf.len();
        let base = buf.as_mut_ptr() as *mut f32;
        let twp = tw.as_ptr() as *const f32;
        let conj_mask = sign_odd128();
        let mut start = 0usize;
        while start < n {
            let mut k = 0usize;
            while k + 2 <= half {
                let mut w = _mm_loadu_ps(twp.add(2 * k));
                if inverse {
                    w = _mm_xor_ps(w, conj_mask); // negate im lanes == conj
                }
                let a = _mm_loadu_ps(base.add(2 * (start + k)));
                let b = _mm_loadu_ps(base.add(2 * (start + k + half)));
                let bw = mul_128(b, w);
                _mm_storeu_ps(base.add(2 * (start + k)), _mm_add_ps(a, bw));
                _mm_storeu_ps(base.add(2 * (start + k + half)), _mm_sub_ps(a, bw));
                k += 2;
            }
            while k < half {
                let mut w = tw[k];
                if inverse {
                    w = w.conj();
                }
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
                k += 1;
            }
            start += len;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2
// ---------------------------------------------------------------------------

#[target_feature(enable = "avx2")]
unsafe fn sum_sq_avx2(xs: &[f32]) -> f64 {
    unsafe {
        let n8 = xs.len() & !7;
        let p = xs.as_ptr();
        let mut acc0 = _mm256_setzero_pd(); // lanes l0..l3
        let mut acc1 = _mm256_setzero_pd(); // lanes l4..l7
        let mut i = 0usize;
        while i < n8 {
            let v = _mm256_loadu_ps(p.add(i));
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(lo, lo));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(hi, hi));
            i += 8;
        }
        let mut acc = reduce8_pd_256(acc0, acc1);
        for &x in &xs[n8..] {
            acc += (x as f64) * (x as f64);
        }
        acc
    }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f64 {
    unsafe {
        let n8 = a.len() & !7;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i < n8 {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            let a_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(va));
            let b_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(vb));
            let a_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(va));
            let b_hi = _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(vb));
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(a_lo, b_lo));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(a_hi, b_hi));
            i += 8;
        }
        let mut acc = reduce8_pd_256(acc0, acc1);
        for k in n8..a.len() {
            acc += (a[k] as f64) * (b[k] as f64);
        }
        acc
    }
}

/// Reduces striped f64 lanes [l0..l3] [l4..l7] with the contract tree.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce8_pd_256(acc0: __m256d, acc1: __m256d) -> f64 {
    let s = _mm256_add_pd(acc0, acc1); // [l0+l4, l1+l5, l2+l6, l3+l7]
    let lo = _mm256_castpd256_pd128(s);
    let hi = _mm256_extractf128_pd::<1>(s);
    let t = _mm_add_pd(lo, hi); // [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7)]
    _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t))
}

#[target_feature(enable = "avx2")]
unsafe fn power_avx2(samples: &[Complex32], out: &mut [f32]) {
    unsafe {
        let n = samples.len();
        let p = samples.as_ptr() as *const f32;
        let o = out.as_mut_ptr();
        let n8 = n & !7;
        let mut i = 0usize;
        while i < n8 {
            let a = _mm256_loadu_ps(p.add(2 * i)); // c0..c3
            let b = _mm256_loadu_ps(p.add(2 * i + 8)); // c4..c7
            let sa = _mm256_mul_ps(a, a);
            let sb = _mm256_mul_ps(b, b);
            // Per-128-lane gather: [p0,p1,p4,p5 | p2,p3,p6,p7] ...
            let evens = _mm256_shuffle_ps::<0x88>(sa, sb);
            let odds = _mm256_shuffle_ps::<0xDD>(sa, sb);
            let sum = _mm256_add_ps(evens, odds);
            // ... then permute 64-bit pairs back into order (pure move).
            let fixed = _mm256_castpd_ps(_mm256_permute4x64_pd::<0xD8>(_mm256_castps_pd(sum)));
            _mm256_storeu_ps(o.add(i), fixed);
            i += 8;
        }
        for k in n8..n {
            out[k] = samples[k].norm_sqr();
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn fir_dot_avx2(window: &[f32], taps2: &[f32]) -> Complex32 {
    unsafe {
        let len = window.len();
        let n8 = len & !7;
        let pw = window.as_ptr();
        let pt = taps2.as_ptr();
        let mut acc = _mm256_setzero_ps(); // lanes l0..l7
        let mut i = 0usize;
        while i < n8 {
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(_mm256_loadu_ps(pw.add(i)), _mm256_loadu_ps(pt.add(i))),
            );
            i += 8;
        }
        let (mut re, mut im) = reduce8_ps_256(acc);
        let mut k = n8;
        while k < len {
            re += window[k] * taps2[k];
            im += window[k + 1] * taps2[k + 1];
            k += 2;
        }
        Complex32::new(re, im)
    }
}

/// Reduces 8 striped f32 lanes to `((l0+l4)+(l2+l6), (l1+l5)+(l3+l7))`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce8_ps_256(acc: __m256) -> (f32, f32) {
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps::<1>(acc);
    let s = _mm_add_ps(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
    let r = _mm_add_ps(s, _mm_movehl_ps(s, s));
    (
        _mm_cvtss_f32(r),
        _mm_cvtss_f32(_mm_shuffle_ps::<0x01>(r, r)),
    )
}

/// Per-element `s * conj(p)` on four packed complex values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn conj_mul_256(s: __m256, p: __m256) -> __m256 {
    let p_re = _mm256_shuffle_ps::<0xA0>(p, p);
    let p_im = _mm256_shuffle_ps::<0xF5>(p, p);
    let s_swap = _mm256_shuffle_ps::<0xB1>(s, s);
    let t1 = _mm256_mul_ps(s, p_re);
    let t2 = _mm256_mul_ps(s_swap, p_im);
    let sign_odd = _mm256_set_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
    _mm256_add_ps(t1, _mm256_xor_ps(t2, sign_odd))
}

#[target_feature(enable = "avx2")]
unsafe fn conj_dot_avx2(signal: &[Complex32], pattern: &[Complex32]) -> Complex32 {
    unsafe {
        let n = signal.len();
        let n4 = n & !3;
        let ps = signal.as_ptr() as *const f32;
        let pp = pattern.as_ptr() as *const f32;
        let mut acc = _mm256_setzero_ps(); // complex lanes c0..c3
        let mut i = 0usize;
        while i < n4 {
            let s = _mm256_loadu_ps(ps.add(2 * i));
            let p = _mm256_loadu_ps(pp.add(2 * i));
            acc = _mm256_add_ps(acc, conj_mul_256(s, p));
            i += 4;
        }
        // (c0+c2) + (c1+c3): add 128-bit halves, then the two complex lanes.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let s = _mm_add_ps(lo, hi); // [c0+c2, c1+c3]
        let r = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let mut z = Complex32::new(
            _mm_cvtss_f32(r),
            _mm_cvtss_f32(_mm_shuffle_ps::<0x01>(r, r)),
        );
        for k in n4..n {
            let (s, p) = (signal[k], pattern[k]);
            z.re += s.re * p.re + s.im * p.im;
            z.im += s.im * p.re - s.re * p.im;
        }
        z
    }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_mul_adjacent_avx2(samples: &[Complex32], out: &mut [Complex32]) {
    unsafe {
        let m = out.len();
        let p = samples.as_ptr() as *const f32;
        let o = out.as_mut_ptr() as *mut f32;
        let mut i = 0usize;
        // Four outputs per iteration; loads touch samples[i .. i+5).
        while i + 4 <= m {
            let s = _mm256_loadu_ps(p.add(2 * (i + 1)));
            let pv = _mm256_loadu_ps(p.add(2 * i));
            _mm256_storeu_ps(o.add(2 * i), conj_mul_256(s, pv));
            i += 4;
        }
        while i < m {
            let (s, pz) = (samples[i + 1], samples[i]);
            out[i] = Complex32::new(s.re * pz.re + s.im * pz.im, s.im * pz.re - s.re * pz.im);
            i += 1;
        }
    }
}

/// Per-element complex multiply `b * w` on four packed complex values.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_256(b: __m256, w: __m256) -> __m256 {
    let w_re = _mm256_shuffle_ps::<0xA0>(w, w);
    let w_im = _mm256_shuffle_ps::<0xF5>(w, w);
    let b_swap = _mm256_shuffle_ps::<0xB1>(b, b);
    let t1 = _mm256_mul_ps(b, w_re);
    let t2 = _mm256_mul_ps(b_swap, w_im);
    let sign_even = _mm256_set_ps(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0);
    _mm256_add_ps(t1, _mm256_xor_ps(t2, sign_even))
}

#[target_feature(enable = "avx2")]
unsafe fn fft_stage_avx2(buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) {
    unsafe {
        let len = half * 2;
        let n = buf.len();
        let base = buf.as_mut_ptr() as *mut f32;
        let twp = tw.as_ptr() as *const f32;
        let conj_mask = _mm256_set_ps(-0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0);
        let mut start = 0usize;
        while start < n {
            let mut k = 0usize;
            while k + 4 <= half {
                let mut w = _mm256_loadu_ps(twp.add(2 * k));
                if inverse {
                    w = _mm256_xor_ps(w, conj_mask);
                }
                let a = _mm256_loadu_ps(base.add(2 * (start + k)));
                let b = _mm256_loadu_ps(base.add(2 * (start + k + half)));
                let bw = mul_256(b, w);
                _mm256_storeu_ps(base.add(2 * (start + k)), _mm256_add_ps(a, bw));
                _mm256_storeu_ps(base.add(2 * (start + k + half)), _mm256_sub_ps(a, bw));
                k += 4;
            }
            while k < half {
                let mut w = tw[k];
                if inverse {
                    w = w.conj();
                }
                let a = buf[start + k];
                let b = buf[start + k + half] * w;
                buf[start + k] = a + b;
                buf[start + k + half] = a - b;
                k += 1;
            }
            start += len;
        }
    }
}
