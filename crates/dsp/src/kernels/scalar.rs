//! Scalar reference kernels.
//!
//! These define the numeric contract (see the module docs in
//! [`super`]): striped 8-lane accumulation with a fixed reduction tree for
//! real reductions, striped 4-complex-lane accumulation for complex
//! reductions, and plain per-element IEEE arithmetic everywhere else. The
//! SIMD backends are required to reproduce every bit of these results.

use crate::complex::Complex32;

/// Reduction tree shared by all striped-8 real kernels:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the order an 8-lane vector
/// accumulator naturally reduces in (add 128-bit halves, then pairwise).
#[inline]
fn tree8(l: [f64; 8]) -> f64 {
    ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]))
}

pub(super) fn sum_sq_f32(xs: &[f32]) -> f64 {
    let n8 = xs.len() & !7;
    let mut l = [0.0f64; 8];
    let mut i = 0;
    while i < n8 {
        for j in 0..8 {
            let x = xs[i + j] as f64;
            l[j] += x * x;
        }
        i += 8;
    }
    let mut acc = tree8(l);
    for &x in &xs[n8..] {
        acc += (x as f64) * (x as f64);
    }
    acc
}

pub(super) fn dot_f32(a: &[f32], b: &[f32]) -> f64 {
    let n8 = a.len() & !7;
    let mut l = [0.0f64; 8];
    let mut i = 0;
    while i < n8 {
        for j in 0..8 {
            l[j] += (a[i + j] as f64) * (b[i + j] as f64);
        }
        i += 8;
    }
    let mut acc = tree8(l);
    for k in n8..a.len() {
        acc += (a[k] as f64) * (b[k] as f64);
    }
    acc
}

pub(super) fn power_into(samples: &[Complex32], out: &mut [f32]) {
    for (o, z) in out.iter_mut().zip(samples.iter()) {
        *o = z.norm_sqr();
    }
}

pub(super) fn fir_dot(window: &[f32], taps2: &[f32]) -> Complex32 {
    let len = window.len();
    let n8 = len & !7;
    let mut l = [0.0f32; 8];
    let mut i = 0;
    while i < n8 {
        for j in 0..8 {
            l[j] += window[i + j] * taps2[i + j];
        }
        i += 8;
    }
    let mut re = (l[0] + l[4]) + (l[2] + l[6]);
    let mut im = (l[1] + l[5]) + (l[3] + l[7]);
    let mut k = n8;
    while k < len {
        re += window[k] * taps2[k];
        im += window[k + 1] * taps2[k + 1];
        k += 2;
    }
    Complex32::new(re, im)
}

/// The element formula every backend uses for `s * conj(p)`; bitwise equal
/// to `Complex32::mul(s, p.conj())` by the IEEE sign identities.
#[inline]
fn conj_mul(s: Complex32, p: Complex32) -> Complex32 {
    Complex32::new(s.re * p.re + s.im * p.im, s.im * p.re - s.re * p.im)
}

pub(super) fn conj_dot(signal: &[Complex32], pattern: &[Complex32]) -> Complex32 {
    let n = signal.len();
    let n4 = n & !3;
    let mut acc = [Complex32::ZERO; 4];
    let mut i = 0;
    while i < n4 {
        for j in 0..4 {
            acc[j] += conj_mul(signal[i + j], pattern[i + j]);
        }
        i += 4;
    }
    let mut r = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for k in n4..n {
        r += conj_mul(signal[k], pattern[k]);
    }
    r
}

pub(super) fn conj_mul_adjacent(samples: &[Complex32], out: &mut [Complex32]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = conj_mul(samples[i + 1], samples[i]);
    }
}

pub(super) fn fft_stage(buf: &mut [Complex32], half: usize, tw: &[Complex32], inverse: bool) {
    let len = half * 2;
    for start in (0..buf.len()).step_by(len) {
        for k in 0..half {
            let mut w = tw[k];
            if inverse {
                w = w.conj();
            }
            let a = buf[start + k];
            let b = buf[start + k + half] * w;
            buf[start + k] = a + b;
            buf[start + k + half] = a - b;
        }
    }
}
