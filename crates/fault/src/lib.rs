//! Deterministic fault injection for the rfdump pipeline.
//!
//! Production SDR stacks treat overload and link failure as operating modes,
//! not exceptional crashes — but you cannot test the recovery machinery
//! without a way to *cause* analyzer panics, slow stages, IO errors, corrupt
//! frames, and connection drops on demand, reproducibly. This crate provides
//! that: a [`FaultPlan`] parsed from a compact spec string (the CLI's
//! `--chaos <spec>`, or the `RFD_FAULTS` environment variable for whole-suite
//! chaos runs) that decides, at named injection sites threaded through the
//! pipeline, whether to fire a fault.
//!
//! Everything is seeded: the same spec produces the same firing pattern for
//! the same sequence of [`FaultPlan::decide`] calls, so a chaos failure found
//! in CI replays locally with nothing but the spec string.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := term (';' term)*
//! term    := 'seed=' u64
//!          | kind '=' target [when] [cap] [arg]
//! kind    := panic | slow | io | corrupt | truncate | disconnect | cpu | kill
//! target  := substring matched against the site name, or '*' for any site
//! when    := '@' probability        fire with this probability per call
//!          | '#' k                  fire on exactly the k-th matching call
//!          | '%' k                  fire on every k-th matching call
//!          (absent: fire on every matching call)
//! cap     := 'x' n                  stop after n firings (needs a `when`)
//! arg     := '/' duration           slow/cpu duration, e.g. 2ms, 100us, 1s
//! ```
//!
//! Examples:
//!
//! * `seed=7;panic=analyze:wifi#1` — panic the 802.11 analyzer on its first
//!   call (the quarantine test plan).
//! * `disconnect=net.send.chunk%40x2` — drop the producer connection on
//!   every 40th chunk, at most twice.
//! * `slow=analyze@0.02/500us;cpu=detect@0.01/100us` — probabilistic latency
//!   and CPU pressure, deterministic per seed.
//!
//! Sites are plain strings (`analyze:<name>`, `net.send.chunk`,
//! `net.sub.read`, `net.server.read`, `detect`); a rule's target matches by
//! substring so `analyze` covers every analyzer while `analyze:bt` picks one.
//!
//! The crate is std-only and dependency-free so the lowest crates in the
//! workspace graph can host injection sites without cycles.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod signal;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Seeded PRNG (SplitMix64 — the same generator rfd-dsp uses for scene
// synthesis, inlined here to keep the crate dependency-free).
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, high-quality 64-bit mixing PRNG. One step per call;
/// also usable as a stateless hash by seeding with the value to mix.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stateless mix of a (seed, rule, call) triple into `[0, 1)` — the
/// per-call coin for probabilistic rules.
fn coin(seed: u64, rule: u64, call: u64) -> f64 {
    let mut rng = SplitMix64::new(seed ^ rule.rotate_left(32) ^ call.wrapping_mul(0x9E37_79B9));
    // Two steps so adjacent calls decorrelate even with tiny seeds.
    rng.next_u64();
    rng.next_f64()
}

// ---------------------------------------------------------------------------
// Actions and rules
// ---------------------------------------------------------------------------

/// What a fired fault rule tells the injection site to do. Sites apply the
/// action themselves (this crate never panics or touches sockets), so every
/// site documents which actions it honours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic at the site (exercises `catch_unwind` supervision).
    Panic,
    /// Sleep for the given duration before proceeding (a slow stage).
    Slow(Duration),
    /// Fail the operation with an artificial IO error.
    Io,
    /// Corrupt the outgoing bytes (flip payload bytes so the CRC fails).
    Corrupt,
    /// Truncate the outgoing bytes mid-frame.
    Truncate,
    /// Drop the connection at this point.
    Disconnect,
    /// Busy-spin for the given duration (CPU pressure without blocking).
    Spin(Duration),
    /// Abort the whole process at this site (`std::process::abort`), as a
    /// seeded stand-in for SIGKILL/power loss. Sites honour it directly;
    /// crash-recovery tests use it to die at reproducible pipeline offsets.
    /// Suppressed plan-wide after [`FaultPlan::disarm_kills`] so a `--resume`
    /// run does not crash-loop on the same rule.
    Kill,
}

/// The kind keyword in the spec. Separate from [`Action`] because the
/// duration argument is bound at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Panic,
    Slow,
    Io,
    Corrupt,
    Truncate,
    Disconnect,
    Cpu,
    Kill,
}

impl Kind {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "panic" => Kind::Panic,
            "slow" => Kind::Slow,
            "io" => Kind::Io,
            "corrupt" => Kind::Corrupt,
            "truncate" => Kind::Truncate,
            "disconnect" => Kind::Disconnect,
            "cpu" => Kind::Cpu,
            "kill" => Kind::Kill,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Panic => "panic",
            Kind::Slow => "slow",
            Kind::Io => "io",
            Kind::Corrupt => "corrupt",
            Kind::Truncate => "truncate",
            Kind::Disconnect => "disconnect",
            Kind::Cpu => "cpu",
            Kind::Kill => "kill",
        }
    }
}

/// When a rule fires, relative to its own matching-call counter.
#[derive(Debug, Clone, Copy, PartialEq)]
enum When {
    /// Every matching call.
    Always,
    /// With this probability per call (seeded, deterministic).
    Prob(f64),
    /// On exactly the k-th matching call (1-based).
    Nth(u64),
    /// On every k-th matching call.
    Every(u64),
}

struct Rule {
    kind: Kind,
    target: String,
    when: When,
    max_fires: u64,
    arg: Duration,
    calls: AtomicU64,
    fired: AtomicU64,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        self.target == "*" || site.contains(self.target.as_str())
    }

    fn action(&self) -> Action {
        match self.kind {
            Kind::Panic => Action::Panic,
            Kind::Slow => Action::Slow(self.arg),
            Kind::Io => Action::Io,
            Kind::Corrupt => Action::Corrupt,
            Kind::Truncate => Action::Truncate,
            Kind::Disconnect => Action::Disconnect,
            Kind::Cpu => Action::Spin(self.arg),
            Kind::Kill => Action::Kill,
        }
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A parsed chaos plan: an ordered list of fault rules plus the seed that
/// makes probabilistic rules reproducible. Thread-safe; injection sites hold
/// an `Arc<FaultPlan>` and call [`decide`](Self::decide).
///
/// Call counters are per rule and atomic, so under a multi-threaded pool the
/// *set* of firing calls is deterministic per seed even though which worker
/// observes each firing is not.
#[derive(Debug)]
pub struct FaultPlan {
    spec: String,
    seed: u64,
    rules: Vec<Rule>,
    kills_disarmed: AtomicBool,
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("kind", &self.kind.name())
            .field("target", &self.target)
            .field("when", &self.when)
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .field("fired", &self.fired.load(Ordering::Relaxed))
            .finish()
    }
}

/// Counters for one rule, for the stats-json `faults` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStats {
    /// The rule's kind keyword (`panic`, `slow`, ...).
    pub kind: String,
    /// The site substring the rule matches.
    pub target: String,
    /// How many matching calls the rule has seen.
    pub calls: u64,
    /// How many times it fired.
    pub fired: u64,
}

/// A snapshot of a plan's activity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// The original spec string.
    pub spec: String,
    /// The seed in effect.
    pub seed: u64,
    /// Per-rule counters, in spec order.
    pub rules: Vec<RuleStats>,
}

impl FaultStats {
    /// Total firings across all rules.
    pub fn fired(&self) -> u64 {
        self.rules.iter().map(|r| r.fired).sum()
    }
}

impl FaultPlan {
    /// Parses a spec string (see the crate docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for term in spec.split([';', ',']) {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let (key, value) = term
                .split_once('=')
                .ok_or_else(|| format!("fault term '{term}' is not KEY=VALUE"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("seed '{value}' is not a u64"))?;
                continue;
            }
            let kind = Kind::parse(key).ok_or_else(|| format!("unknown fault kind '{key}'"))?;
            rules.push(parse_rule(kind, value)?);
        }
        Ok(Self {
            spec: spec.to_string(),
            seed,
            rules,
            kills_disarmed: AtomicBool::new(false),
        })
    }

    /// Suppress every `kill` rule from now on. A `--resume` run disarms kills
    /// before re-processing so the rule that crashed the previous run cannot
    /// crash-loop the recovery. Rule counters still advance (the firing
    /// schedule stays seed-deterministic); only the action is withheld.
    pub fn disarm_kills(&self) {
        self.kills_disarmed.store(true, Ordering::Relaxed);
    }

    /// The seed in effect (0 unless the spec set one).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Asks the plan whether a fault fires at this site, advancing the
    /// matching rules' call counters. Returns the first firing rule's
    /// action. Sites that can honour several actions match on the result;
    /// sites that cannot honour an action ignore it.
    pub fn decide(&self, site: &str) -> Option<Action> {
        let mut hit = None;
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(site) {
                continue;
            }
            let call = rule.calls.fetch_add(1, Ordering::Relaxed) + 1; // 1-based
            let due = match rule.when {
                When::Always => true,
                When::Prob(p) => coin(self.seed, idx as u64, call) < p,
                When::Nth(k) => call == k,
                When::Every(k) => k > 0 && call % k == 0,
            };
            if !due || hit.is_some() {
                continue; // counters still advance for non-winning rules
            }
            // Reserve a firing slot; the cap is exact even across threads.
            let mut f = rule.fired.load(Ordering::Relaxed);
            loop {
                if f >= rule.max_fires {
                    break;
                }
                match rule.fired.compare_exchange_weak(
                    f,
                    f + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        hit = Some(rule.action());
                        break;
                    }
                    Err(cur) => f = cur,
                }
            }
        }
        match hit {
            Some(Action::Kill) if self.kills_disarmed.load(Ordering::Relaxed) => None,
            other => other,
        }
    }

    /// Snapshot of the plan's counters for reporting.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            spec: self.spec.clone(),
            seed: self.seed,
            rules: self
                .rules
                .iter()
                .map(|r| RuleStats {
                    kind: r.kind.name().to_string(),
                    target: r.target.clone(),
                    calls: r.calls.load(Ordering::Relaxed),
                    fired: r.fired.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// The ambient plan from the `RFD_FAULTS` environment variable, read
    /// once per process. `None` when unset, empty, or unparsable (a bad
    /// spec warns on stderr rather than killing the process — chaos tooling
    /// must never be the thing that crashes the pipeline).
    pub fn ambient() -> Option<Arc<FaultPlan>> {
        static AMBIENT: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
        AMBIENT
            .get_or_init(|| {
                let spec = std::env::var("RFD_FAULTS").ok()?;
                if spec.trim().is_empty() {
                    return None;
                }
                match FaultPlan::parse(&spec) {
                    Ok(p) => Some(Arc::new(p)),
                    Err(e) => {
                        eprintln!("rfd-fault: ignoring RFD_FAULTS: {e}");
                        None
                    }
                }
            })
            .clone()
    }
}

/// Parses the value side of a rule term: `target[when][cap][arg]`.
fn parse_rule(kind: Kind, value: &str) -> Result<Rule, String> {
    // The duration argument is after the last '/', if any (site names never
    // contain '/').
    let (head, arg) = match value.rsplit_once('/') {
        Some((h, a)) => (h, Some(a)),
        None => (value, None),
    };
    // The target ends at the first when-marker; '@', '#', '%' never appear
    // in site names.
    let marker = head.find(['@', '#', '%']);
    let (target, when, max_fires) = match marker {
        None => (head, When::Always, u64::MAX),
        Some(i) => {
            let target = &head[..i];
            let mut rest = &head[i + 1..];
            // The cap suffix 'xN' lives inside the when-spec so targets may
            // contain the letter 'x'.
            let mut cap = u64::MAX;
            if let Some(x) = rest.rfind('x') {
                let n: u64 = rest[x + 1..]
                    .parse()
                    .map_err(|_| format!("fire cap '{}' is not a count", &rest[x + 1..]))?;
                cap = n;
                rest = &rest[..x];
            }
            let when = match head.as_bytes()[i] {
                b'@' => {
                    let p: f64 = rest
                        .parse()
                        .map_err(|_| format!("probability '{rest}' is not a number"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} out of [0, 1]"));
                    }
                    When::Prob(p)
                }
                b'#' => When::Nth(
                    rest.parse()
                        .map_err(|_| format!("call index '{rest}' is not a count"))?,
                ),
                _ => When::Every(
                    rest.parse()
                        .map_err(|_| format!("period '{rest}' is not a count"))?,
                ),
            };
            (target, when, cap)
        }
    };
    if target.is_empty() {
        return Err(format!("fault rule '{value}' has an empty target"));
    }
    let arg = match arg {
        Some(a) => parse_duration(a)?,
        None => Duration::from_millis(1),
    };
    Ok(Rule {
        kind,
        target: target.to_string(),
        when,
        max_fires,
        arg,
        calls: AtomicU64::new(0),
        fired: AtomicU64::new(0),
    })
}

/// Parses `2ms` / `100us` / `1s` / `500ns` duration spellings.
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, unit) = match s.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => s.split_at(i),
        None => return Err(format!("duration '{s}' has no unit (ns/us/ms/s)")),
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("duration '{s}' has a bad number"))?;
    if v.is_nan() || !v.is_finite() || v < 0.0 {
        return Err(format!("duration '{s}' must be non-negative"));
    }
    let secs = match unit {
        "ns" => v * 1e-9,
        "us" => v * 1e-6,
        "ms" => v * 1e-3,
        "s" => v,
        other => return Err(format!("unknown duration unit '{other}'")),
    };
    Ok(Duration::from_secs_f64(secs))
}

/// Busy-spins for `d` — the standard way a site honours [`Action::Spin`].
/// Burns CPU without yielding, which is exactly the overload signature the
/// `LoadGovernor` watches for.
pub fn spin_for(d: Duration) {
    let t0 = std::time::Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_kinds_and_schedules() {
        let p = FaultPlan::parse(
            "seed=42;panic=analyze:wifi#1;slow=analyze@0.5/2ms;disconnect=net.send.chunk%3x2;cpu=*@0.25/100us",
        )
        .unwrap();
        assert_eq!(p.seed(), 42);
        let snap = p.snapshot();
        assert_eq!(snap.rules.len(), 4);
        assert_eq!(snap.rules[0].kind, "panic");
        assert_eq!(snap.rules[0].target, "analyze:wifi");
        assert_eq!(snap.rules[2].kind, "disconnect");
    }

    #[test]
    fn nth_rule_fires_exactly_once_on_the_kth_call() {
        let p = FaultPlan::parse("panic=analyze:wifi#3").unwrap();
        let mut fires = Vec::new();
        for i in 1..=6 {
            if p.decide("analyze:wifi-demod").is_some() {
                fires.push(i);
            }
        }
        assert_eq!(fires, vec![3]);
        // A different site never matches.
        assert_eq!(p.decide("analyze:bt-demod"), None);
    }

    #[test]
    fn every_rule_fires_periodically_and_respects_the_cap() {
        let p = FaultPlan::parse("disconnect=chunk%3x2").unwrap();
        let fires: Vec<usize> = (1..=12)
            .filter(|_| p.decide("net.send.chunk").is_some())
            .collect();
        assert_eq!(fires.len(), 2, "cap x2 limits firings: {fires:?}");
        let snap = p.snapshot();
        assert_eq!(snap.rules[0].calls, 12);
        assert_eq!(snap.rules[0].fired, 2);
        assert_eq!(snap.fired(), 2);
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let pattern = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::parse(&format!("seed={seed};io=read@0.3")).unwrap();
            (0..64)
                .map(|_| p.decide("net.server.read").is_some())
                .collect()
        };
        let a = pattern(7);
        assert_eq!(a, pattern(7), "same seed, same firing pattern");
        assert_ne!(a, pattern(8), "different seed, different pattern");
        let hits = a.iter().filter(|&&b| b).count();
        assert!((5..=30).contains(&hits), "p=0.3 over 64 calls hit {hits}");
    }

    #[test]
    fn durations_parse_and_bind_to_actions() {
        let p = FaultPlan::parse("slow=analyze#1/250us;cpu=detect#1/2ms").unwrap();
        assert_eq!(
            p.decide("analyze:wifi"),
            Some(Action::Slow(Duration::from_micros(250)))
        );
        assert_eq!(
            p.decide("detect"),
            Some(Action::Spin(Duration::from_millis(2)))
        );
    }

    #[test]
    fn wildcard_matches_any_site() {
        let p = FaultPlan::parse("truncate=*#1").unwrap();
        assert_eq!(p.decide("anything.at.all"), Some(Action::Truncate));
    }

    #[test]
    fn bad_specs_are_rejected_with_reasons() {
        for bad in [
            "panic",              // no '='
            "explode=x#1",        // unknown kind
            "panic=@0.5",         // empty target
            "slow=a#1/2parsecs",  // bad unit
            "io=a@1.5",           // probability out of range
            "seed=banana",        // non-numeric seed
            "disconnect=a%often", // non-numeric period
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn kill_rules_parse_fire_once_and_disarm() {
        let p = FaultPlan::parse("kill=detect#2").unwrap();
        assert_eq!(p.decide("detect"), None);
        assert_eq!(p.decide("detect"), Some(Action::Kill));
        assert_eq!(p.decide("detect"), None, "#2 fires exactly once");

        let p = FaultPlan::parse("kill=journal#1").unwrap();
        p.disarm_kills();
        assert_eq!(
            p.decide("journal.commit"),
            None,
            "disarmed kills are withheld"
        );
        let snap = p.snapshot();
        assert_eq!(snap.rules[0].kind, "kill");
        assert_eq!(snap.rules[0].calls, 1, "counters advance while disarmed");
    }

    #[test]
    fn empty_and_seed_only_specs_have_no_rules() {
        assert_eq!(FaultPlan::parse("").unwrap().snapshot().rules.len(), 0);
        let p = FaultPlan::parse("seed=9").unwrap();
        assert_eq!(p.decide("anywhere"), None);
    }
}
