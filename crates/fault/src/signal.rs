//! Minimal SIGINT handling for `rfdump serve`.
//!
//! The workspace is dependency-free, so there is no `libc`/`signal-hook` to
//! lean on; this module declares the one C function it needs. It is the only
//! unsafe code in the workspace (every other crate carries
//! `#![forbid(unsafe_code)]`), kept deliberately tiny: install a handler
//! that sets an `AtomicBool`, and let the server's accept loop poll it.
//!
//! The handler re-arms SIGINT to the default disposition after the first
//! delivery, so a second Ctrl-C force-kills a server that is stuck flushing.

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        // POSIX `signal(2)`. The handler slot is address-sized; SIG_DFL /
        // SIG_IGN / SIG_ERR are the reserved small values.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        SIGINT_SEEN.store(true, Ordering::SeqCst);
        // Restore the default disposition: atomics and signal(2) are both
        // async-signal-safe, and a second ^C must be able to kill us.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install_sigint() -> bool {
        let handler = on_sigint as extern "C" fn(i32);
        #[allow(clippy::fn_to_numeric_cast_any)]
        let addr = handler as usize;
        unsafe { signal(SIGINT, addr) != SIG_ERR }
    }

    pub fn sigint_seen() -> bool {
        SIGINT_SEEN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_sigint() -> bool {
        false
    }
    pub fn sigint_seen() -> bool {
        false
    }
}

/// Installs the SIGINT handler; returns false if the platform refused it
/// (callers fall back to being killed, today's behaviour).
pub fn install_sigint() -> bool {
    imp::install_sigint()
}

/// Whether SIGINT has been delivered since [`install_sigint`].
pub fn sigint_seen() -> bool {
    imp::sigint_seen()
}
