//! 802.15.4 unslotted CSMA-CA timing.
//!
//! ZigBee is the paper's extensibility example: its timing grammar (Table 2)
//! is backoff periods of 320 µs, a MAC-ACK turnaround of 192 µs, and
//! LIFS/SIFS interframe spaces. This simulator produces periodic sensor-
//! style reports with those gaps.

use crate::{NodeId, TxContent, TxEvent};
use rfd_dsp::rng::Xoshiro256;
use rfd_phy::zigbee::{ZigbeeFrame, BACKOFF_US, LIFS_US, TACK_US};

/// ZigBee workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct ZigbeeConfig {
    /// Reporting node.
    pub node: NodeId,
    /// Coordinator (ACK sender).
    pub coordinator: NodeId,
    /// Number of reports.
    pub count: usize,
    /// Nominal report interval (µs).
    pub interval_us: f64,
    /// Report payload length (bytes, before FCS).
    pub payload_len: usize,
    /// Whether reports are acknowledged.
    pub acked: bool,
    /// Minimum backoff exponent (macMinBE): backoff is
    /// `rand(0 .. 2^BE - 1) × 320 µs`.
    pub min_be: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ZigbeeConfig {
    fn default() -> Self {
        Self {
            node: 20,
            coordinator: 21,
            count: 50,
            interval_us: 20_000.0,
            payload_len: 30,
            acked: true,
            min_be: 3,
            seed: 3,
        }
    }
}

/// The CSMA simulator.
#[derive(Debug)]
pub struct ZigbeeSim {
    cfg: ZigbeeConfig,
    rng: Xoshiro256,
}

impl ZigbeeSim {
    /// Creates the simulator.
    pub fn new(cfg: ZigbeeConfig) -> Self {
        Self {
            rng: Xoshiro256::new(cfg.seed),
            cfg,
        }
    }

    /// Runs the workload.
    pub fn run(&mut self) -> Vec<TxEvent> {
        let cfg = self.cfg;
        let mut events = Vec::new();
        let mut id = 0u64;
        let mut medium_free_at = 0.0f64;
        for i in 0..cfg.count {
            let arrival = i as f64 * cfg.interval_us;
            let backoffs = self.rng.next_range(1 << cfg.min_be) as f64;
            let start = arrival.max(medium_free_at + LIFS_US) + backoffs * BACKOFF_US;
            let mut payload = vec![0u8; cfg.payload_len];
            payload[0] = (i & 0xFF) as u8;
            payload[1] = (i >> 8) as u8;
            let frame = ZigbeeFrame::new(payload);
            let airtime = frame.airtime_us();
            events.push(TxEvent {
                node: cfg.node,
                start_us: start,
                content: TxContent::Zigbee { frame },
                id: {
                    id += 1;
                    id - 1
                },
                tag: "zb-report",
            });
            let mut end = start + airtime;
            if cfg.acked {
                // Imm-ACK: a 3-byte MPDU after tACK.
                let ack = ZigbeeFrame::new(vec![0x02, 0x00, (i & 0xFF) as u8]);
                let ack_air = ack.airtime_us();
                events.push(TxEvent {
                    node: cfg.coordinator,
                    start_us: end + TACK_US,
                    content: TxContent::Zigbee { frame: ack },
                    id: {
                        id += 1;
                        id - 1
                    },
                    tag: "zb-ack",
                });
                end += TACK_US + ack_air;
            }
            medium_free_at = end;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acks_follow_after_tack() {
        let mut sim = ZigbeeSim::new(ZigbeeConfig {
            count: 10,
            ..Default::default()
        });
        let events = sim.run();
        assert_eq!(events.len(), 20);
        for pair in events.chunks(2) {
            assert_eq!(pair[0].tag, "zb-report");
            assert_eq!(pair[1].tag, "zb-ack");
            let gap = pair[1].start_us - pair[0].end_us();
            assert!((gap - TACK_US).abs() < 1e-9, "gap {gap}");
        }
    }

    #[test]
    fn backoffs_are_multiples_of_320us() {
        let mut sim = ZigbeeSim::new(ZigbeeConfig {
            count: 30,
            interval_us: 50_000.0,
            ..Default::default()
        });
        let events = sim.run();
        for e in events.iter().filter(|e| e.tag == "zb-report") {
            let rel = e.start_us.rem_euclid(ZigbeeConfig::default().interval_us);
            let _ = rel; // start = k*interval + m*320; check m integral:
            let m = (e.start_us - (e.start_us / 50_000.0).floor() * 50_000.0) / BACKOFF_US;
            assert!((m - m.round()).abs() < 1e-6, "backoff {m} not integral");
        }
    }

    #[test]
    fn no_overlaps() {
        let mut sim = ZigbeeSim::new(ZigbeeConfig {
            count: 40,
            interval_us: 100.0,
            ..Default::default()
        });
        let events = sim.run();
        for w in events.windows(2) {
            assert!(w[1].start_us >= w[0].end_us() - 1e-9);
        }
    }

    #[test]
    fn unacked_mode_has_no_acks() {
        let mut sim = ZigbeeSim::new(ZigbeeConfig {
            acked: false,
            count: 5,
            ..Default::default()
        });
        let events = sim.run();
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| e.tag == "zb-report"));
    }
}
