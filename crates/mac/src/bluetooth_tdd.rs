//! Bluetooth TDD slotting and the `l2ping` workload.
//!
//! Bluetooth BR divides time into 625 µs slots (1600/s); the master
//! transmits in even slots, the slave answers in odd slots, and multi-slot
//! packets (DH3/DH5) occupy 3 or 5 consecutive slots. The paper's Bluetooth
//! microbenchmark sends `l2ping` echoes with **varying sizes so the sequence
//! number of each packet can be recovered from its size** (§5.1.1) — the
//! trick we reproduce here so ground truth survives the 8-of-79-channel
//! bottleneck.

use crate::{NodeId, TxContent, TxEvent};
use rfd_phy::bluetooth::hop::{HopSequence, SLOT_US};
use rfd_phy::bluetooth::packet::{BtPacket, BtPacketType};

/// `l2ping` workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct L2PingConfig {
    /// Piconet LAP.
    pub lap: u32,
    /// Piconet UAP.
    pub uap: u8,
    /// Master node id.
    pub master: NodeId,
    /// Slave node id.
    pub slave: NodeId,
    /// Number of echo request/response pairs.
    pub count: usize,
    /// Slots between the end of one exchange and the next request
    /// (idle gap; `l2ping` default pace is ~1/s but the paper floods).
    pub gap_slots: u32,
    /// Packet type used for the echoes.
    pub ptype: BtPacketType,
    /// Smallest payload size; sizes cycle `base + seq % span` so that the
    /// size identifies the sequence number (paper: 225-339 byte DH5s).
    pub size_base: usize,
    /// Size span for the sequence-in-size encoding.
    pub size_span: usize,
    /// Initial master clock (CLK27-1).
    pub start_clock: u32,
}

impl Default for L2PingConfig {
    fn default() -> Self {
        Self {
            lap: 0x9E8B33,
            uap: 0x47,
            master: 10,
            slave: 11,
            count: 100,
            gap_slots: 2,
            ptype: BtPacketType::Dh5,
            size_base: 225,
            size_span: 114, // 225..339 inclusive of both ends minus one
            start_clock: 0,
        }
    }
}

/// The TDD simulator for an `l2ping` exchange.
#[derive(Debug)]
pub struct L2PingSim {
    cfg: L2PingConfig,
    hop: HopSequence,
}

impl L2PingSim {
    /// Creates the simulator.
    pub fn new(cfg: L2PingConfig) -> Self {
        let address = cfg.lap | ((cfg.uap as u32 & 0xF) << 24);
        Self {
            cfg,
            hop: HopSequence::new(address),
        }
    }

    /// Payload size encoding the sequence number (paper §5.1.1).
    pub fn size_for_seq(&self, seq: usize) -> usize {
        self.cfg.size_base + seq % self.cfg.size_span.max(1)
    }

    /// Recovers the sequence-number residue from a payload size.
    pub fn seq_residue_for_size(&self, size: usize) -> Option<usize> {
        size.checked_sub(self.cfg.size_base)
            .filter(|r| *r < self.cfg.size_span.max(1))
    }

    /// Runs the exchange, producing a schedule of master requests and slave
    /// replies with correct slot timing and hop channels.
    pub fn run(&mut self) -> Vec<TxEvent> {
        let cfg = self.cfg;
        let slots_per_pkt = cfg.ptype.slots() as u32;
        let mut events = Vec::with_capacity(cfg.count * 2);
        // Clock advances 2 per slot.
        let mut slot = (cfg.start_clock >> 1) & !1; // even (master) slot
        let mut id = 0u64;
        for seq in 0..cfg.count {
            let size = self.size_for_seq(seq);
            // Master -> slave request in an even slot.
            let clk = slot * 2;
            let ch = self.hop.channel(clk);
            let payload: Vec<u8> = (0..size).map(|i| ((i + seq) % 251) as u8).collect();
            let pkt = BtPacket::new(cfg.lap, cfg.uap, 1, cfg.ptype, clk, payload);
            events.push(TxEvent {
                node: cfg.master,
                start_us: slot as f64 * SLOT_US,
                content: TxContent::Bluetooth {
                    packet: pkt,
                    channel: ch,
                },
                id: {
                    id += 1;
                    id - 1
                },
                tag: "l2ping-req",
            });
            // Slave replies in the next slave (odd) slot after the request
            // ends: request occupies `slots_per_pkt` slots.
            let mut reply_slot = slot + slots_per_pkt;
            if reply_slot.is_multiple_of(2) {
                reply_slot += 1;
            }
            let rclk = reply_slot * 2;
            let rch = self.hop.channel(rclk);
            let rpayload: Vec<u8> = (0..size).map(|i| ((i + seq) % 251) as u8).collect();
            let rpkt = BtPacket::new(cfg.lap, cfg.uap, 1, cfg.ptype, rclk, rpayload);
            events.push(TxEvent {
                node: cfg.slave,
                start_us: reply_slot as f64 * SLOT_US,
                content: TxContent::Bluetooth {
                    packet: rpkt,
                    channel: rch,
                },
                id: {
                    id += 1;
                    id - 1
                },
                tag: "l2ping-rep",
            });
            // Next request: after the reply and the configured gap, on an
            // even slot.
            let mut next = reply_slot + slots_per_pkt + cfg.gap_slots;
            if next % 2 == 1 {
                next += 1;
            }
            slot = next;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_even_slave_odd_slots() {
        let mut sim = L2PingSim::new(L2PingConfig {
            count: 10,
            ..Default::default()
        });
        let events = sim.run();
        assert_eq!(events.len(), 20);
        for e in &events {
            let slot = (e.start_us / SLOT_US).round() as u64;
            assert!(
                (e.start_us - slot as f64 * SLOT_US).abs() < 1e-9,
                "slot aligned"
            );
            match e.tag {
                "l2ping-req" => assert_eq!(slot % 2, 0, "master in even slot"),
                "l2ping-rep" => assert_eq!(slot % 2, 1, "slave in odd slot"),
                _ => panic!("unexpected tag"),
            }
        }
    }

    #[test]
    fn starts_are_multiples_of_625us_apart() {
        // The paper's Bluetooth timing detector: packets start at
        // t_prev + m * 625 us.
        let mut sim = L2PingSim::new(L2PingConfig {
            count: 20,
            ..Default::default()
        });
        let events = sim.run();
        for w in events.windows(2) {
            let gap = w[1].start_us - w[0].start_us;
            let m = gap / SLOT_US;
            assert!((m - m.round()).abs() < 1e-9, "gap {gap} not slot-aligned");
            assert!(m.round() >= 1.0);
        }
    }

    #[test]
    fn dh5_occupies_five_slots_without_overlap() {
        let mut sim = L2PingSim::new(L2PingConfig {
            count: 5,
            ..Default::default()
        });
        let events = sim.run();
        for w in events.windows(2) {
            assert!(
                w[1].start_us >= w[0].end_us(),
                "TDD packets must not overlap"
            );
            // DH5 airtime fits within 5 slots.
            assert!(w[0].content.airtime_us() <= 5.0 * SLOT_US);
        }
    }

    #[test]
    fn sizes_encode_sequence_numbers() {
        let sim = L2PingSim::new(L2PingConfig::default());
        for seq in 0..300 {
            let size = sim.size_for_seq(seq);
            assert!((225..=338).contains(&size));
            assert_eq!(sim.seq_residue_for_size(size), Some(seq % 114));
        }
        assert_eq!(sim.seq_residue_for_size(10), None);
        assert_eq!(sim.seq_residue_for_size(400), None);
    }

    #[test]
    fn hops_vary_across_packets() {
        let mut sim = L2PingSim::new(L2PingConfig {
            count: 50,
            ..Default::default()
        });
        let events = sim.run();
        let mut channels: Vec<u8> = events
            .iter()
            .map(|e| match &e.content {
                TxContent::Bluetooth { channel, .. } => *channel,
                _ => unreachable!(),
            })
            .collect();
        channels.sort_unstable();
        channels.dedup();
        assert!(
            channels.len() > 20,
            "only {} distinct channels",
            channels.len()
        );
    }

    #[test]
    fn clock_matches_slot() {
        // Whitening is seeded by the clock; the packet must carry the clock
        // of its transmit slot.
        let mut sim = L2PingSim::new(L2PingConfig {
            count: 3,
            ..Default::default()
        });
        let events = sim.run();
        for e in &events {
            let slot = (e.start_us / SLOT_US).round() as u32;
            match &e.content {
                TxContent::Bluetooth { packet, .. } => assert_eq!(packet.clock, slot * 2),
                _ => unreachable!(),
            }
        }
    }
}
