//! # rfd-mac — link-layer timing simulation
//!
//! The RFDump paper evaluates against live traffic: `ping` unicast flows
//! (data + SIFS-spaced MAC ACKs), broadcast floods (DIFS + k·slot spacing),
//! `l2ping` Bluetooth exchanges in 625 µs TDD slots, and background sources
//! like beacons and microwave ovens. This crate reproduces those workloads
//! as *timed transmission schedules*: each simulator emits [`TxEvent`]s
//! (who transmits what, when) which `rfd-ether` then renders into a single
//! mixed sample stream with ground truth attached.
//!
//! The timing grammars implemented here are exactly the features RFDump's
//! protocol-specific timing detectors look for (paper §3.2 and Table 2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bluetooth_tdd;
pub mod wifi_dcf;
pub mod zigbee_csma;

pub use bluetooth_tdd::{L2PingConfig, L2PingSim};
pub use wifi_dcf::{DcfConfig, WifiDcfSim};
pub use zigbee_csma::{ZigbeeConfig, ZigbeeSim};

use rfd_phy::bluetooth::packet::BtPacket;
use rfd_phy::microwave::MicrowaveConfig;
use rfd_phy::wifi::plcp::WifiRate;
use rfd_phy::zigbee::ZigbeeFrame;
use rfd_phy::Protocol;

/// Identifies a transmitting node in a scenario.
pub type NodeId = u16;

/// What a node transmits.
#[derive(Debug, Clone)]
pub enum TxContent {
    /// An 802.11b PPDU.
    Wifi {
        /// PSDU bytes (MAC frame incl. FCS).
        psdu: Vec<u8>,
        /// PSDU rate.
        rate: WifiRate,
    },
    /// A Bluetooth baseband packet on an RF channel.
    Bluetooth {
        /// The packet.
        packet: BtPacket,
        /// RF channel 0-78 chosen by the hop sequence.
        channel: u8,
    },
    /// An 802.15.4 frame.
    Zigbee {
        /// The frame.
        frame: ZigbeeFrame,
    },
    /// A microwave-oven emission burst window.
    Microwave {
        /// Emission parameters.
        config: MicrowaveConfig,
        /// How long the oven runs, in microseconds (it bursts at the AC
        /// rate within this window).
        duration_us: f64,
    },
}

impl TxContent {
    /// The protocol tag of this content.
    pub fn protocol(&self) -> Protocol {
        match self {
            TxContent::Wifi { .. } => Protocol::Wifi,
            TxContent::Bluetooth { .. } => Protocol::Bluetooth,
            TxContent::Zigbee { .. } => Protocol::Zigbee,
            TxContent::Microwave { .. } => Protocol::Microwave,
        }
    }

    /// Airtime of this transmission in microseconds.
    pub fn airtime_us(&self) -> f64 {
        match self {
            TxContent::Wifi { psdu, rate } => rfd_phy::wifi::frame_airtime_us(psdu.len(), *rate),
            TxContent::Bluetooth { packet, .. } => packet.airtime_us(),
            TxContent::Zigbee { frame } => frame.airtime_us(),
            TxContent::Microwave { duration_us, .. } => *duration_us,
        }
    }
}

/// One scheduled transmission.
#[derive(Debug, Clone)]
pub struct TxEvent {
    /// Transmitting node.
    pub node: NodeId,
    /// Start time in microseconds from scenario start.
    pub start_us: f64,
    /// What is transmitted.
    pub content: TxContent,
    /// Scenario-unique packet id (for ground-truth matching).
    pub id: u64,
    /// Free-form tag (e.g. "echo-req", "ack", "beacon").
    pub tag: &'static str,
}

impl TxEvent {
    /// End time in microseconds.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.content.airtime_us()
    }
}

/// Merges event lists from several simulators into one time-sorted schedule,
/// reassigning unique ids.
pub fn merge_schedules(mut lists: Vec<Vec<TxEvent>>) -> Vec<TxEvent> {
    let mut all: Vec<TxEvent> = lists.drain(..).flatten().collect();
    all.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    for (i, ev) in all.iter_mut().enumerate() {
        ev.id = i as u64;
    }
    all
}

/// Medium utilization of a schedule over `[0, horizon_us]`: the fraction of
/// time at least one transmission is on the air.
pub fn medium_utilization(events: &[TxEvent], horizon_us: f64) -> f64 {
    // Sweep over sorted intervals (events are few; O(n log n)).
    let mut iv: Vec<(f64, f64)> = events
        .iter()
        .map(|e| (e.start_us.max(0.0), e.end_us().min(horizon_us)))
        .filter(|(s, e)| e > s)
        .collect();
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut busy = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for (s, e) in iv {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    busy += ce - cs;
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        busy += ce - cs;
    }
    (busy / horizon_us).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfd_phy::wifi::frame::{icmp_echo_body, MacAddr, MacFrame};

    fn wifi_event(start_us: f64, len: usize) -> TxEvent {
        let psdu = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            0,
            icmp_echo_body(0, len),
        )
        .to_bytes();
        TxEvent {
            node: 1,
            start_us,
            content: TxContent::Wifi {
                psdu,
                rate: WifiRate::R1,
            },
            id: 0,
            tag: "test",
        }
    }

    #[test]
    fn merge_sorts_and_renumbers() {
        let a = vec![wifi_event(100.0, 10), wifi_event(5000.0, 10)];
        let b = vec![wifi_event(2000.0, 10)];
        let merged = merge_schedules(vec![a, b]);
        assert_eq!(merged.len(), 3);
        assert!(merged.windows(2).all(|w| w[0].start_us <= w[1].start_us));
        assert_eq!(
            merged.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn utilization_of_disjoint_events() {
        // Each event: 192 us PLCP + 8*(24+10+4) bits... just use airtime.
        let e = wifi_event(0.0, 100);
        let airtime = e.content.airtime_us();
        let events = vec![wifi_event(0.0, 100), wifi_event(2.0 * airtime, 100)];
        let horizon = 4.0 * airtime;
        let u = medium_utilization(&events, horizon);
        assert!((u - 0.5).abs() < 0.01, "utilization {u}");
    }

    #[test]
    fn utilization_counts_overlap_once() {
        let e = wifi_event(0.0, 100);
        let airtime = e.content.airtime_us();
        let events = vec![wifi_event(0.0, 100), wifi_event(0.0, 100)];
        let u = medium_utilization(&events, 2.0 * airtime);
        assert!((u - 0.5).abs() < 0.01, "utilization {u}");
    }

    #[test]
    fn airtime_matches_phy() {
        let e = wifi_event(0.0, 500);
        // 24 hdr + 500 body + 4 FCS = 528-byte PSDU at 1 Mbps + 192 us PLCP.
        assert!((e.content.airtime_us() - (192.0 + 528.0 * 8.0)).abs() < 1e-6);
    }
}
