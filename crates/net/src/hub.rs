//! Record fan-out: one decoded record stream, N live subscribers.
//!
//! Every subscriber gets its own *bounded* queue, drained by that
//! subscriber's connection thread. Publishing never blocks on a subscriber:
//! a queue that is full when a record arrives means the subscriber cannot
//! keep up with the ether, and the hub **evicts** it (drops the queue, which
//! the connection thread observes as a disconnect) rather than letting one
//! slow reader stall the stream for everyone — the same policy a production
//! pub/sub fan-out applies to lagging consumers.

use crate::frame::RecordMsg;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// What flows to subscribers, in publish order.
///
/// The single-stream server publishes the untagged variants; a fleet server
/// publishes the `Source*` variants so each message carries the source it
/// belongs to and subscribers can filter per source. The untagged `Bye`
/// stays a *global* end-of-stream marker in both modes — it passes every
/// filter, so even a filtered subscriber observes server shutdown.
#[derive(Debug, Clone, PartialEq)]
pub enum HubMsg {
    /// Stream metadata for the session now starting.
    Meta(crate::frame::StreamMeta),
    /// One decoded record.
    Record(RecordMsg),
    /// End-of-session statistics document.
    Stats(String),
    /// The server is shutting the stream down; no further messages follow.
    Bye,
    /// A fleet source joined the merged stream.
    SourceMeta {
        /// The stable source id.
        source: Arc<str>,
        /// That source's stream metadata.
        meta: crate::frame::StreamMeta,
    },
    /// One decoded record, tagged with the fleet source it came from.
    SourceRecord {
        /// The stable source id.
        source: Arc<str>,
        /// The record itself.
        record: RecordMsg,
    },
    /// One fleet source's stream ended; the merged stream continues.
    SourceBye {
        /// The stable source id.
        source: Arc<str>,
    },
}

impl HubMsg {
    /// The source this message is tagged with, if any.
    pub fn source(&self) -> Option<&str> {
        match self {
            HubMsg::SourceMeta { source, .. }
            | HubMsg::SourceRecord { source, .. }
            | HubMsg::SourceBye { source } => Some(source),
            _ => None,
        }
    }

    /// Whether a subscription filtered to `filter` should receive this
    /// message. `None` (unfiltered) receives everything; a source filter
    /// receives that source's messages plus the global `Bye`.
    fn passes(&self, filter: Option<&str>) -> bool {
        match filter {
            None => true,
            Some(want) => matches!(self, HubMsg::Bye) || self.source() == Some(want),
        }
    }
}

struct SubEntry {
    tx: SyncSender<HubMsg>,
    /// `Some(id)` restricts delivery to one source (plus the global Bye).
    filter: Option<Arc<str>>,
}

struct HubInner {
    subs: HashMap<u64, SubEntry>,
    next_id: u64,
    /// Bounded replay history of stream messages (Meta/Record/Stats; never
    /// Bye), so a reconnecting subscriber can resume without duplicates or
    /// gaps. `base` is the absolute stream position of `history[0]`.
    history: VecDeque<HubMsg>,
    base: u64,
}

/// The fan-out hub.
pub struct RecordHub {
    inner: Mutex<HubInner>,
    cap: usize,
    history_cap: usize,
    evicted: AtomicU64,
    published: AtomicU64,
}

/// One subscription: an id (for unsubscribe) plus the receiving end of the
/// subscriber's bounded queue.
pub struct Subscription {
    /// Hub-assigned subscriber id.
    pub id: u64,
    /// The subscriber's private queue.
    pub rx: Receiver<HubMsg>,
}

impl RecordHub {
    /// A hub whose subscriber queues hold at most `cap` messages, keeping a
    /// default-sized replay history (see [`RecordHub::with_history_cap`]).
    pub fn new(cap: usize) -> Self {
        Self::with_history_cap(cap, 65_536)
    }

    /// A hub with an explicit bound on the replay history (stream messages
    /// kept for reconnecting subscribers; oldest dropped past the cap).
    pub fn with_history_cap(cap: usize, history_cap: usize) -> Self {
        Self {
            inner: Mutex::new(HubInner {
                subs: HashMap::new(),
                next_id: 0,
                history: VecDeque::new(),
                base: 0,
            }),
            cap: cap.max(1),
            history_cap,
            evicted: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Registers a new subscriber receiving live messages only.
    pub fn subscribe(&self) -> Subscription {
        self.subscribe_from(None).0
    }

    /// Registers a subscriber that receives only messages tagged with
    /// `source` (plus the global `Bye`), live messages only.
    pub fn subscribe_filtered(&self, source: &str) -> Subscription {
        self.subscribe_from_filtered(None, Some(source)).0
    }

    /// Registers a subscriber resuming from absolute stream position `pos`
    /// (the count of Meta/Record/Stats messages it has already seen), or
    /// live-only when `pos` is `None`.
    ///
    /// Returns the subscription, the replay backlog (`history[pos..]`), the
    /// absolute position of the first message the subscription will deliver
    /// (replay included), and how many messages were lost because the
    /// history had already dropped them. Registration and the replay
    /// snapshot happen under one lock, so the backlog plus the live queue
    /// is exactly the stream from that position with no gap and no
    /// duplicate.
    pub fn subscribe_from(&self, pos: Option<u64>) -> (Subscription, Vec<HubMsg>, u64, u64) {
        self.subscribe_from_filtered(pos, None)
    }

    /// [`subscribe_from`] with an optional source filter. Positions stay
    /// *global* (the filter does not renumber the stream): the replay is
    /// the matching subset of `history[pos..]`, and `start`/`lost` count
    /// stream messages of every source, so a resume cursor learned from an
    /// unfiltered subscription remains valid here.
    ///
    /// [`subscribe_from`]: RecordHub::subscribe_from
    pub fn subscribe_from_filtered(
        &self,
        pos: Option<u64>,
        filter: Option<&str>,
    ) -> (Subscription, Vec<HubMsg>, u64, u64) {
        let (tx, rx) = sync_channel(self.cap);
        let filter: Option<Arc<str>> = filter.map(Arc::from);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let end = inner.base + inner.history.len() as u64;
        let want = pos.unwrap_or(end).min(end);
        let lost = inner.base.saturating_sub(want);
        let start = want.max(inner.base);
        let replay: Vec<HubMsg> = inner
            .history
            .iter()
            .skip((start - inner.base) as usize)
            .filter(|m| m.passes(filter.as_deref()))
            .cloned()
            .collect();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.subs.insert(id, SubEntry { tx, filter });
        (Subscription { id, rx }, replay, start, lost)
    }

    /// The absolute position the next stream message will occupy.
    pub fn stream_pos(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.base + inner.history.len() as u64
    }

    /// Removes a subscriber (normal disconnect; not counted as eviction).
    pub fn unsubscribe(&self, id: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .subs
            .remove(&id);
    }

    /// Broadcasts `msg` to every live subscriber. A subscriber whose queue
    /// is full is evicted on the spot. Returns how many subscribers
    /// received the message.
    pub fn publish(&self, msg: HubMsg) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Stream messages enter the replay history; `Bye` is a connection
        // lifecycle event, not stream content, and is never replayed.
        if !matches!(msg, HubMsg::Bye) && self.history_cap > 0 {
            inner.history.push_back(msg.clone());
            while inner.history.len() > self.history_cap {
                inner.history.pop_front();
                inner.base += 1;
            }
        }
        let mut slow: Vec<u64> = Vec::new();
        let mut delivered = 0usize;
        for (&id, entry) in inner.subs.iter() {
            if !msg.passes(entry.filter.as_deref()) {
                continue;
            }
            match entry.tx.try_send(msg.clone()) {
                Ok(()) => delivered += 1,
                Err(TrySendError::Full(_)) => slow.push(id),
                // Receiver already gone: connection thread exited; prune.
                Err(TrySendError::Disconnected(_)) => slow.push(id),
            }
        }
        for id in slow {
            inner.subs.remove(&id);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        delivered
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .subs
            .len()
    }

    /// Subscribers evicted (or found disconnected) during publishes.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Messages published so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Per-subscriber queue capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(line: &str) -> HubMsg {
        HubMsg::Record(RecordMsg {
            start_us: 0.0,
            end_us: 1.0,
            line: line.into(),
        })
    }

    #[test]
    fn fan_out_preserves_order_per_subscriber() {
        let hub = RecordHub::new(16);
        let a = hub.subscribe();
        let b = hub.subscribe();
        for i in 0..5 {
            assert_eq!(hub.publish(rec(&format!("r{i}"))), 2);
        }
        hub.publish(HubMsg::Bye);
        for sub in [a, b] {
            let got: Vec<HubMsg> = sub.rx.try_iter().collect();
            assert_eq!(got.len(), 6);
            for (i, m) in got.iter().take(5).enumerate() {
                assert_eq!(m, &rec(&format!("r{i}")));
            }
            assert_eq!(got[5], HubMsg::Bye);
        }
    }

    #[test]
    fn slow_subscriber_is_evicted_not_waited_on() {
        let hub = RecordHub::new(2);
        let slow = hub.subscribe();
        let fast = hub.subscribe();
        // Fill the slow subscriber's queue without draining it.
        hub.publish(rec("a"));
        hub.publish(rec("b"));
        // Drain only the fast one.
        assert_eq!(fast.rx.try_iter().count(), 2);
        // Third publish finds `slow` full → evicted; `fast` still receives.
        assert_eq!(hub.publish(rec("c")), 1);
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(hub.evicted(), 1);
        // The evicted subscriber still sees its backlog, then disconnect.
        assert_eq!(slow.rx.try_iter().count(), 2);
        assert!(slow.rx.recv().is_err(), "sender must be dropped");
    }

    #[test]
    fn subscribe_from_replays_exactly_the_missed_suffix() {
        let hub = RecordHub::new(16);
        for i in 0..5 {
            hub.publish(rec(&format!("r{i}")));
        }
        assert_eq!(hub.stream_pos(), 5);
        // A subscriber that saw 2 messages before disconnecting resumes at 2.
        let (sub, replay, start, lost) = hub.subscribe_from(Some(2));
        assert_eq!(start, 2);
        assert_eq!(lost, 0);
        assert_eq!(
            replay,
            vec![rec("r2"), rec("r3"), rec("r4")],
            "replay must be history[2..]"
        );
        // Live messages continue in the queue with no duplicate of the replay.
        hub.publish(rec("r5"));
        let live: Vec<HubMsg> = sub.rx.try_iter().collect();
        assert_eq!(live, vec![rec("r5")]);
    }

    #[test]
    fn subscribe_from_reports_loss_when_history_trimmed() {
        let hub = RecordHub::with_history_cap(16, 3);
        for i in 0..10 {
            hub.publish(rec(&format!("r{i}")));
        }
        // History holds only [r7, r8, r9]; resuming from 5 loses 2 messages.
        let (_sub, replay, start, lost) = hub.subscribe_from(Some(5));
        assert_eq!(start, 7);
        assert_eq!(lost, 2);
        assert_eq!(replay, vec![rec("r7"), rec("r8"), rec("r9")]);
        // A position past the end clamps to live-only.
        let (_sub2, replay2, _start2, lost2) = hub.subscribe_from(Some(999));
        assert_eq!(lost2, 0);
        assert!(replay2.is_empty());
    }

    #[test]
    fn bye_is_never_replayed() {
        let hub = RecordHub::new(8);
        hub.publish(rec("a"));
        hub.publish(HubMsg::Bye);
        let (_sub, replay, _start, _lost) = hub.subscribe_from(Some(0));
        assert_eq!(replay, vec![rec("a")]);
    }

    fn srec(source: &str, line: &str) -> HubMsg {
        HubMsg::SourceRecord {
            source: source.into(),
            record: RecordMsg {
                start_us: 0.0,
                end_us: 1.0,
                line: line.into(),
            },
        }
    }

    #[test]
    fn filtered_subscription_sees_only_its_source_plus_global_bye() {
        let hub = RecordHub::new(16);
        let all = hub.subscribe();
        let only_a = hub.subscribe_filtered("a");
        hub.publish(srec("a", "a0"));
        hub.publish(srec("b", "b0"));
        hub.publish(srec("a", "a1"));
        hub.publish(HubMsg::SourceBye { source: "a".into() });
        hub.publish(srec("b", "b1"));
        hub.publish(HubMsg::Bye);
        let got: Vec<HubMsg> = only_a.rx.try_iter().collect();
        assert_eq!(
            got,
            vec![
                srec("a", "a0"),
                srec("a", "a1"),
                HubMsg::SourceBye { source: "a".into() },
                HubMsg::Bye,
            ],
        );
        // The unfiltered subscriber saw everything.
        assert_eq!(all.rx.try_iter().count(), 6);
    }

    #[test]
    fn filtered_replay_keeps_global_positions() {
        let hub = RecordHub::new(16);
        hub.publish(srec("a", "a0")); // pos 0
        hub.publish(srec("b", "b0")); // pos 1
        hub.publish(srec("a", "a1")); // pos 2
        hub.publish(srec("b", "b1")); // pos 3
        let (sub, replay, start, lost) = hub.subscribe_from_filtered(Some(1), Some("a"));
        // Positions are global: the cursor starts at 1 even though only one
        // of history[1..] matches the filter.
        assert_eq!(start, 1);
        assert_eq!(lost, 0);
        assert_eq!(replay, vec![srec("a", "a1")]);
        hub.publish(srec("b", "b2"));
        hub.publish(srec("a", "a2"));
        let live: Vec<HubMsg> = sub.rx.try_iter().collect();
        assert_eq!(live, vec![srec("a", "a2")]);
    }

    #[test]
    fn filtered_subscriber_not_evicted_by_other_sources_flood() {
        // A filtered subscriber with a tiny queue survives a flood of
        // non-matching traffic: filtering happens before the queue.
        let hub = RecordHub::new(2);
        let only_a = hub.subscribe_filtered("a");
        for i in 0..50 {
            hub.publish(srec("b", &format!("b{i}")));
        }
        assert_eq!(hub.evicted(), 0);
        assert_eq!(hub.subscriber_count(), 1);
        hub.publish(srec("a", "a0"));
        let got: Vec<HubMsg> = only_a.rx.try_iter().collect();
        assert_eq!(got, vec![srec("a", "a0")]);
    }

    #[test]
    fn unsubscribe_is_not_an_eviction() {
        let hub = RecordHub::new(4);
        let s = hub.subscribe();
        hub.unsubscribe(s.id);
        hub.publish(rec("x"));
        assert_eq!(hub.evicted(), 0);
        assert_eq!(hub.subscriber_count(), 0);
    }
}
