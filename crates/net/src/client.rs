//! Client helpers: [`TraceSender`] (a producer that replays a `.rfdt` trace
//! or an in-memory sample buffer over TCP) and [`RecordSubscriber`] (a
//! consumer of the live record stream).
//!
//! Both speak the [`crate::frame`] protocol and are what the CLI's
//! `rfdump send` and `rfdump watch` modes wrap.

use crate::frame::{
    encode_frame, Frame, FrameDecoder, RecordMsg, Role, SeqFrame, StreamMeta, DEFAULT_CHUNK_SAMPLES,
};
use rfd_dsp::Complex32;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

/// How fast a trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendRate {
    /// As fast as the link and the server's backpressure allow.
    #[default]
    Max,
    /// Paced so wall time tracks signal time (samples / sample_rate), the
    /// way a live radio front-end would deliver them.
    RealTime,
}

impl SendRate {
    /// Parses the CLI spelling (`max` / `real-time`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "max" => Some(SendRate::Max),
            "real-time" | "realtime" => Some(SendRate::RealTime),
            _ => None,
        }
    }
}

/// What a completed send did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SendReport {
    /// Samples sent.
    pub samples: u64,
    /// SampleChunk frames sent.
    pub chunks: u64,
    /// Bytes written to the socket.
    pub bytes: u64,
    /// Throttle advisories received from the server while sending.
    pub throttles: u64,
    /// Wall time spent sending.
    pub wall: Duration,
}

/// A producer connection that streams samples to an `rfdump serve`
/// instance.
pub struct TraceSender {
    stream: TcpStream,
    dec: FrameDecoder,
    out_seq: u32,
    sent_meta: bool,
}

impl TraceSender {
    /// Connects and declares the producer role.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut tx = Self {
            stream,
            dec: FrameDecoder::new(),
            out_seq: 0,
            sent_meta: false,
        };
        tx.write_frame(&Frame::Hello(Role::Producer))?;
        Ok(tx)
    }

    fn write_frame(&mut self, frame: &Frame) -> io::Result<u64> {
        let bytes = encode_frame(frame, self.out_seq);
        self.out_seq = self.out_seq.wrapping_add(1);
        self.stream.write_all(&bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Drains any server→producer frames waiting on the socket without
    /// blocking; returns how many were Throttle advisories.
    fn poll_throttles(&mut self) -> io::Result<u64> {
        self.stream.set_nonblocking(true)?;
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break, // server closed its end
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.stream.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.stream.set_nonblocking(false)?;
        let mut throttles = 0u64;
        while let Some(SeqFrame { frame, .. }) = self.dec.next_frame().map_err(io::Error::from)? {
            if let Frame::Throttle { .. } = frame {
                throttles += 1;
            }
        }
        Ok(throttles)
    }

    /// Streams pre-quantized i16 IQ chunks. The caller supplies an iterator
    /// of chunks; pacing is applied per chunk.
    pub fn send_quantized<I>(
        &mut self,
        meta: StreamMeta,
        chunks: I,
        rate: SendRate,
    ) -> io::Result<SendReport>
    where
        I: IntoIterator<Item = Vec<(i16, i16)>>,
    {
        meta.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut report = SendReport::default();
        let t0 = Instant::now();
        if !self.sent_meta {
            report.bytes += self.write_frame(&Frame::StreamMeta(meta))?;
            self.sent_meta = true;
        }
        let mut start_sample = 0u64;
        for iq in chunks {
            if iq.is_empty() {
                continue;
            }
            if rate == SendRate::RealTime {
                // Wall-clock position this chunk's first sample corresponds
                // to; sleep off any lead.
                let due = Duration::from_secs_f64(start_sample as f64 / meta.sample_rate);
                let elapsed = t0.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            report.throttles += self.poll_throttles()?;
            let n = iq.len() as u64;
            report.bytes += self.write_frame(&Frame::SampleChunk { start_sample, iq })?;
            start_sample += n;
            report.samples += n;
            report.chunks += 1;
        }
        self.stream.flush()?;
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Streams an in-memory sample buffer, quantizing to the wire's i16 IQ
    /// representation with `meta.scale` (the inverse of the server's
    /// reconstruction).
    pub fn send_samples(
        &mut self,
        meta: StreamMeta,
        samples: &[Complex32],
        rate: SendRate,
        chunk_samples: usize,
    ) -> io::Result<SendReport> {
        let chunk = chunk_samples.max(1);
        let inv = if meta.scale != 0.0 {
            1.0 / meta.scale
        } else {
            1.0
        };
        let quant = move |v: f32| -> i16 {
            let x = (v * inv).round();
            x.clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16
        };
        let chunks = samples.chunks(chunk).map(move |c| {
            c.iter()
                .map(|s| (quant(s.re), quant(s.im)))
                .collect::<Vec<(i16, i16)>>()
        });
        // `chunks` borrows `samples`; collect is avoided by sending inline.
        self.send_quantized(meta, chunks, rate)
    }

    /// Replays a `.rfdt` trace file without loading it whole: chunked reads
    /// of the raw i16 IQ payload go straight onto the wire, so the server
    /// reconstructs bit-identical samples to an offline `decode_trace`.
    pub fn send_trace_file(
        &mut self,
        path: &Path,
        rate: SendRate,
        chunk_samples: usize,
    ) -> io::Result<SendReport> {
        let mut reader = rfd_ether::trace::ChunkedTraceReader::open(path)?;
        let h = reader.header();
        let meta = StreamMeta {
            sample_rate: h.sample_rate,
            center_hz: h.center_hz,
            scale: h.scale,
        };
        let chunk = chunk_samples.clamp(1, DEFAULT_CHUNK_SAMPLES * 16);
        meta.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut report = SendReport::default();
        let t0 = Instant::now();
        if !self.sent_meta {
            report.bytes += self.write_frame(&Frame::StreamMeta(meta))?;
            self.sent_meta = true;
        }
        let mut start_sample = 0u64;
        while let Some(iq) = reader.next_chunk(chunk)? {
            if rate == SendRate::RealTime {
                let due = Duration::from_secs_f64(start_sample as f64 / meta.sample_rate);
                let elapsed = t0.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            report.throttles += self.poll_throttles()?;
            let n = iq.len() as u64;
            report.bytes += self.write_frame(&Frame::SampleChunk { start_sample, iq })?;
            start_sample += n;
            report.samples += n;
            report.chunks += 1;
        }
        self.stream.flush()?;
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Ends the session cleanly (Bye) and closes the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.write_frame(&Frame::Bye)?;
        self.stream.flush()?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        // Drain the reverse path until the server closes its end. Closing
        // with unread Throttle bytes in our receive buffer would turn this
        // into a TCP RST, destroying in-flight sample data the server has
        // not yet read.
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// One event from the server's record stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// Stream metadata for a session now starting.
    Meta(StreamMeta),
    /// One decoded record.
    Record(RecordMsg),
    /// End-of-session statistics document (JSON).
    Stats(String),
    /// Idle keep-alive.
    Heartbeat,
    /// The server is done; no further events follow.
    Bye,
}

/// A subscriber connection that receives the live record stream from an
/// `rfdump serve` instance.
pub struct RecordSubscriber {
    stream: TcpStream,
    dec: FrameDecoder,
}

impl RecordSubscriber {
    /// Connects and declares the subscriber role. Blocks until the server
    /// acknowledges the subscription (an immediate Heartbeat), so every
    /// record published after `connect` returns is guaranteed to reach
    /// this subscriber.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&encode_frame(&Frame::Hello(Role::Subscriber), 0))?;
        let mut sub = Self {
            stream,
            dec: FrameDecoder::new(),
        };
        match sub.next_event()? {
            SubEvent::Heartbeat => Ok(sub),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected subscription ack, got {other:?}"),
            )),
        }
    }

    /// Blocks for the next event. `ErrorKind::UnexpectedEof` means the
    /// server went away without a Bye.
    pub fn next_event(&mut self) -> io::Result<SubEvent> {
        loop {
            if let Some(SeqFrame { frame, .. }) = self.dec.next_frame().map_err(io::Error::from)? {
                return Ok(match frame {
                    Frame::StreamMeta(m) => SubEvent::Meta(m),
                    Frame::Record(r) => SubEvent::Record(r),
                    Frame::Stats(s) => SubEvent::Stats(s),
                    Frame::Heartbeat => SubEvent::Heartbeat,
                    Frame::Bye => SubEvent::Bye,
                    other => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unexpected frame on subscriber stream: {other:?}"),
                        ))
                    }
                });
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the stream without a Bye",
                    ))
                }
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
