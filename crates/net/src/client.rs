//! Client helpers: [`TraceSender`] (a producer that replays a `.rfdt` trace
//! or an in-memory sample buffer over TCP) and [`RecordSubscriber`] (a
//! consumer of the live record stream).
//!
//! Both speak the [`crate::frame`] protocol and are what the CLI's
//! `rfdump send` and `rfdump watch` modes wrap. Their resilient variants —
//! [`ResilientSender`] and [`ResilientSubscriber`] — add reconnect with
//! capped exponential backoff and deterministic jitter, resuming from the
//! last server-acknowledged position so a mid-stream disconnect yields no
//! duplicated and no lost data.

use crate::frame::{
    encode_frame, Frame, FrameDecoder, RecordMsg, Role, SeqFrame, StreamMeta, DEFAULT_CHUNK_SAMPLES,
};
use rfd_dsp::Complex32;
use rfd_fault::{Action, FaultPlan, SplitMix64};
use rfd_telemetry::{event::EventKind, Registry};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timeout for establishing a TCP connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
/// Write timeout on client sockets (a server stuck this long is hung).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);
/// Read timeout on the subscriber socket (the server heartbeats every
/// second, so silence this long means the connection is dead).
const SUB_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a producer waits for the server's session Ack.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);

/// Connects with [`CONNECT_TIMEOUT`] per resolved address.
fn connect_with_timeout<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
    let mut last: Option<io::Error> = None;
    for a in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&a, CONNECT_TIMEOUT) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

/// Reconnect pacing: capped exponential backoff with deterministic jitter.
///
/// The jitter is seeded, not wall-clock derived, so a test or chaos run
/// replays the exact same retry schedule every time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts before giving up (0 disables retries).
    pub max_retries: u32,
    /// First backoff delay; doubles each failed attempt.
    pub base: Duration,
    /// Upper bound on the backoff delay.
    pub cap: Duration,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed: 0x5246_4431, // "RFD1"
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based): jitter in
    /// [0.5, 1.0]× of min(cap, base·2^attempt).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let raw = doubled.min(self.cap);
        let mut rng =
            SplitMix64::new(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        raw.mul_f64(0.5 + 0.5 * rng.next_f64())
    }
}

/// How fast a trace is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendRate {
    /// As fast as the link and the server's backpressure allow.
    #[default]
    Max,
    /// Paced so wall time tracks signal time (samples / sample_rate), the
    /// way a live radio front-end would deliver them.
    RealTime,
}

impl SendRate {
    /// Parses the CLI spelling (`max` / `real-time`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "max" => Some(SendRate::Max),
            "real-time" | "realtime" => Some(SendRate::RealTime),
            _ => None,
        }
    }
}

/// What a completed send did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SendReport {
    /// Samples sent.
    pub samples: u64,
    /// SampleChunk frames sent.
    pub chunks: u64,
    /// Bytes written to the socket.
    pub bytes: u64,
    /// Throttle advisories received from the server while sending.
    pub throttles: u64,
    /// Reconnects performed (resilient sends only).
    pub reconnects: u64,
    /// Wall time spent sending.
    pub wall: Duration,
}

/// A producer connection that streams samples to an `rfdump serve`
/// instance.
pub struct TraceSender {
    stream: TcpStream,
    dec: FrameDecoder,
    out_seq: u32,
    sent_meta: bool,
    /// Server-assigned session id (0 until the first Ack arrives).
    session: u64,
    /// Highest server-acknowledged contiguous sample position.
    acked: u64,
    /// Fleet source id: the stream opens with a `SourceHello` carrying this
    /// instead of a bare `StreamMeta`.
    source: Option<String>,
}

impl TraceSender {
    /// Connects and declares the producer role.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = connect_with_timeout(addr)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        let mut tx = Self {
            stream,
            dec: FrameDecoder::new(),
            out_seq: 0,
            sent_meta: false,
            session: 0,
            acked: 0,
            source: None,
        };
        tx.write_frame(&Frame::Hello(Role::Producer))?;
        Ok(tx)
    }

    /// Connects as a fleet capture sender: the stream opens with a
    /// `SourceHello` binding it to the stable source id `source` (validated
    /// here, so a bad id fails before any bytes hit the wire). Requires a
    /// fleet-mode server (`rfdump serve --fleet`). A sender that reconnects
    /// and re-handshakes with the same id resumes its session from the
    /// server's acknowledged position (see [`ResilientSender::with_source`]
    /// for the automatic version).
    pub fn connect_source<A: ToSocketAddrs>(addr: A, source: &str) -> io::Result<Self> {
        crate::frame::validate_source_id(source).map_err(io::Error::from)?;
        let mut tx = Self::connect(addr)?;
        tx.source = Some(source.to_string());
        Ok(tx)
    }

    /// The frame that opens the sample stream: tagged for fleet senders,
    /// a bare `StreamMeta` otherwise.
    fn open_frame(&self, meta: StreamMeta) -> Frame {
        match &self.source {
            Some(s) => Frame::SourceHello {
                source: s.clone(),
                meta,
            },
            None => Frame::StreamMeta(meta),
        }
    }

    /// The server-assigned session id (0 before the first Ack).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The last server-acknowledged contiguous sample position.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    fn write_frame(&mut self, frame: &Frame) -> io::Result<u64> {
        let bytes = encode_frame(frame, self.out_seq);
        self.out_seq = self.out_seq.wrapping_add(1);
        self.stream.write_all(&bytes)?;
        Ok(bytes.len() as u64)
    }

    fn note_reverse_frame(&mut self, frame: &Frame) {
        if let Frame::Ack { session, position } = frame {
            self.session = *session;
            self.acked = self.acked.max(*position);
        }
    }

    /// Drains any server→producer frames waiting on the socket without
    /// blocking; returns how many were Throttle advisories. Ack frames
    /// update the acknowledged position as a side effect.
    fn poll_throttles(&mut self) -> io::Result<u64> {
        self.stream.set_nonblocking(true)?;
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break, // server closed its end
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.stream.set_nonblocking(false)?;
                    return Err(e);
                }
            }
        }
        self.stream.set_nonblocking(false)?;
        let mut throttles = 0u64;
        while let Some(SeqFrame { frame, .. }) = self.dec.next_frame().map_err(io::Error::from)? {
            if let Frame::Throttle { .. } = frame {
                throttles += 1;
            }
            self.note_reverse_frame(&frame);
        }
        Ok(throttles)
    }

    /// Blocks until the server's next Ack (the authoritative resume
    /// position). `ConnectionAborted` means the server sent Bye instead —
    /// the session cannot be resumed.
    fn wait_for_ack(&mut self) -> io::Result<(u64, u64)> {
        self.stream.set_nonblocking(false)?;
        self.stream
            .set_read_timeout(Some(Duration::from_millis(200)))?;
        let deadline = Instant::now() + ACK_TIMEOUT;
        let mut buf = [0u8; 4096];
        loop {
            while let Some(SeqFrame { frame, .. }) =
                self.dec.next_frame().map_err(io::Error::from)?
            {
                self.note_reverse_frame(&frame);
                match frame {
                    Frame::Ack { session, position } => return Ok((session, position)),
                    Frame::Bye => {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server refused the session",
                        ))
                    }
                    _ => {}
                }
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed before acking",
                    ))
                }
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no ack within the timeout",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Streams pre-quantized i16 IQ chunks. The caller supplies an iterator
    /// of chunks; pacing is applied per chunk.
    pub fn send_quantized<I>(
        &mut self,
        meta: StreamMeta,
        chunks: I,
        rate: SendRate,
    ) -> io::Result<SendReport>
    where
        I: IntoIterator<Item = Vec<(i16, i16)>>,
    {
        meta.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut report = SendReport::default();
        let t0 = Instant::now();
        if !self.sent_meta {
            let open = self.open_frame(meta);
            report.bytes += self.write_frame(&open)?;
            self.sent_meta = true;
        }
        let mut start_sample = 0u64;
        for iq in chunks {
            if iq.is_empty() {
                continue;
            }
            if rate == SendRate::RealTime {
                // Wall-clock position this chunk's first sample corresponds
                // to; sleep off any lead.
                let due = Duration::from_secs_f64(start_sample as f64 / meta.sample_rate);
                let elapsed = t0.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            report.throttles += self.poll_throttles()?;
            let n = iq.len() as u64;
            report.bytes += self.write_frame(&Frame::SampleChunk { start_sample, iq })?;
            start_sample += n;
            report.samples += n;
            report.chunks += 1;
        }
        self.stream.flush()?;
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Streams an in-memory sample buffer, quantizing to the wire's i16 IQ
    /// representation with `meta.scale` (the inverse of the server's
    /// reconstruction).
    pub fn send_samples(
        &mut self,
        meta: StreamMeta,
        samples: &[Complex32],
        rate: SendRate,
        chunk_samples: usize,
    ) -> io::Result<SendReport> {
        let chunk = chunk_samples.max(1);
        let inv = if meta.scale != 0.0 {
            1.0 / meta.scale
        } else {
            1.0
        };
        let quant = move |v: f32| -> i16 {
            let x = (v * inv).round();
            x.clamp(f32::from(i16::MIN), f32::from(i16::MAX)) as i16
        };
        let chunks = samples.chunks(chunk).map(move |c| {
            c.iter()
                .map(|s| (quant(s.re), quant(s.im)))
                .collect::<Vec<(i16, i16)>>()
        });
        // `chunks` borrows `samples`; collect is avoided by sending inline.
        self.send_quantized(meta, chunks, rate)
    }

    /// Replays a `.rfdt` trace file without loading it whole: chunked reads
    /// of the raw i16 IQ payload go straight onto the wire, so the server
    /// reconstructs bit-identical samples to an offline `decode_trace`.
    pub fn send_trace_file(
        &mut self,
        path: &Path,
        rate: SendRate,
        chunk_samples: usize,
    ) -> io::Result<SendReport> {
        let mut reader = rfd_ether::trace::ChunkedTraceReader::open(path)?;
        let h = reader.header();
        let meta = StreamMeta {
            sample_rate: h.sample_rate,
            center_hz: h.center_hz,
            scale: h.scale,
        };
        let chunk = chunk_samples.clamp(1, DEFAULT_CHUNK_SAMPLES * 16);
        meta.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut report = SendReport::default();
        let t0 = Instant::now();
        if !self.sent_meta {
            let open = self.open_frame(meta);
            report.bytes += self.write_frame(&open)?;
            self.sent_meta = true;
        }
        let mut start_sample = 0u64;
        while let Some(iq) = reader.next_chunk(chunk)? {
            if rate == SendRate::RealTime {
                let due = Duration::from_secs_f64(start_sample as f64 / meta.sample_rate);
                let elapsed = t0.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            report.throttles += self.poll_throttles()?;
            let n = iq.len() as u64;
            report.bytes += self.write_frame(&Frame::SampleChunk { start_sample, iq })?;
            start_sample += n;
            report.samples += n;
            report.chunks += 1;
        }
        self.stream.flush()?;
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Ends the session cleanly (Bye) and closes the connection.
    pub fn finish(mut self) -> io::Result<()> {
        self.write_frame(&Frame::Bye)?;
        self.stream.flush()?;
        let _ = self.stream.shutdown(std::net::Shutdown::Write);
        // Drain the reverse path until the server closes its end. Closing
        // with unread Throttle bytes in our receive buffer would turn this
        // into a TCP RST, destroying in-flight sample data the server has
        // not yet read.
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_read_timeout(Some(Duration::from_secs(30)));
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        Ok(())
    }
}

/// A trace sender that survives mid-stream disconnects: on any send error
/// it reconnects with [`RetryPolicy`] backoff, offers the server a
/// `Resume`, rewinds the trace file to the server's authoritative
/// acknowledged sample, and continues. The server deduplicates the overlap,
/// so the analyzed stream is byte-identical to an uninterrupted send.
///
/// With [`ResilientSender::with_source`] the same machinery runs under the
/// fleet handshake: every (re)connection opens with a `SourceHello` for the
/// stable source id, the fleet server reattaches the parked session and
/// acks its committed high-water mark, and the sender seeks the trace to
/// it — per-source resume.
pub struct ResilientSender {
    addr: String,
    retry: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
    registry: Option<Arc<Registry>>,
    source: Option<String>,
}

impl ResilientSender {
    /// A resilient sender for `addr`, with default retries and the ambient
    /// (`RFD_FAULTS`) fault plan.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            retry: RetryPolicy::default(),
            faults: FaultPlan::ambient(),
            registry: None,
            source: None,
        }
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sends as the fleet source `source`: every (re)connection handshakes
    /// with a `SourceHello` for this id, so a fleet server resumes the
    /// session instead of seeing a stranger.
    pub fn with_source(mut self, source: &str) -> Self {
        self.source = Some(source.to_string());
        self
    }

    /// Overrides the fault plan (chaos testing).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Emits NetBackoff/NetResume events into `registry`'s event log.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    fn emit_backoff(&self, attempt: u32, err: &io::Error) {
        if let Some(r) = &self.registry {
            r.emit_event(
                EventKind::NetBackoff,
                format!("send attempt {attempt}: {err}"),
            );
        }
    }

    fn emit_resume(&self, session: Option<u64>, pos: u64) {
        if let Some(r) = &self.registry {
            let sess = session.map_or_else(|| "new".into(), |s| s.to_string());
            r.emit_event(
                EventKind::NetResume,
                format!("send resumed session {sess} at sample {pos}"),
            );
        }
    }

    /// Connects, declaring the fleet source id when one is set.
    fn connect(&self) -> io::Result<TraceSender> {
        match &self.source {
            Some(s) => TraceSender::connect_source(&self.addr[..], s),
            None => TraceSender::connect(&self.addr[..]),
        }
    }

    /// Completes the session handshake on a fresh connection: a
    /// `StreamMeta` when `session` is unknown, a `Resume` otherwise. Fleet
    /// sends open with a `SourceHello` instead — the source id *is* the
    /// resume token, and the Resume that follows a reconnect only declares
    /// the client's last-acked position (advisory; the server's ack is
    /// authoritative either way). Returns the sender positioned at the
    /// server's acknowledged sample (written into `pos`).
    fn handshake(
        &self,
        mut tx: TraceSender,
        meta: StreamMeta,
        session: Option<u64>,
        pos: &mut u64,
    ) -> io::Result<TraceSender> {
        match (&self.source, session) {
            (None, None) => {
                tx.write_frame(&Frame::StreamMeta(meta))?;
            }
            (None, Some(id)) => {
                tx.write_frame(&Frame::Resume {
                    session: id,
                    position: *pos,
                })?;
            }
            (Some(s), None) => {
                tx.write_frame(&Frame::SourceHello {
                    source: s.clone(),
                    meta,
                })?;
            }
            (Some(s), Some(id)) => {
                tx.write_frame(&Frame::SourceHello {
                    source: s.clone(),
                    meta,
                })?;
                tx.write_frame(&Frame::Resume {
                    session: id,
                    position: *pos,
                })?;
            }
        }
        tx.sent_meta = true;
        tx.stream.flush()?;
        let (_, position) = tx.wait_for_ack()?;
        *pos = position;
        Ok(tx)
    }

    /// Streams a `.rfdt` trace file, transparently reconnecting and
    /// resuming on failure (injected or real).
    pub fn send_trace_file(
        &self,
        path: &Path,
        rate: SendRate,
        chunk_samples: usize,
    ) -> io::Result<SendReport> {
        let mut report = SendReport::default();
        let t0 = Instant::now();
        let mut attempt = 0u32;
        let mut had_backoff = false;

        // Connect before touching the trace file — the plain sender's error
        // ordering, which callers rely on: a dead server surfaces as the
        // connect error, and a live server always observes the connection
        // even when the trace turns out to be unreadable.
        if let Some(s) = &self.source {
            crate::frame::validate_source_id(s).map_err(io::Error::from)?;
        }
        let mut pre = loop {
            match self.connect() {
                Ok(tx) => break Some(tx),
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    self.emit_backoff(attempt, &e);
                    had_backoff = true;
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                    report.reconnects += 1;
                }
            }
        };
        attempt = 0;

        let mut reader = rfd_ether::trace::ChunkedTraceReader::open(path)?;
        let h = reader.header();
        let meta = StreamMeta {
            sample_rate: h.sample_rate,
            center_hz: h.center_hz,
            scale: h.scale,
        };
        meta.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let chunk = chunk_samples.clamp(1, DEFAULT_CHUNK_SAMPLES * 16);

        let mut session: Option<u64> = None;
        let mut pos = 0u64;

        'session: loop {
            let conn = match pre.take() {
                Some(tx) => Ok(tx),
                None => self.connect(),
            };
            let mut tx = match conn.and_then(|tx| self.handshake(tx, meta, session, &mut pos)) {
                Ok(tx) => tx,
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    self.emit_backoff(attempt, &e);
                    had_backoff = true;
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                    report.reconnects += 1;
                    continue 'session;
                }
            };
            // Every `continue 'session` path above and below marks a
            // backoff, so reaching here with the flag set means this
            // handshake is a recovery.
            if had_backoff {
                self.emit_resume(session, pos);
            }
            session = Some(tx.session);
            reader.seek_to_sample(pos)?;
            let mut start_sample = pos;
            while let Some(iq) = reader.next_chunk(chunk)? {
                if rate == SendRate::RealTime {
                    let due = Duration::from_secs_f64(start_sample as f64 / meta.sample_rate);
                    let elapsed = t0.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                let n = iq.len() as u64;
                match self.send_chunk(&mut tx, start_sample, iq, &mut report) {
                    Ok(()) => {
                        start_sample += n;
                        report.samples += n;
                        report.chunks += 1;
                        attempt = 0; // progress resets the retry budget
                    }
                    Err(e) => {
                        if attempt >= self.retry.max_retries {
                            return Err(e);
                        }
                        self.emit_backoff(attempt, &e);
                        had_backoff = true;
                        std::thread::sleep(self.retry.backoff(attempt));
                        attempt += 1;
                        report.reconnects += 1;
                        pos = tx.acked;
                        continue 'session;
                    }
                }
            }
            // End of trace: close cleanly. A failure here still has the
            // session parked server-side; retry the tail via resume.
            match tx.stream.flush().and(Ok(tx)).and_then(TraceSender::finish) {
                Ok(()) => {
                    report.wall = t0.elapsed();
                    return Ok(report);
                }
                Err(e) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    self.emit_backoff(attempt, &e);
                    had_backoff = true;
                    std::thread::sleep(self.retry.backoff(attempt));
                    attempt += 1;
                    report.reconnects += 1;
                    continue 'session;
                }
            }
        }
    }

    /// Writes one chunk, applying any injected fault at `net.send.chunk`.
    fn send_chunk(
        &self,
        tx: &mut TraceSender,
        start_sample: u64,
        iq: Vec<(i16, i16)>,
        report: &mut SendReport,
    ) -> io::Result<()> {
        match self
            .faults
            .as_ref()
            .and_then(|p| p.decide("net.send.chunk"))
        {
            Some(Action::Disconnect) => {
                let _ = tx.stream.shutdown(Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect",
                ));
            }
            Some(Action::Truncate) => {
                // Half a frame on the wire, then a hard close: the server
                // sees a truncated stream and must not mis-ingest it.
                let bytes = encode_frame(
                    &Frame::SampleChunk {
                        start_sample,
                        iq: iq.clone(),
                    },
                    tx.out_seq,
                );
                let _ = tx.stream.write_all(&bytes[..bytes.len() / 2]);
                let _ = tx.stream.flush();
                let _ = tx.stream.shutdown(Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected truncated frame",
                ));
            }
            Some(Action::Corrupt) => {
                // A bit-flipped payload: the server's CRC check rejects it
                // and drops the connection; resume re-sends it intact.
                let mut bytes = encode_frame(
                    &Frame::SampleChunk {
                        start_sample,
                        iq: iq.clone(),
                    },
                    tx.out_seq,
                );
                let last = bytes.len() - 1;
                bytes[last] ^= 0x55;
                let _ = tx.stream.write_all(&bytes);
                let _ = tx.stream.flush();
                let _ = tx.stream.shutdown(Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected corrupt frame",
                ));
            }
            Some(Action::Io) | Some(Action::Panic) => {
                return Err(io::Error::other("injected send error"));
            }
            Some(Action::Slow(d)) => std::thread::sleep(d),
            Some(Action::Spin(d)) => rfd_fault::spin_for(d),
            Some(Action::Kill) => std::process::abort(),
            None => {}
        }
        report.throttles += tx.poll_throttles()?;
        report.bytes += tx.write_frame(&Frame::SampleChunk { start_sample, iq })?;
        Ok(())
    }
}

/// One event from the server's record stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// Stream metadata for a session now starting.
    Meta(StreamMeta),
    /// One decoded record.
    Record(RecordMsg),
    /// End-of-session statistics document (JSON).
    Stats(String),
    /// A fleet source joined the merged stream (its metadata).
    SourceMeta {
        /// The stable source id.
        source: String,
        /// The source's stream metadata.
        meta: StreamMeta,
    },
    /// One decoded record from a tagged fleet source.
    SourceRecord {
        /// The stable source id.
        source: String,
        /// The record.
        record: RecordMsg,
    },
    /// A fleet source's stream ended; no further records carry its tag.
    SourceBye {
        /// The stable source id.
        source: String,
    },
    /// Idle keep-alive.
    Heartbeat,
    /// The server is done; no further events follow.
    Bye,
}

/// A subscriber connection that receives the live record stream from an
/// `rfdump serve` instance.
pub struct RecordSubscriber {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Absolute stream position of the next expected message (anchored by
    /// the server's Ack at connect; the resume cursor).
    pos: u64,
}

impl RecordSubscriber {
    /// Connects for live streaming (no replay of missed messages).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_from(addr, u64::MAX)
    }

    /// Connects resuming from absolute stream position `pos` (`u64::MAX`
    /// means live-only). Blocks until the server acknowledges the
    /// subscription (an immediate Heartbeat plus a position Ack), so every
    /// record published after `connect` returns is guaranteed to reach
    /// this subscriber.
    pub fn connect_from<A: ToSocketAddrs>(addr: A, pos: u64) -> io::Result<Self> {
        let mut stream = connect_with_timeout(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(SUB_READ_TIMEOUT))?;
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        stream.write_all(&encode_frame(&Frame::Hello(Role::Subscriber), 0))?;
        stream.write_all(&encode_frame(
            &Frame::Resume {
                session: 0,
                position: pos,
            },
            1,
        ))?;
        let mut sub = Self {
            stream,
            dec: FrameDecoder::new(),
            pos: 0,
        };
        match sub.next_raw()? {
            Frame::Heartbeat => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected subscription ack, got {other:?}"),
                ))
            }
        }
        match sub.next_raw()? {
            Frame::Ack { position, .. } => sub.pos = position,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected position ack, got {other:?}"),
                ))
            }
        }
        Ok(sub)
    }

    /// Absolute stream position of the next expected message — the value a
    /// reconnect passes to [`RecordSubscriber::connect_from`].
    pub fn position(&self) -> u64 {
        self.pos
    }

    fn next_raw(&mut self) -> io::Result<Frame> {
        loop {
            if let Some(SeqFrame { frame, .. }) = self.dec.next_frame().map_err(io::Error::from)? {
                return Ok(frame);
            }
            let mut buf = [0u8; 16 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the stream without a Bye",
                    ))
                }
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocks for the next event. `ErrorKind::UnexpectedEof` means the
    /// server went away without a Bye.
    pub fn next_event(&mut self) -> io::Result<SubEvent> {
        loop {
            let ev = match self.next_raw()? {
                Frame::StreamMeta(m) => SubEvent::Meta(m),
                Frame::Record(r) => SubEvent::Record(r),
                Frame::Stats(s) => SubEvent::Stats(s),
                Frame::SourceHello { source, meta } => SubEvent::SourceMeta { source, meta },
                Frame::SourceRecord { source, record } => SubEvent::SourceRecord { source, record },
                Frame::SourceBye { source } => SubEvent::SourceBye { source },
                Frame::Heartbeat => SubEvent::Heartbeat,
                Frame::Bye => SubEvent::Bye,
                // Late position acks just refresh the resume cursor.
                Frame::Ack { position, .. } => {
                    self.pos = self.pos.max(position);
                    continue;
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame on subscriber stream: {other:?}"),
                    ))
                }
            };
            // Stream messages advance the resume cursor; heartbeats and
            // the global Bye are connection events outside the replayable
            // stream.
            if matches!(
                ev,
                SubEvent::Meta(_)
                    | SubEvent::Record(_)
                    | SubEvent::Stats(_)
                    | SubEvent::SourceMeta { .. }
                    | SubEvent::SourceRecord { .. }
                    | SubEvent::SourceBye { .. }
            ) {
                self.pos += 1;
            }
            return Ok(ev);
        }
    }
}

/// A subscriber that survives server-side disconnects and injected read
/// faults: on any error it reconnects with backoff and resumes from its
/// stream position, so the observed event sequence has no duplicates and
/// no gaps (up to the server's bounded replay history).
pub struct ResilientSubscriber {
    addr: String,
    inner: Option<RecordSubscriber>,
    pos: u64,
    retry: RetryPolicy,
    faults: Option<Arc<FaultPlan>>,
    attempt: u32,
    reconnects: u64,
    registry: Option<Arc<Registry>>,
}

impl ResilientSubscriber {
    /// Connects for live streaming with default retries and the ambient
    /// fault plan.
    pub fn connect(addr: impl Into<String>) -> io::Result<Self> {
        let addr = addr.into();
        let inner = RecordSubscriber::connect(&addr[..])?;
        let pos = inner.position();
        Ok(Self {
            addr,
            inner: Some(inner),
            pos,
            retry: RetryPolicy::default(),
            faults: FaultPlan::ambient(),
            attempt: 0,
            reconnects: 0,
            registry: None,
        })
    }

    /// Connects resuming from absolute stream position `pos` (`u64::MAX`
    /// means live-only), with default retries and the ambient fault plan.
    pub fn connect_from(addr: impl Into<String>, pos: u64) -> io::Result<Self> {
        let addr = addr.into();
        let inner = RecordSubscriber::connect_from(&addr[..], pos)?;
        let pos = inner.position();
        Ok(Self {
            addr,
            inner: Some(inner),
            pos,
            retry: RetryPolicy::default(),
            faults: FaultPlan::ambient(),
            attempt: 0,
            reconnects: 0,
            registry: None,
        })
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the fault plan (chaos testing).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.faults = faults;
        self
    }

    /// Emits NetBackoff/NetResume events into `registry`'s event log.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Absolute stream position of the next expected message.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Blocks for the next event, reconnecting and resuming on failure.
    pub fn next_event(&mut self) -> io::Result<SubEvent> {
        loop {
            // Injected read faults force the reconnect path.
            let injected: Option<io::Error> =
                match self.faults.as_ref().and_then(|p| p.decide("net.sub.read")) {
                    Some(Action::Disconnect) | Some(Action::Io) => Some(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected subscriber fault",
                    )),
                    Some(Action::Slow(d)) => {
                        std::thread::sleep(d);
                        None
                    }
                    Some(Action::Spin(d)) => {
                        rfd_fault::spin_for(d);
                        None
                    }
                    _ => None,
                };
            let result = match injected {
                Some(e) => {
                    // Kill the socket so the server parks/evicts us for real.
                    if let Some(sub) = &self.inner {
                        let _ = sub.stream.shutdown(Shutdown::Both);
                    }
                    self.inner = None;
                    Err(e)
                }
                None => match self.inner.as_mut() {
                    Some(sub) => sub.next_event(),
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "not connected")),
                },
            };
            match result {
                Ok(ev) => {
                    if let Some(sub) = &self.inner {
                        self.pos = sub.position();
                    }
                    self.attempt = 0;
                    return Ok(ev);
                }
                Err(e) => {
                    self.inner = None;
                    if self.attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    if let Some(r) = &self.registry {
                        r.emit_event(
                            EventKind::NetBackoff,
                            format!("subscribe attempt {}: {e}", self.attempt),
                        );
                    }
                    std::thread::sleep(self.retry.backoff(self.attempt));
                    self.attempt += 1;
                    if let Ok(sub) = RecordSubscriber::connect_from(&self.addr[..], self.pos) {
                        self.reconnects += 1;
                        self.pos = sub.position();
                        self.inner = Some(sub);
                        if let Some(r) = &self.registry {
                            r.emit_event(
                                EventKind::NetResume,
                                format!("subscribe resumed at position {}", self.pos),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Checkpoint file a [`JournaledSubscriber`] keeps in its journal directory.
pub const SUBSCRIBER_CHECKPOINT: &str = "subscriber.rfdc";

/// A subscriber whose stream position survives process restarts: the last
/// durably *processed* position is persisted as an atomic checkpoint, and a
/// fresh process resumes the subscription from it — so across crashes each
/// stream message is delivered exactly once to a caller that checkpoints
/// between events (the position covering an event is written when the
/// caller comes back for the next one, i.e. after it finished processing).
pub struct JournaledSubscriber {
    inner: ResilientSubscriber,
    checkpoint: std::path::PathBuf,
    saved: u64,
}

impl JournaledSubscriber {
    /// Connects, resuming from the checkpoint under `dir` when one exists
    /// (live-only otherwise). Creates `dir` if missing.
    pub fn connect(addr: impl Into<String>, dir: &std::path::Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let checkpoint = dir.join(SUBSCRIBER_CHECKPOINT);
        let saved = match rfd_journal::read_checkpoint(&checkpoint)? {
            Some(payload) => {
                let mut pos = 0;
                rfd_journal::get_u64(&payload, &mut pos).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad subscriber checkpoint")
                })?
            }
            None => u64::MAX,
        };
        let inner = if saved == u64::MAX {
            ResilientSubscriber::connect(addr)?
        } else {
            ResilientSubscriber::connect_from(addr, saved)?
        };
        Ok(Self {
            inner,
            checkpoint,
            saved,
        })
    }

    /// Overrides the fault plan (chaos testing).
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.inner = self.inner.with_faults(faults);
        self
    }

    /// Reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }

    /// Blocks for the next event. Before fetching, the position covering
    /// every previously returned event is checkpointed — returning from
    /// this call acknowledges everything before it.
    pub fn next_event(&mut self) -> io::Result<SubEvent> {
        let pos = self.inner.position();
        if pos != self.saved && pos != u64::MAX {
            let mut payload = Vec::with_capacity(8);
            rfd_journal::put_u64(&mut payload, pos);
            rfd_journal::write_checkpoint(&self.checkpoint, &payload)?;
            self.saved = pos;
        }
        self.inner.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let p = RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            seed: 42,
        };
        let a: Vec<Duration> = (0..8).map(|i| p.backoff(i)).collect();
        let b: Vec<Duration> = (0..8).map(|i| p.backoff(i)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        for (i, d) in a.iter().enumerate() {
            let raw = p.base.saturating_mul(1 << i.min(20)).min(p.cap);
            assert!(*d >= raw.mul_f64(0.5) && *d <= raw, "attempt {i}: {d:?}");
        }
        // Far attempts are capped (within jitter) regardless of exponent.
        assert!(p.backoff(30) <= p.cap);
    }
}
