//! The live capture server: sample-stream ingest with backpressure on one
//! side, record fan-out to live subscribers on the other.
//!
//! ```text
//!  producer ──TCP──▶ ingest (frames → ChunkQueue) ──▶ analysis thread
//!                                                        │ (Pipeline)
//!  subscriber ◀─TCP── per-sub bounded queue ◀── RecordHub ┘
//! ```
//!
//! One connection thread per peer. A **producer** sends
//! `Hello → StreamMeta → SampleChunk… → Bye`; its chunks cross a bounded
//! [`ChunkQueue`] whose overflow policy is the server's drop-vs-delay
//! decision, with Throttle frames sent back as an explicit advisory the
//! moment the queue saturates. A session's samples feed the [`Pipeline`]
//! (in-process; the rfdump analysis stack on the CLI), and the resulting
//! records fan out through the [`RecordHub`] to every **subscriber**, each
//! behind its own bounded queue with slow-consumer eviction.
//!
//! Determinism note: records are published after the session's sample
//! stream ends, in exactly the order the offline pipeline emits them
//! (concatenated per-port, stable-sorted by start time). This is forced by
//! the byte-identity contract with offline `rfdump`: the offline record
//! stream is globally time-sorted, and a globally sorted order cannot be
//! emitted before the last sample is seen. A future watermarking scheme
//! could bound the latency; the wire protocol needs no change for it.

use crate::frame::{encode_frame, Frame, FrameDecoder, RecordMsg, Role, SeqFrame, StreamMeta};
use crate::hub::{HubMsg, RecordHub, Subscription};
use crate::queue::{ChunkQueue, OverflowPolicy};
use rfd_dsp::complex::from_i16_iq;
use rfd_dsp::Complex32;
use rfd_fault::{Action, FaultPlan};
use rfd_telemetry::{Counter, Gauge, Registry};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The analysis stage the server drives: a complete sample stream in,
/// rendered record lines out.
///
/// The server deliberately does not depend on `rfdump` (the core crate
/// implements this trait and hands it in), so the wire layer stays reusable
/// and cheap to test with stub pipelines.
pub trait Pipeline: Send {
    /// Processes one session's samples into record messages, in final
    /// (time-sorted) emission order.
    fn analyze(&mut self, meta: &StreamMeta, samples: Vec<Complex32>) -> Vec<RecordMsg>;
}

impl<F> Pipeline for F
where
    F: FnMut(&StreamMeta, Vec<Complex32>) -> Vec<RecordMsg> + Send,
{
    fn analyze(&mut self, meta: &StreamMeta, samples: Vec<Complex32>) -> Vec<RecordMsg> {
        self(meta, samples)
    }
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

/// One monotone statistic, optionally mirrored into a telemetry counter.
pub(crate) struct Cell {
    v: AtomicU64,
    mirror: Option<Arc<Counter>>,
}

impl Cell {
    pub(crate) fn new(reg: Option<&Registry>, name: &str) -> Self {
        Self {
            v: AtomicU64::new(0),
            mirror: reg.map(|r| r.counter(name)),
        }
    }

    pub(crate) fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
        if let Some(c) = &self.mirror {
            c.add(n);
        }
    }

    pub(crate) fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Live server statistics (all monotone; mirrored into the telemetry
/// registry under `net.*` when one is attached).
pub struct NetStats {
    pub(crate) connections: Cell,
    pub(crate) producers: Cell,
    pub(crate) subscribers: Cell,
    pub(crate) sessions: Cell,
    pub(crate) frames_in: Cell,
    pub(crate) bytes_in: Cell,
    pub(crate) frames_out: Cell,
    pub(crate) bytes_out: Cell,
    pub(crate) chunks_in: Cell,
    pub(crate) samples_in: Cell,
    pub(crate) chunks_dropped: Cell,
    pub(crate) throttles_sent: Cell,
    pub(crate) seq_gaps: Cell,
    pub(crate) decode_errors: Cell,
    pub(crate) records_published: Cell,
    pub(crate) chunks_duplicate: Cell,
    pub(crate) sample_gaps: Cell,
    pub(crate) resumes: Cell,
    pub(crate) sessions_parked: Cell,
    pub(crate) sessions_expired: Cell,
    pub(crate) idle_evictions: Cell,
    pub(crate) acks_sent: Cell,
    /// Signal time ingested, µs (samples / sample_rate).
    pub(crate) ingest_signal_us: Cell,
    /// Wall time spent ingesting, µs (first chunk to stream close).
    pub(crate) ingest_wall_us: Cell,
    pub(crate) queue_gauge: Option<Arc<Gauge>>,
}

impl NetStats {
    pub(crate) fn new(reg: Option<&Registry>) -> Self {
        Self {
            connections: Cell::new(reg, "net.connections"),
            producers: Cell::new(reg, "net.producers"),
            subscribers: Cell::new(reg, "net.subscribers"),
            sessions: Cell::new(reg, "net.sessions"),
            frames_in: Cell::new(reg, "net.frames_in"),
            bytes_in: Cell::new(reg, "net.bytes_in"),
            frames_out: Cell::new(reg, "net.frames_out"),
            bytes_out: Cell::new(reg, "net.bytes_out"),
            chunks_in: Cell::new(reg, "net.chunks_in"),
            samples_in: Cell::new(reg, "net.samples_in"),
            chunks_dropped: Cell::new(reg, "net.chunks_dropped"),
            throttles_sent: Cell::new(reg, "net.throttles_sent"),
            seq_gaps: Cell::new(reg, "net.seq_gaps"),
            decode_errors: Cell::new(reg, "net.decode_errors"),
            records_published: Cell::new(reg, "net.records_published"),
            chunks_duplicate: Cell::new(reg, "net.chunks_duplicate"),
            sample_gaps: Cell::new(reg, "net.sample_gaps"),
            resumes: Cell::new(reg, "net.resumes"),
            sessions_parked: Cell::new(reg, "net.sessions_parked"),
            sessions_expired: Cell::new(reg, "net.sessions_expired"),
            idle_evictions: Cell::new(reg, "net.idle_evictions"),
            acks_sent: Cell::new(reg, "net.acks_sent"),
            ingest_signal_us: Cell::new(reg, "net.ingest_signal_us"),
            ingest_wall_us: Cell::new(reg, "net.ingest_wall_us"),
            queue_gauge: reg.map(|r| r.gauge("net.ingest.queue_depth")),
        }
    }

    /// Point-in-time copy. `subscribers_evicted` comes from the hub, which
    /// owns that counter.
    pub(crate) fn snapshot(&self, subscribers_evicted: u64) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.get(),
            producers: self.producers.get(),
            subscribers: self.subscribers.get(),
            sessions: self.sessions.get(),
            frames_in: self.frames_in.get(),
            bytes_in: self.bytes_in.get(),
            frames_out: self.frames_out.get(),
            bytes_out: self.bytes_out.get(),
            chunks_in: self.chunks_in.get(),
            samples_in: self.samples_in.get(),
            chunks_dropped: self.chunks_dropped.get(),
            throttles_sent: self.throttles_sent.get(),
            seq_gaps: self.seq_gaps.get(),
            decode_errors: self.decode_errors.get(),
            records_published: self.records_published.get(),
            chunks_duplicate: self.chunks_duplicate.get(),
            sample_gaps: self.sample_gaps.get(),
            resumes: self.resumes.get(),
            sessions_parked: self.sessions_parked.get(),
            sessions_expired: self.sessions_expired.get(),
            idle_evictions: self.idle_evictions.get(),
            acks_sent: self.acks_sent.get(),
            subscribers_evicted,
            ingest_signal_us: self.ingest_signal_us.get(),
            ingest_wall_us: self.ingest_wall_us.get(),
        }
    }
}

/// Point-in-time copy of the server statistics, for the stats-json `net`
/// section and test assertions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStatsSnapshot {
    /// Accepted TCP connections.
    pub connections: u64,
    /// Connections that declared the producer role.
    pub producers: u64,
    /// Connections that declared the subscriber role.
    pub subscribers: u64,
    /// Producer sessions analyzed.
    pub sessions: u64,
    /// Frames decoded from peers.
    pub frames_in: u64,
    /// Bytes read from peers.
    pub bytes_in: u64,
    /// Frames written to peers.
    pub frames_out: u64,
    /// Bytes written to peers.
    pub bytes_out: u64,
    /// Sample chunks ingested.
    pub chunks_in: u64,
    /// Complex samples ingested.
    pub samples_in: u64,
    /// Chunks discarded by the drop-oldest overflow policy.
    pub chunks_dropped: u64,
    /// Throttle advisories sent to producers.
    pub throttles_sent: u64,
    /// Frame sequence-number gaps observed (upstream loss accounting).
    pub seq_gaps: u64,
    /// Connections dropped for malformed frames.
    pub decode_errors: u64,
    /// Record messages published to the hub.
    pub records_published: u64,
    /// Sample chunks skipped as already-ingested duplicates (resend after a
    /// reconnect overlapping the acknowledged position).
    pub chunks_duplicate: u64,
    /// Samples missing from the contiguous stream (chunk started past the
    /// expected position).
    pub sample_gaps: u64,
    /// Producer sessions successfully resumed after a reconnect.
    pub resumes: u64,
    /// Sessions parked awaiting a reconnect when their producer dropped.
    pub sessions_parked: u64,
    /// Parked sessions finalized because the resume grace period expired.
    pub sessions_expired: u64,
    /// Connections dropped for exceeding the idle timeout.
    pub idle_evictions: u64,
    /// Ack frames sent to producers.
    pub acks_sent: u64,
    /// Subscribers evicted as slow consumers.
    pub subscribers_evicted: u64,
    /// Signal time ingested, µs.
    pub ingest_signal_us: u64,
    /// Wall time spent ingesting, µs.
    pub ingest_wall_us: u64,
}

impl NetStatsSnapshot {
    /// Ingest wall time over signal time: < 1.0 means the server kept up
    /// with (better than) real time, the PC-side requirement the related
    /// USRP-ingest work centers on.
    pub fn ingest_rt_ratio(&self) -> f64 {
        if self.ingest_signal_us == 0 {
            return 0.0;
        }
        self.ingest_wall_us as f64 / self.ingest_signal_us as f64
    }

    /// The snapshot as a JSON object (the stats-json v3 `net` section).
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        J::obj(vec![
            ("connections", n(self.connections)),
            ("producers", n(self.producers)),
            ("subscribers", n(self.subscribers)),
            ("sessions", n(self.sessions)),
            ("frames_in", n(self.frames_in)),
            ("bytes_in", n(self.bytes_in)),
            ("frames_out", n(self.frames_out)),
            ("bytes_out", n(self.bytes_out)),
            ("chunks_in", n(self.chunks_in)),
            ("samples_in", n(self.samples_in)),
            ("chunks_dropped", n(self.chunks_dropped)),
            ("throttles_sent", n(self.throttles_sent)),
            ("seq_gaps", n(self.seq_gaps)),
            ("decode_errors", n(self.decode_errors)),
            ("records_published", n(self.records_published)),
            ("chunks_duplicate", n(self.chunks_duplicate)),
            ("sample_gaps", n(self.sample_gaps)),
            ("resumes", n(self.resumes)),
            ("sessions_parked", n(self.sessions_parked)),
            ("sessions_expired", n(self.sessions_expired)),
            ("idle_evictions", n(self.idle_evictions)),
            ("acks_sent", n(self.acks_sent)),
            ("subscribers_evicted", n(self.subscribers_evicted)),
            ("ingest_signal_us", n(self.ingest_signal_us)),
            ("ingest_wall_us", n(self.ingest_wall_us)),
            ("ingest_rt_ratio", J::num(self.ingest_rt_ratio())),
        ])
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Ingest queue capacity, in sample chunks.
    pub queue_cap: usize,
    /// What a full ingest queue does to the producer.
    pub overflow: OverflowPolicy,
    /// Per-subscriber record queue capacity (slow-consumer eviction bound).
    pub sub_queue_cap: usize,
    /// Shut the server down after the first completed producer session
    /// (bounded runs: tests, CI, benchmarks).
    pub once: bool,
    /// Idle interval after which a subscriber connection gets a Heartbeat.
    pub heartbeat: Duration,
    /// How long a producer session is parked awaiting a Resume after its
    /// connection drops mid-stream. Zero disables resume: a dropped
    /// connection finalizes the session immediately with whatever samples
    /// arrived.
    pub resume_grace: Duration,
    /// A connection that produces no bytes for this long is evicted (hung
    /// peer; a producer's session is still parked for `resume_grace`).
    pub idle_timeout: Duration,
    /// Fault-injection plan for chaos testing (`net.server.read` site).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            overflow: OverflowPolicy::Block,
            sub_queue_cap: 4096,
            once: false,
            heartbeat: Duration::from_secs(1),
            resume_grace: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            faults: None,
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// One producer session's live state. While its connection is up this is
/// owned by the connection thread; between a mid-stream drop and the
/// matching Resume it lives in `Inner::parked`.
struct SessionState {
    id: u64,
    meta: StreamMeta,
    queue: ChunkQueue<Vec<Complex32>>,
    analysis: std::thread::JoinHandle<()>,
    /// Contiguous high-water mark: absolute index of the next expected
    /// sample. Everything below it has been pushed to the analysis queue
    /// exactly once — this is the position Acks advertise and duplicates
    /// are measured against.
    expected: u64,
    /// Accumulated ingest wall time across connection segments, µs.
    wall_us: u64,
    /// When a parked session gives up waiting for its producer.
    deadline: Instant,
}

struct Inner {
    cfg: ServerConfig,
    hub: RecordHub,
    stats: NetStats,
    pipeline: Mutex<Box<dyn Pipeline>>,
    shutdown: AtomicBool,
    sessions_done: AtomicU64,
    parked: Mutex<HashMap<u64, SessionState>>,
    next_session: AtomicU64,
    /// Owned registry for event emission (the counters in `stats` hold
    /// their own Arcs; this is for the event log and the fan-out
    /// histogram).
    registry: Option<Arc<Registry>>,
    /// `latency.net_fanout_us`: duration of one record publish call. Same
    /// bucket layout as the core stage histograms, constructed locally
    /// because rfd-net sits below the analysis stack.
    fanout_hist: Option<Arc<rfd_telemetry::Histogram>>,
    /// Slow-consumer evictions already surfaced as events (the hub only
    /// keeps a counter).
    evictions_reported: AtomicU64,
}

impl Inner {
    fn emit(&self, kind: rfd_telemetry::event::EventKind, detail: String) {
        if let Some(r) = &self.registry {
            r.emit_event(kind, detail);
        }
    }

    /// Emits one SlowConsumerEvicted event per eviction the hub has booked
    /// since the last check.
    fn note_evictions(&self) {
        if self.registry.is_none() {
            return;
        }
        let total = self.hub.evicted();
        let mut seen = self.evictions_reported.load(Ordering::Relaxed);
        while seen < total {
            match self.evictions_reported.compare_exchange(
                seen,
                seen + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.emit(
                        rfd_telemetry::event::EventKind::SlowConsumerEvicted,
                        format!("subscriber queue full (eviction #{})", seen + 1),
                    );
                    seen += 1;
                }
                Err(now) => seen = now,
            }
        }
    }
}

impl Inner {
    fn snapshot(&self) -> NetStatsSnapshot {
        self.stats.snapshot(self.hub.evicted())
    }
}

/// Cloneable handle for stopping a running server and reading its stats.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Asks the server to stop: subscribers get a final Bye, `run` returns
    /// once every connection thread has exited.
    pub fn shutdown(&self) {
        if !self.inner.shutdown.swap(true, Ordering::SeqCst) {
            self.inner.hub.publish(HubMsg::Bye);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.snapshot()
    }
}

/// The live capture server. Bind, then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7099`, or port 0 for an ephemeral
    /// port) and prepares the server around `pipeline`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        cfg: ServerConfig,
        pipeline: Box<dyn Pipeline>,
        registry: Option<Arc<Registry>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let fanout_hist = registry.as_ref().map(|r| {
            r.histogram("latency.net_fanout_us", || {
                rfd_telemetry::Histogram::exponential(1.0, 1e7, 28)
            })
        });
        let inner = Arc::new(Inner {
            hub: RecordHub::new(cfg.sub_queue_cap),
            stats: NetStats::new(registry.as_deref()),
            cfg,
            pipeline: Mutex::new(pipeline),
            shutdown: AtomicBool::new(false),
            sessions_done: AtomicU64::new(0),
            parked: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            registry,
            fanout_hist,
            evictions_reported: AtomicU64::new(0),
        });
        Ok(Self { listener, inner })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and stats from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: self.inner.clone(),
        }
    }

    /// An in-process subscription to the record stream (used by the CLI to
    /// print records locally; network subscribers are unaffected).
    pub fn subscribe(&self) -> Subscription {
        self.inner.hub.subscribe()
    }

    /// Accepts and serves connections until shutdown (or, with
    /// [`ServerConfig::once`], until the first producer session completes).
    /// Returns the final statistics.
    pub fn run(self) -> io::Result<NetStatsSnapshot> {
        self.listener.set_nonblocking(true)?;
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let inner = self.inner.clone();
                    handles.push(
                        std::thread::Builder::new()
                            .name("rfd-net-conn".into())
                            .spawn(move || handle_connection(inner, stream))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
            // Reap finished connection threads opportunistically.
            handles.retain(|h| !h.is_finished());
            // Finalize parked sessions whose resume grace has expired.
            let now = Instant::now();
            let expired: Vec<SessionState> = {
                let mut parked = self.inner.parked.lock().unwrap_or_else(|e| e.into_inner());
                let ids: Vec<u64> = parked
                    .iter()
                    .filter(|(_, s)| now >= s.deadline)
                    .map(|(&id, _)| id)
                    .collect();
                ids.into_iter()
                    .filter_map(|id| parked.remove(&id))
                    .collect()
            };
            for sess in expired {
                self.inner.stats.sessions_expired.add(1);
                finalize_session(&self.inner, sess);
            }
        }
        for h in handles {
            let _ = h.join();
        }
        // Shutdown: whatever is still parked will never be resumed —
        // analyze the samples that made it, so a crashing producer cannot
        // take its data down with it.
        let parked: Vec<SessionState> = {
            let mut map = self.inner.parked.lock().unwrap_or_else(|e| e.into_inner());
            map.drain().map(|(_, s)| s).collect()
        };
        for sess in parked {
            self.inner.stats.sessions_expired.add(1);
            finalize_session(&self.inner, sess);
        }
        Ok(self.inner.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// Poll interval for shutdown checks on blocking socket reads.
const READ_POLL: Duration = Duration::from_millis(200);

/// Send a producer an Ack every this many ingested chunks.
const ACK_EVERY: u64 = 16;

/// Reads more bytes into `dec`, honoring the read timeout for shutdown
/// polling. Returns false on EOF. A peer silent for the configured idle
/// timeout produces `ErrorKind::TimedOut` so the caller can evict it.
fn fill_decoder(inner: &Inner, stream: &mut TcpStream, dec: &mut FrameDecoder) -> io::Result<bool> {
    // Deterministic chaos hook: an injected fault at this site behaves
    // exactly like the network failing underneath the server.
    if let Some(plan) = &inner.cfg.faults {
        match plan.decide("net.server.read") {
            Some(Action::Io) => {
                return Err(io::Error::other("injected server read error"));
            }
            Some(Action::Disconnect) => return Ok(false),
            Some(Action::Slow(d)) => std::thread::sleep(d),
            Some(Action::Spin(d)) => rfd_fault::spin_for(d),
            _ => {}
        }
    }
    let mut buf = [0u8; 16 * 1024];
    let idle_t0 = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(false),
            Ok(n) => {
                inner.stats.bytes_in.add(n as u64);
                dec.push(&buf[..n]);
                return Ok(true);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if idle_t0.elapsed() >= inner.cfg.idle_timeout {
                    inner.stats.idle_evictions.add(1);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer idle past the timeout",
                    ));
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Pulls the next frame, reading from the socket as needed. `Ok(None)`
/// means clean EOF (or server shutdown).
fn next_frame(
    inner: &Inner,
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
) -> io::Result<Option<SeqFrame>> {
    loop {
        match dec.next_frame() {
            Ok(Some(sf)) => {
                inner.stats.frames_in.add(1);
                return Ok(Some(sf));
            }
            Ok(None) => {
                if !fill_decoder(inner, stream, dec)? {
                    return Ok(None);
                }
            }
            Err(e) => {
                inner.stats.decode_errors.add(1);
                return Err(e.into());
            }
        }
    }
}

fn handle_connection(inner: Arc<Inner>, mut stream: TcpStream) {
    inner.stats.connections.add(1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut dec = FrameDecoder::new();
    match next_frame(&inner, &mut stream, &mut dec) {
        Ok(Some(SeqFrame {
            frame: Frame::Hello(Role::Producer),
            ..
        })) => handle_producer(&inner, stream, dec),
        Ok(Some(SeqFrame {
            frame: Frame::Hello(Role::Subscriber),
            ..
        })) => handle_subscriber(&inner, stream, dec),
        Ok(Some(_)) => {
            // First frame must be a Hello.
            inner.stats.decode_errors.add(1);
        }
        Ok(None) | Err(_) => {}
    }
}

/// Sends one frame on the server→peer direction, tracking counters.
fn send_frame(
    inner: &Inner,
    stream: &mut TcpStream,
    out_seq: &mut u32,
    frame: &Frame,
) -> io::Result<()> {
    let bytes = encode_frame(frame, *out_seq);
    *out_seq = out_seq.wrapping_add(1);
    stream.write_all(&bytes)?;
    inner.stats.frames_out.add(1);
    inner.stats.bytes_out.add(bytes.len() as u64);
    Ok(())
}

/// How a producer connection's ingest loop ended.
enum IngestOutcome {
    /// Bye received or the server is shutting down: the session is over.
    Clean,
    /// The connection died mid-stream (EOF, IO error, malformed frame,
    /// idle eviction): the session may be resumed on a new connection.
    Dropped,
}

fn handle_producer(inner: &Arc<Inner>, mut stream: TcpStream, mut dec: FrameDecoder) {
    inner.stats.producers.add(1);
    let mut out_seq = 0u32;
    // The first frame picks the path: StreamMeta opens a new session,
    // Resume reattaches to a parked one.
    let mut sess = match next_frame(inner, &mut stream, &mut dec) {
        Ok(Some(SeqFrame {
            frame: Frame::StreamMeta(meta),
            ..
        })) => {
            let id = inner.next_session.fetch_add(1, Ordering::SeqCst) + 1;
            inner.hub.publish(HubMsg::Meta(meta));
            let queue: ChunkQueue<Vec<Complex32>> =
                ChunkQueue::new(inner.cfg.queue_cap, inner.cfg.overflow);
            let analysis = {
                let inner = inner.clone();
                let queue = queue.clone();
                std::thread::Builder::new()
                    .name("rfd-net-analysis".into())
                    .spawn(move || analysis_thread(inner, queue, meta))
                    .expect("spawn analysis thread")
            };
            SessionState {
                id,
                meta,
                queue,
                analysis,
                expected: 0,
                wall_us: 0,
                deadline: Instant::now(),
            }
        }
        Ok(Some(SeqFrame {
            frame: Frame::Resume { session, .. },
            ..
        })) => {
            // The old connection thread may still be noticing the EOF the
            // client forced before reconnecting; give it a moment to park.
            let wait_until = Instant::now() + Duration::from_secs(1);
            let found = loop {
                let hit = {
                    let mut parked = inner.parked.lock().unwrap_or_else(|e| e.into_inner());
                    parked.remove(&session)
                };
                match hit {
                    Some(s) => break Some(s),
                    None if Instant::now() >= wait_until => break None,
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            };
            match found {
                Some(s) => {
                    inner.stats.resumes.add(1);
                    s
                }
                None => {
                    // Unknown (already finalized) session: refuse cleanly.
                    let _ = send_frame(inner, &mut stream, &mut out_seq, &Frame::Bye);
                    return;
                }
            }
        }
        Ok(_) => {
            inner.stats.decode_errors.add(1);
            return;
        }
        Err(_) => return,
    };
    // Authoritative position: the client truncates/rewinds to this.
    inner.stats.acks_sent.add(1);
    let _ = send_frame(
        inner,
        &mut stream,
        &mut out_seq,
        &Frame::Ack {
            session: sess.id,
            position: sess.expected,
        },
    );

    let outcome = ingest_loop(inner, &mut stream, &mut dec, &mut out_seq, &mut sess);
    let shutting_down = inner.shutdown.load(Ordering::SeqCst);
    match outcome {
        IngestOutcome::Dropped if !inner.cfg.resume_grace.is_zero() && !shutting_down => {
            sess.deadline = Instant::now() + inner.cfg.resume_grace;
            inner.stats.sessions_parked.add(1);
            inner
                .parked
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(sess.id, sess);
        }
        IngestOutcome::Clean | IngestOutcome::Dropped => finalize_session(inner, sess),
    }
}

/// Pumps sample chunks from one producer connection into the session.
fn ingest_loop(
    inner: &Arc<Inner>,
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    out_seq: &mut u32,
    sess: &mut SessionState,
) -> IngestOutcome {
    let mut expect_seq: Option<u32> = None;
    let mut saturated = false;
    let mut ingest_t0: Option<Instant> = None;
    let mut chunks_since_ack = 0u64;
    let outcome = loop {
        let SeqFrame { seq, frame } = match next_frame(inner, stream, dec) {
            Ok(Some(sf)) => sf,
            // EOF: clean only during server shutdown, otherwise the peer
            // vanished without a Bye and may come back with a Resume.
            Ok(None) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break IngestOutcome::Clean;
                }
                break IngestOutcome::Dropped;
            }
            Err(_) => break IngestOutcome::Dropped,
        };
        // Loss accounting across the frame sequence (a drop-oldest
        // relay upstream may legitimately skip numbers). A reconnect
        // restarts the peer's sequence at zero; resync silently.
        if let Some(want) = expect_seq {
            if seq != want {
                inner.stats.seq_gaps.add(u64::from(seq.wrapping_sub(want)));
            }
        }
        expect_seq = Some(seq.wrapping_add(1));
        match frame {
            Frame::SampleChunk { start_sample, iq } => {
                ingest_t0.get_or_insert_with(Instant::now);
                inner.stats.chunks_in.add(1);
                let n = iq.len() as u64;
                let end = start_sample.saturating_add(n);
                // Contiguity bookkeeping against the acknowledged
                // position: a resend after reconnect overlaps it (skip the
                // overlap), a chunk starting past it means lost samples.
                if end <= sess.expected {
                    inner.stats.chunks_duplicate.add(1);
                    continue;
                }
                if start_sample > sess.expected {
                    inner.stats.sample_gaps.add(start_sample - sess.expected);
                }
                let skip = sess.expected.saturating_sub(start_sample) as usize;
                sess.expected = end;
                let scale = sess.meta.scale;
                let samples: Vec<Complex32> = iq[skip..]
                    .iter()
                    .map(|&(i, q)| from_i16_iq(i, q).scale(scale))
                    .collect();
                inner.stats.samples_in.add(samples.len() as u64);
                // Throttle advisory on the rising edge of saturation
                // (not every chunk, so the advisory itself cannot
                // flood the reverse path).
                let depth = sess.queue.len();
                if depth >= sess.queue.capacity() {
                    if !saturated {
                        saturated = true;
                        inner.stats.throttles_sent.add(1);
                        inner.emit(
                            rfd_telemetry::event::EventKind::ThrottleAdvisory,
                            format!(
                                "session {} ingest queue at {depth}/{}",
                                sess.id,
                                sess.queue.capacity()
                            ),
                        );
                        let _ = send_frame(
                            inner,
                            stream,
                            out_seq,
                            &Frame::Throttle {
                                depth: depth as u32,
                                cap: sess.queue.capacity() as u32,
                            },
                        );
                    }
                } else {
                    saturated = false;
                }
                if sess.queue.push(samples).is_err() {
                    break IngestOutcome::Clean; // queue closed (shutdown)
                }
                if let Some(g) = &inner.stats.queue_gauge {
                    g.set(sess.queue.len() as i64);
                }
                // Periodic durable-progress ack (best effort; the write
                // failing will surface on the next read anyway).
                chunks_since_ack += 1;
                if chunks_since_ack >= ACK_EVERY {
                    chunks_since_ack = 0;
                    inner.stats.acks_sent.add(1);
                    let _ = send_frame(
                        inner,
                        stream,
                        out_seq,
                        &Frame::Ack {
                            session: sess.id,
                            position: sess.expected,
                        },
                    );
                }
            }
            Frame::Heartbeat => {}
            Frame::Bye => break IngestOutcome::Clean,
            // Producers have no business sending anything else.
            _ => {
                inner.stats.decode_errors.add(1);
                break IngestOutcome::Dropped;
            }
        }
    };
    if let Some(t0) = ingest_t0 {
        sess.wall_us += t0.elapsed().as_micros() as u64;
    }
    outcome
}

/// Closes a session's ingest queue, joins its analysis thread, and books
/// the session-level statistics. Runs exactly once per session.
fn finalize_session(inner: &Arc<Inner>, sess: SessionState) {
    sess.queue.close();
    let _ = sess.analysis.join();
    inner.stats.chunks_dropped.add(sess.queue.dropped());
    inner.stats.ingest_wall_us.add(sess.wall_us);
    inner
        .stats
        .ingest_signal_us
        .add((sess.expected as f64 / sess.meta.sample_rate * 1e6) as u64);
    inner.stats.sessions.add(1);
    inner.sessions_done.fetch_add(1, Ordering::SeqCst);
    if inner.cfg.once && !inner.shutdown.swap(true, Ordering::SeqCst) {
        inner.hub.publish(HubMsg::Bye);
    }
}

fn analysis_thread(inner: Arc<Inner>, queue: ChunkQueue<Vec<Complex32>>, meta: StreamMeta) {
    let mut samples: Vec<Complex32> = Vec::new();
    while let Some(chunk) = queue.pop() {
        samples.extend_from_slice(&chunk);
        if let Some(g) = &inner.stats.queue_gauge {
            g.set(queue.len() as i64);
        }
    }
    let records = {
        let mut pipeline = inner.pipeline.lock().unwrap_or_else(|e| e.into_inner());
        pipeline.analyze(&meta, samples)
    };
    for rec in records {
        inner.stats.records_published.add(1);
        let t0 = inner.fanout_hist.as_ref().map(|_| Instant::now());
        inner.hub.publish(HubMsg::Record(rec));
        if let (Some(h), Some(t0)) = (&inner.fanout_hist, t0) {
            h.record(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    inner.note_evictions();
    inner
        .hub
        .publish(HubMsg::Stats(inner.snapshot().to_json().to_json()));
}

fn handle_subscriber(inner: &Arc<Inner>, stream: TcpStream, dec: FrameDecoder) {
    let ctx = SubscriberCtx {
        hub: &inner.hub,
        stats: &inner.stats,
        shutdown: &inner.shutdown,
        heartbeat: inner.cfg.heartbeat,
    };
    serve_subscriber(&ctx, stream, dec);
}

/// What [`serve_subscriber`] needs from its server — shared between the
/// single-stream server and the fleet server, which keep different
/// surrounding state.
pub(crate) struct SubscriberCtx<'a> {
    pub(crate) hub: &'a RecordHub,
    pub(crate) stats: &'a NetStats,
    pub(crate) shutdown: &'a AtomicBool,
    pub(crate) heartbeat: Duration,
}

/// The wire frame for one hub message, plus whether it is the global
/// end-of-stream marker (after which the connection closes).
pub(crate) fn hub_msg_frame(msg: HubMsg) -> (Frame, bool) {
    match msg {
        HubMsg::Meta(m) => (Frame::StreamMeta(m), false),
        HubMsg::Record(r) => (Frame::Record(r), false),
        HubMsg::Stats(s) => (Frame::Stats(s), false),
        HubMsg::Bye => (Frame::Bye, true),
        HubMsg::SourceMeta { source, meta } => (
            Frame::SourceHello {
                source: source.to_string(),
                meta,
            },
            false,
        ),
        HubMsg::SourceRecord { source, record } => (
            Frame::SourceRecord {
                source: source.to_string(),
                record,
            },
            false,
        ),
        HubMsg::SourceBye { source } => (
            Frame::SourceBye {
                source: source.to_string(),
            },
            false,
        ),
    }
}

/// Sends one frame on the server→peer direction, tracking counters on a
/// bare [`NetStats`] (no `Inner` required).
pub(crate) fn send_frame_on(
    stats: &NetStats,
    stream: &mut TcpStream,
    out_seq: &mut u32,
    frame: &Frame,
) -> io::Result<()> {
    let bytes = encode_frame(frame, *out_seq);
    *out_seq = out_seq.wrapping_add(1);
    stream.write_all(&bytes)?;
    stats.frames_out.add(1);
    stats.bytes_out.add(bytes.len() as u64);
    Ok(())
}

/// Serves one subscriber connection after its Hello: the optional Resume
/// handshake, the replay backlog, then the live queue with heartbeats and
/// shutdown drain. Used by both server flavors.
pub(crate) fn serve_subscriber(
    ctx: &SubscriberCtx<'_>,
    mut stream: TcpStream,
    mut dec: FrameDecoder,
) {
    ctx.stats.subscribers.add(1);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // An optional Resume may follow the Hello: `position` is how many
    // stream messages the subscriber has already seen (u64::MAX, or no
    // Resume at all, means live-only). Wait briefly so a bare-Hello
    // subscriber is not stalled.
    let mut pos: Option<u64> = None;
    let resume_deadline = Instant::now() + Duration::from_millis(250);
    loop {
        match dec.next_frame() {
            Ok(Some(SeqFrame {
                frame: Frame::Resume { position, .. },
                ..
            })) => {
                ctx.stats.frames_in.add(1);
                pos = (position != u64::MAX).then_some(position);
                break;
            }
            Ok(Some(_)) => {
                ctx.stats.frames_in.add(1);
                break;
            }
            Ok(None) => {
                if Instant::now() >= resume_deadline || ctx.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let mut buf = [0u8; 1024];
                match stream.read(&mut buf) {
                    Ok(0) => return,
                    Ok(n) => {
                        ctx.stats.bytes_in.add(n as u64);
                        dec.push(&buf[..n]);
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut
                            || e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
            Err(_) => {
                ctx.stats.decode_errors.add(1);
                return;
            }
        }
    }
    let (sub, replay, start, _lost) = ctx.hub.subscribe_from(pos);
    let mut out_seq = 0u32;
    // Ack the Hello the moment the subscription is registered, so a client
    // returning from connect() is guaranteed to see every record published
    // afterwards (without this, a fast producer session could complete
    // before the accept loop registers the subscriber). The Ack that
    // follows tells the client the absolute stream position of the first
    // message it will receive, anchoring its resume counter.
    if send_frame_on(ctx.stats, &mut stream, &mut out_seq, &Frame::Heartbeat).is_err()
        || send_frame_on(
            ctx.stats,
            &mut stream,
            &mut out_seq,
            &Frame::Ack {
                session: 0,
                position: start,
            },
        )
        .is_err()
    {
        ctx.hub.unsubscribe(sub.id);
        return;
    }
    // Replay the backlog the reconnecting subscriber missed; the live
    // queue continues seamlessly after it (the hub guarantees no gap and
    // no duplicate between the two).
    for msg in replay {
        let (frame, is_bye) = hub_msg_frame(msg);
        if is_bye {
            continue;
        }
        if send_frame_on(ctx.stats, &mut stream, &mut out_seq, &frame).is_err() {
            ctx.hub.unsubscribe(sub.id);
            return;
        }
    }
    loop {
        // During shutdown, keep draining queued messages (the hub's Bye is
        // already behind them for existing subscribers) — cutting over to
        // an immediate Bye here would drop the backlog on the floor. The
        // short timeout only bounds how long a post-Bye subscriber (whose
        // queue will never receive one) waits before being told.
        let timeout = if ctx.shutdown.load(Ordering::SeqCst) {
            Duration::from_millis(20)
        } else {
            ctx.heartbeat
        };
        match sub.rx.recv_timeout(timeout) {
            Ok(msg) => {
                let (frame, is_bye) = hub_msg_frame(msg);
                if send_frame_on(ctx.stats, &mut stream, &mut out_seq, &frame).is_err() || is_bye {
                    break;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    let _ = send_frame_on(ctx.stats, &mut stream, &mut out_seq, &Frame::Bye);
                    break;
                }
                // Idle: heartbeat keeps the connection observably alive and
                // doubles as a dead-peer probe (the write fails once the
                // subscriber is gone).
                if send_frame_on(ctx.stats, &mut stream, &mut out_seq, &Frame::Heartbeat).is_err() {
                    break;
                }
            }
            // Evicted by the hub as a slow consumer.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    ctx.hub.unsubscribe(sub.id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{RecordSubscriber, SendRate, SubEvent, TraceSender};

    fn stub_pipeline() -> Box<dyn Pipeline> {
        Box::new(
            |meta: &StreamMeta, samples: Vec<Complex32>| -> Vec<RecordMsg> {
                vec![RecordMsg {
                    start_us: 0.0,
                    end_us: samples.len() as f64 / meta.sample_rate * 1e6,
                    line: format!("session of {} samples", samples.len()),
                }]
            },
        )
    }

    #[test]
    fn loopback_session_reaches_a_subscriber() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                once: true,
                ..Default::default()
            },
            stub_pipeline(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        let mut sub = RecordSubscriber::connect(addr).unwrap();
        let samples: Vec<Complex32> = (0..10_000)
            .map(|i| Complex32::new((i as f32 * 0.01).sin(), 0.0))
            .collect();
        let mut tx = TraceSender::connect(addr).unwrap();
        let report = tx
            .send_samples(
                StreamMeta {
                    sample_rate: 1e6,
                    center_hz: 0.0,
                    scale: 1.0,
                },
                &samples,
                SendRate::Max,
                1024,
            )
            .unwrap();
        tx.finish().unwrap();
        assert_eq!(report.samples, 10_000);

        let mut lines = Vec::new();
        let mut saw_stats = false;
        loop {
            match sub.next_event().unwrap() {
                SubEvent::Record(r) => lines.push(r.line),
                SubEvent::Stats(_) => saw_stats = true,
                SubEvent::Bye => break,
                _ => {}
            }
        }
        assert_eq!(lines, vec!["session of 10000 samples".to_string()]);
        assert!(saw_stats, "session must publish a stats document");

        let stats = run.join().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.samples_in, 10_000);
        assert_eq!(stats.producers, 1);
        assert_eq!(stats.subscribers, 1);
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.ingest_rt_ratio() > 0.0);
        drop(handle);
    }

    #[test]
    fn malformed_first_frame_is_counted_and_dropped() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::default(),
            stub_pipeline(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n this is not RFDN")
            .unwrap();
        drop(s);
        // Give the connection thread time to decode and reject.
        let t0 = Instant::now();
        while handle.stats().decode_errors == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.stats().decode_errors, 1);
        handle.shutdown();
        run.join().unwrap();
    }

    #[test]
    fn dropped_producer_resumes_without_loss_or_duplication() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                once: true,
                resume_grace: Duration::from_secs(10),
                ..Default::default()
            },
            stub_pipeline(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run().unwrap());
        let mut sub = RecordSubscriber::connect(addr).unwrap();

        let meta = StreamMeta {
            sample_rate: 1e6,
            center_hz: 0.0,
            scale: 1.0,
        };
        let chunk = |start: u64, n: usize| Frame::SampleChunk {
            start_sample: start,
            iq: vec![(7, -7); n],
        };
        // First connection: meta + samples [0, 2000), then vanish mid-stream.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            for (seq, f) in [
                Frame::Hello(Role::Producer),
                Frame::StreamMeta(meta),
                chunk(0, 1000),
                chunk(1000, 1000),
            ]
            .iter()
            .enumerate()
            {
                s.write_all(&encode_frame(f, seq as u32)).unwrap();
            }
            s.flush().unwrap();
            // Let the server ingest before the abrupt close.
            std::thread::sleep(Duration::from_millis(300));
        } // dropped without Bye → session parks

        // Second connection: resume, resend the overlap, finish the stream.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut seq = 0u32;
        for f in [
            Frame::Hello(Role::Producer),
            Frame::Resume {
                session: 1,
                position: 0,
            },
        ] {
            s.write_all(&encode_frame(&f, seq)).unwrap();
            seq += 1;
        }
        // The server's authoritative ack tells us where to resume.
        let mut dec = FrameDecoder::new();
        let acked = loop {
            let mut buf = [0u8; 1024];
            if let Some(SeqFrame {
                frame: Frame::Ack { session, position },
                ..
            }) = dec.next_frame().unwrap()
            {
                assert_eq!(session, 1);
                break position;
            }
            let n = s.read(&mut buf).unwrap();
            assert!(n > 0, "server closed before acking the resume");
            dec.push(&buf[..n]);
        };
        assert_eq!(acked, 2000, "server must have ingested both chunks");
        // Resend an overlapping chunk (dedup) plus the remainder.
        for f in [chunk(1000, 1000), chunk(2000, 1000), Frame::Bye] {
            s.write_all(&encode_frame(&f, seq)).unwrap();
            seq += 1;
        }
        s.flush().unwrap();

        let mut lines = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::Record(r) => lines.push(r.line),
                SubEvent::Bye => break,
                _ => {}
            }
        }
        assert_eq!(lines, vec!["session of 3000 samples".to_string()]);

        let stats = run.join().unwrap();
        assert_eq!(stats.sessions, 1, "one logical session across reconnects");
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.sessions_parked, 1);
        assert_eq!(stats.samples_in, 3000, "duplicates must not be recounted");
        assert_eq!(stats.chunks_duplicate, 1);
        assert_eq!(stats.sample_gaps, 0);
        assert!(stats.acks_sent >= 2);
    }

    #[test]
    fn resuming_an_unknown_session_is_refused_with_a_bye() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::default(),
            stub_pipeline(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
            .unwrap();
        s.write_all(&encode_frame(
            &Frame::Resume {
                session: 999,
                position: 0,
            },
            1,
        ))
        .unwrap();
        let mut dec = FrameDecoder::new();
        let refused = loop {
            let mut buf = [0u8; 1024];
            match dec.next_frame().unwrap() {
                Some(SeqFrame {
                    frame: Frame::Bye, ..
                }) => break true,
                Some(_) => continue,
                None => {}
            }
            match s.read(&mut buf) {
                Ok(0) => break false,
                Ok(n) => dec.push(&buf[..n]),
                Err(_) => break false,
            }
        };
        assert!(refused, "unknown session must be refused with a Bye");
        handle.shutdown();
        run.join().unwrap();
    }

    #[test]
    fn drop_oldest_overflow_counts_dropped_chunks() {
        // A pipeline that sleeps on the first pop... simpler: tiny queue and
        // a pipeline thread that can't drain until the producer finishes is
        // not constructible here (analysis drains concurrently), so instead
        // verify the policy end to end by flooding a cap-1 queue faster
        // than the drainer can accumulate. With DropOldest, sessions always
        // terminate; dropped is allowed to be zero on a fast machine, so
        // assert only conservation: chunks_in == analyzed + dropped is not
        // observable — assert the session completes and samples_in counts
        // every wire sample.
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                queue_cap: 1,
                overflow: OverflowPolicy::DropOldest,
                once: true,
                ..Default::default()
            },
            stub_pipeline(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run().unwrap());
        let samples: Vec<Complex32> = vec![Complex32::new(0.1, -0.1); 50_000];
        let mut tx = TraceSender::connect(addr).unwrap();
        tx.send_samples(
            StreamMeta {
                sample_rate: 1e6,
                center_hz: 0.0,
                scale: 1.0,
            },
            &samples,
            SendRate::Max,
            512,
        )
        .unwrap();
        tx.finish().unwrap();
        let stats = run.join().unwrap();
        assert_eq!(stats.samples_in, 50_000);
        assert_eq!(stats.sessions, 1);
    }
}
