//! The fleet plane: one server, N concurrent capture senders, one merged
//! record stream.
//!
//! ```text
//!  sender "roof"  ──TCP──▶ ┐                        ┌─▶ pipeline("roof")  ─┐
//!  sender "lab-3" ──TCP──▶ ├─ readiness loop ──────▶├─▶ pipeline("lab-3") ─┼─▶ RecordHub
//!  sender "van"   ──TCP──▶ ┘  (one thread,          └─▶ pipeline("van")   ─┘  (tagged)
//!                             nonblocking sockets)
//!  subscriber ◀──TCP── per-sub bounded queue ◀──────────────────────────────────┘
//! ```
//!
//! Where [`Server`](crate::Server) dedicates a blocking thread to every
//! connection and serializes all sessions through one shared pipeline, the
//! fleet server is built for *many concurrent senders*:
//!
//! * **One readiness loop** owns every producer socket. Sockets are
//!   nonblocking; the loop polls them round-robin (the same std-only
//!   poll-style the obs scrape endpoint uses — no epoll dependency), so a
//!   hundred senders cost one thread, not a hundred.
//! * **A source handshake** ([`Frame::SourceHello`]) binds each connection
//!   to a stable source id. Ids are unique for the life of the server — a
//!   second claim on a live or parked id is treated as the same sensor
//!   reconnecting (resume), while a completed or evicted id is refused.
//! * **Per-source sharding**: every source gets its own bounded
//!   [`ChunkQueue`] and its own [`Pipeline`] instance from the injected
//!   factory, drained by its own analysis thread. Sources never contend on
//!   a pipeline lock, and one source's backlog cannot delay another's
//!   analysis.
//! * **Per-source backpressure**: a full queue stops the loop from reading
//!   that source's socket (TCP pushes back to the sender) and sends a
//!   Throttle advisory on the saturation rising edge — other sockets keep
//!   being serviced.
//! * **Tagged fan-out**: records enter the [`RecordHub`] as
//!   [`HubMsg::SourceRecord`] so subscribers (and `rfdump watch --source`)
//!   can filter per source.
//!
//! # Per-source resume
//!
//! A producer that dies without a clean Bye does not lose its session.
//! The source is *parked* for [`FleetConfig::resume_grace`]: its ingest
//! queue stays open and its analysis thread keeps blocking on the queue. A
//! sender that reconnects and re-handshakes with the same source id is
//! reattached — the server answers the [`Frame::SourceHello`] with an
//! [`Frame::Ack`] carrying the contiguous ingest high-water mark, the
//! client seeks to that position, and any overlap it resends is deduped by
//! the same contiguity accounting an uninterrupted session uses. The
//! per-source record stream is therefore byte-identical to a run that never
//! dropped. Ack positions are truthful: the high-water mark only advances
//! when a chunk is actually committed to the source queue, so a chunk
//! parked by backpressure is never covered by an ack it could lose.
//!
//! A reconnect that lands *before* the loop notices the old socket died is
//! a takeover: every attach bumps the source's epoch, and a connection
//! whose epoch is stale is dropped without touching the source ("newest
//! connection wins" — deterministic, no grace-timing races).
//!
//! # Source health
//!
//! Every source carries a four-state health machine driven by its own
//! misbehavior, so one bad sensor degrades *itself* and not the fleet:
//!
//! ```text
//!   healthy ──flap_score ≥ flap_threshold──▶ flapping
//!      ▲                                        │
//!      └──score damps ≤ threshold/2 (progress)──┘
//!   flapping ──flap_score ≥ quarantine_flaps──▶ quarantined
//!   any      ──decode errors ≥ quarantine_errors──▶ quarantined
//!   quarantined ──rejects ≥ evict_rejects──▶ evicted
//!   parked   ──resume grace expires──▶ evicted
//! ```
//!
//! Disconnects raise a per-source flap score; sustained progress (each ack
//! boundary) damps it, and the flapping → healthy transition waits for the
//! score to fall to half the threshold (hysteresis, no state thrash).
//! Quarantine finalizes the stream immediately — the samples that arrived
//! are analyzed and published, the id refuses further claims — and enough
//! refused reconnect attempts evict the id outright. Transitions emit
//! typed events (`source_flapping` / `source_quarantined` /
//! `source_evicted` / `source_resumed`) and `net.fleet.*` counters.
//!
//! # Overload admission control (bounded-latency mode)
//!
//! With [`FleetConfig::latency_budget`] set, every source also carries a
//! *deadline* histogram: per-chunk queue wait (committed → popped by the
//! analysis thread) plus per-record finalize → publish lag. A periodic
//! sweep in the readiness loop diffs each histogram through a
//! [`HistogramWindow`] and compares the windowed p99 against the budget,
//! walking a per-source shed ladder with the same streak hysteresis the
//! in-process governor uses:
//!
//! ```text
//!   none ──p99 over budget (2 sweeps)──▶ throttle ──again──▶ drop-oldest
//!     ▲                                     │                    │
//!     └────────── p99 < 0.8 × budget for 4 sweeps ◀──────────────┘
//! ```
//!
//! Only the *worst* offender escalates per sweep, so a fleet-wide stall
//! sheds the source that is actually blowing the budget first. The rungs:
//! **throttle** repeats Throttle advisories to the sender each violating
//! sweep (beyond the saturation rising edge); **drop-oldest** forcibly
//! discards the oldest queued chunk when that source's queue is full, even
//! under the lossless Block policy — the shed source trades fidelity for
//! latency while every unshed source stays byte-identical. While any
//! source is over budget the fleet refuses admission to *new* source ids
//! (`admission_refused` events; resumes of known sources are still
//! honored). Shedding never escalates the health machine — a slow source
//! is not a misbehaving source.
//!
//! # Chaos sites
//!
//! Fault plans can target the fleet plane directly: `net.fleet.accept`
//! (drop or delay incoming connections), `net.fleet.source.<id>`
//! (disconnect / corrupt / slow one source's read path), and
//! `net.fleet.analysis.<id>` (slow/cpu-starve one source's consumer per
//! popped chunk — the overload knob for bounded-latency chaos tests), in
//! addition to the `net.server.read` site shared with the single-stream
//! server.
//!
//! Determinism: each source's samples are accumulated contiguously and
//! analyzed by a private pipeline exactly like an offline run of that trace
//! alone, and its records are published in one burst (meta, records in
//! offline order, source-bye) under the hub lock per message with no
//! interleaving *within* a source. A filtered subscriber therefore sees a
//! byte-identical record stream to `rfdump -r trace` at any worker count.
//! Merge order *between* sources is arrival order and intentionally
//! unspecified.

use crate::frame::{Frame, FrameDecoder, Role, SeqFrame, StreamMeta};
use crate::hub::{HubMsg, RecordHub, Subscription};
use crate::queue::{ChunkQueue, OverflowPolicy, TryPushError};
use crate::server::{serve_subscriber, NetStats, NetStatsSnapshot, Pipeline, SubscriberCtx};
use rfd_dsp::complex::from_i16_iq;
use rfd_dsp::Complex32;
use rfd_fault::{Action, FaultPlan};
use rfd_telemetry::{Counter, Gauge, Histogram, HistogramWindow, Registry};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds one fresh [`Pipeline`] per fleet source. The source id is passed
/// so factories can shard side effects (e.g. one journal directory per
/// source).
pub type PipelineFactory = Box<dyn Fn(&str) -> Box<dyn Pipeline> + Send + Sync>;

/// Send a producer an Ack every this many ingested chunks (matches the
/// single-stream server).
const ACK_EVERY: u64 = 16;

/// Idle sleep between readiness sweeps when no socket made progress.
const POLL: Duration = Duration::from_millis(1);

/// Cadence of the bounded-latency deadline sweep (budget runs only).
const LATENCY_SWEEP: Duration = Duration::from_millis(50);

/// Consecutive violating sweeps before a source's shed rung escalates.
const SHED_VIOLATE_STREAK: u32 = 2;

/// Consecutive clean sweeps before a source's shed rung relaxes.
const SHED_RESTORE_STREAK: u32 = 4;

/// A sweep counts as clean only below this fraction of the budget
/// (hysteresis: the dead zone between here and the budget holds state).
const SHED_LOW_WATER: f64 = 0.8;

/// Shed ladder rungs (per source, `SourceShared::shed`).
const SHED_NONE: u8 = 0;
const SHED_THROTTLE: u8 = 1;
const SHED_DROP: u8 = 2;

/// A shed rung as its stats-json / event string.
fn shed_str(rung: u8) -> &'static str {
    match rung {
        SHED_THROTTLE => "throttle",
        SHED_DROP => "drop-oldest",
        _ => "none",
    }
}

/// Fleet server knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-source ingest queue capacity, in sample chunks.
    pub queue_cap: usize,
    /// What a full per-source queue does to its sender.
    pub overflow: OverflowPolicy,
    /// Per-subscriber record queue capacity (slow-consumer eviction bound).
    pub sub_queue_cap: usize,
    /// Shut down cleanly after this many sources complete (bounded runs:
    /// tests, CI, benchmarks). `None` runs until [`FleetHandle::shutdown`].
    pub expect: Option<u64>,
    /// Idle interval after which a subscriber connection gets a Heartbeat.
    pub heartbeat: Duration,
    /// A producer socket silent for this long is evicted (its source is
    /// parked for `resume_grace` like any other disconnect).
    pub idle_timeout: Duration,
    /// How long a dropped source stays parked awaiting a reconnect before
    /// it is evicted and finalized. Zero disables per-source resume (a
    /// dropped sender finalizes immediately).
    pub resume_grace: Duration,
    /// Flap score at which a source is marked flapping. Each disconnect
    /// adds one; each ack boundary of progress removes one.
    pub flap_threshold: u64,
    /// Flap score at which a flapping source is quarantined.
    pub quarantine_flaps: u64,
    /// Attributed decode errors at which a source is quarantined.
    pub quarantine_errors: u64,
    /// Refused reconnect attempts at which a quarantined source is evicted.
    pub evict_rejects: u64,
    /// Fault-injection plan for chaos testing (`net.server.read`,
    /// `net.fleet.accept`, `net.fleet.source.<id>` sites).
    pub faults: Option<Arc<FaultPlan>>,
    /// Bounded-latency mode: per-source deadline budget. When set, the
    /// deadline sweep sheds sources whose windowed p99 (queue wait +
    /// finalize → publish lag) exceeds this budget and refuses admission
    /// to new sources while the fleet is over budget. `None` (the
    /// default) disables overload control entirely.
    pub latency_budget: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            overflow: OverflowPolicy::Block,
            sub_queue_cap: 4096,
            expect: None,
            heartbeat: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
            resume_grace: Duration::from_secs(5),
            flap_threshold: 3,
            quarantine_flaps: 8,
            quarantine_errors: 3,
            evict_rejects: 5,
            faults: None,
            latency_budget: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Source health
// ---------------------------------------------------------------------------

/// The per-source health state machine. States only escalate (except the
/// damped flapping → healthy recovery); see the module docs for the
/// transition diagram.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceHealth {
    /// Streaming normally.
    Healthy = 0,
    /// Disconnecting faster than it makes progress.
    Flapping = 1,
    /// Misbehaving enough to be cut off: the stream is finalized with the
    /// samples that arrived and reconnects are refused.
    Quarantined = 2,
    /// Gone for good: resume grace expired or a quarantined id kept
    /// hammering the server.
    Evicted = 3,
}

impl SourceHealth {
    /// The state as its stats-json / event string.
    pub fn as_str(self) -> &'static str {
        match self {
            SourceHealth::Healthy => "healthy",
            SourceHealth::Flapping => "flapping",
            SourceHealth::Quarantined => "quarantined",
            SourceHealth::Evicted => "evicted",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => SourceHealth::Healthy,
            1 => SourceHealth::Flapping,
            2 => SourceHealth::Quarantined,
            _ => SourceHealth::Evicted,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-source state and statistics
// ---------------------------------------------------------------------------

/// One source's shared state: written by the readiness loop (ingest side)
/// and its analysis thread (publish side), read by stats snapshots.
struct SourceShared {
    name: Arc<str>,
    meta: StreamMeta,
    /// Ingest queue. Items carry their commit instant so the analysis
    /// thread can record queue wait into the deadline histogram.
    queue: ChunkQueue<(Instant, Vec<Complex32>)>,
    /// Join ordinal, echoed as the Ack session id so a resuming sender can
    /// tell its session survived.
    session: u64,
    /// Attach generation. Bumped on every (re)attach; a connection whose
    /// recorded epoch is stale has been superseded and must not finalize
    /// or park the source.
    epoch: AtomicU64,
    chunks_in: AtomicU64,
    samples_in: AtomicU64,
    chunks_duplicate: AtomicU64,
    sample_gaps: AtomicU64,
    throttles: AtomicU64,
    records: AtomicU64,
    /// Contiguous ingest high-water mark (next expected sample index).
    /// Advances only when a chunk is committed to the queue, so acks are
    /// truthful under backpressure.
    expected: AtomicU64,
    /// Ingest wall time, µs (first chunk to stream close).
    ingest_wall_us: AtomicU64,
    done: AtomicBool,
    /// Queue closed; the stream can no longer be resumed.
    finalized: AtomicBool,
    /// Health state machine inputs and state.
    health: AtomicU8,
    disconnects: AtomicU64,
    resumes: AtomicU64,
    flap_score: AtomicU64,
    flaps: AtomicU64,
    decode_errors: AtomicU64,
    rejects: AtomicU64,
    /// Cached chaos site name (`net.fleet.source.<id>`).
    chaos_site: String,
    /// Per-record publish duration, µs — the source's fan-out latency.
    fanout: Histogram,
    /// Deadline samples, µs: per-chunk queue wait plus per-record
    /// finalize → publish lag. The overload sweep reads this through
    /// `deadline_win`; recorded unconditionally (it is two `Instant`
    /// reads per chunk) so snapshots are populated even without a budget.
    deadline: Histogram,
    /// The sweep's windowed view over `deadline` (sweep thread only).
    deadline_win: Mutex<HistogramWindow>,
    /// Last windowed deadline p99 the sweep saw, µs (f64 bits).
    deadline_p99_bits: AtomicU64,
    /// Current shed rung (`SHED_NONE` / `SHED_THROTTLE` / `SHED_DROP`).
    shed: AtomicU8,
    /// Consecutive violating sweeps (escalation hysteresis).
    shed_violate: AtomicU32,
    /// Consecutive clean sweeps (restore hysteresis).
    shed_clean: AtomicU32,
    /// Set by the sweep when a Throttle advisory is owed; the ingest path
    /// consumes it so the frame rides the source's own connection.
    shed_throttle_pending: AtomicBool,
    /// `net.fleet.source.<id>.queue_depth` when a registry is attached.
    queue_gauge: Option<Arc<Gauge>>,
    samples_ctr: Option<Arc<Counter>>,
    records_ctr: Option<Arc<Counter>>,
}

impl SourceShared {
    fn health(&self) -> SourceHealth {
        SourceHealth::from_u8(self.health.load(Ordering::SeqCst))
    }

    fn shed_rung(&self) -> u8 {
        self.shed.load(Ordering::SeqCst)
    }
}

/// Point-in-time statistics for one fleet source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSnapshot {
    /// The stable source id.
    pub source: String,
    /// Sample chunks ingested.
    pub chunks_in: u64,
    /// Complex samples ingested.
    pub samples_in: u64,
    /// Chunks skipped as duplicates of already-ingested samples.
    pub chunks_duplicate: u64,
    /// Samples missing from the contiguous stream.
    pub sample_gaps: u64,
    /// Chunks discarded by the drop-oldest overflow policy.
    pub chunks_dropped: u64,
    /// Throttle advisories sent to this source's sender.
    pub throttles: u64,
    /// Records published for this source.
    pub records: u64,
    /// Signal time ingested, µs.
    pub ingest_signal_us: u64,
    /// Wall time spent ingesting, µs.
    pub ingest_wall_us: u64,
    /// Record publish (fan-out) latency samples.
    pub fanout_count: u64,
    /// Fan-out latency p50, µs.
    pub fanout_p50_us: f64,
    /// Fan-out latency p99, µs.
    pub fanout_p99_us: f64,
    /// Deadline samples recorded (queue waits + publish lags).
    pub deadline_count: u64,
    /// Last windowed deadline p99 the overload sweep saw, µs (0 before
    /// the first sweep or without a budget).
    pub deadline_p99_us: f64,
    /// Current shed rung (`"none"` / `"throttle"` / `"drop-oldest"`).
    pub shed: String,
    /// Health state.
    pub health: SourceHealth,
    /// Connection losses without a clean Bye.
    pub disconnects: u64,
    /// Successful session resumes after a disconnect.
    pub resumes: u64,
    /// Healthy → flapping transitions.
    pub flaps: u64,
    /// Malformed frames attributed to this source.
    pub decode_errors: u64,
    /// Reconnect attempts refused (quarantined/evicted/completed id).
    pub rejects: u64,
    /// Whether the source's stream has ended and been analyzed.
    pub done: bool,
}

impl SourceSnapshot {
    fn of(s: &SourceShared) -> Self {
        Self {
            source: s.name.to_string(),
            chunks_in: s.chunks_in.load(Ordering::Relaxed),
            samples_in: s.samples_in.load(Ordering::Relaxed),
            chunks_duplicate: s.chunks_duplicate.load(Ordering::Relaxed),
            sample_gaps: s.sample_gaps.load(Ordering::Relaxed),
            chunks_dropped: s.queue.dropped(),
            throttles: s.throttles.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            ingest_signal_us: (s.expected.load(Ordering::Relaxed) as f64 / s.meta.sample_rate * 1e6)
                as u64,
            ingest_wall_us: s.ingest_wall_us.load(Ordering::Relaxed),
            fanout_count: s.fanout.count(),
            fanout_p50_us: s.fanout.quantile(0.5),
            fanout_p99_us: s.fanout.quantile(0.99),
            deadline_count: s.deadline.count(),
            deadline_p99_us: f64::from_bits(s.deadline_p99_bits.load(Ordering::Relaxed)),
            shed: shed_str(s.shed_rung()).to_string(),
            health: s.health(),
            disconnects: s.disconnects.load(Ordering::Relaxed),
            resumes: s.resumes.load(Ordering::Relaxed),
            flaps: s.flaps.load(Ordering::Relaxed),
            decode_errors: s.decode_errors.load(Ordering::Relaxed),
            rejects: s.rejects.load(Ordering::Relaxed),
            done: s.done.load(Ordering::Relaxed),
        }
    }

    /// The snapshot as a JSON object (one entry of the stats-json v9
    /// `fleet.per_source` map).
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        J::obj(vec![
            ("chunks_in", n(self.chunks_in)),
            ("samples_in", n(self.samples_in)),
            ("chunks_duplicate", n(self.chunks_duplicate)),
            ("sample_gaps", n(self.sample_gaps)),
            ("chunks_dropped", n(self.chunks_dropped)),
            ("throttles", n(self.throttles)),
            ("records", n(self.records)),
            ("ingest_signal_us", n(self.ingest_signal_us)),
            ("ingest_wall_us", n(self.ingest_wall_us)),
            ("fanout_count", n(self.fanout_count)),
            ("fanout_p50_us", J::num(self.fanout_p50_us)),
            ("fanout_p99_us", J::num(self.fanout_p99_us)),
            ("deadline_count", n(self.deadline_count)),
            ("deadline_p99_us", J::num(self.deadline_p99_us)),
            ("shed", J::str(&self.shed)),
            ("health", J::str(self.health.as_str())),
            ("disconnects", n(self.disconnects)),
            ("resumes", n(self.resumes)),
            ("flaps", n(self.flaps)),
            ("decode_errors", n(self.decode_errors)),
            ("rejects", n(self.rejects)),
            ("done", J::Bool(self.done)),
        ])
    }
}

/// Point-in-time fleet statistics: the wire-level rollup plus one
/// [`SourceSnapshot`] per source, sorted by source id.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Wire-level statistics (the stats-json `net` section).
    pub net: NetStatsSnapshot,
    /// Sources that completed their handshake.
    pub sources_joined: u64,
    /// Sources whose stream ended and whose records are published.
    pub sources_done: u64,
    /// Connections refused for a bad, completed or quarantined source
    /// handshake.
    pub rejects: u64,
    /// Successful per-source session resumes.
    pub resumes: u64,
    /// Sources currently parked awaiting a reconnect.
    pub sources_parked: u64,
    /// Parked sources whose resume grace expired (evicted + finalized).
    pub sources_expired: u64,
    /// Sources currently in the flapping state.
    pub flapping: u64,
    /// Sources quarantined (cumulative — quarantine is terminal short of
    /// eviction).
    pub quarantined: u64,
    /// Sources evicted.
    pub evicted: u64,
    /// Bounded-latency overload control counters (`None` without a
    /// [`FleetConfig::latency_budget`]).
    pub latency: Option<FleetLatencySnapshot>,
    /// Per-source statistics, sorted by source id.
    pub per_source: Vec<SourceSnapshot>,
}

/// Fleet-level bounded-latency counters (the stats-json
/// `latency_mode.fleet` sub-object).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLatencySnapshot {
    /// The configured deadline budget, µs.
    pub budget_us: f64,
    /// Sweeps that found at least one source over budget.
    pub violations: u64,
    /// Throttle advisories sent by the shed ladder (rung 1).
    pub shed_throttle: u64,
    /// Chunks force-dropped by the shed ladder (rung 2).
    pub shed_drop: u64,
    /// New-source admissions refused while the fleet was over budget.
    pub admission_refused: u64,
    /// Whether admission of new sources is currently paused.
    pub admission_paused: bool,
}

impl FleetLatencySnapshot {
    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        J::obj(vec![
            ("budget_us", J::num(self.budget_us)),
            ("violations", n(self.violations)),
            ("shed_throttle", n(self.shed_throttle)),
            ("shed_drop", n(self.shed_drop)),
            ("admission_refused", n(self.admission_refused)),
            ("admission_paused", J::Bool(self.admission_paused)),
        ])
    }
}

impl FleetSnapshot {
    /// The snapshot as a JSON object (the stats-json v9 `fleet` section).
    /// `per_source` keys are sorted, so renderings are stable.
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        let per: Vec<(String, J)> = self
            .per_source
            .iter()
            .map(|s| (s.source.clone(), s.to_json()))
            .collect();
        J::obj(vec![
            ("sources_joined", n(self.sources_joined)),
            ("sources_done", n(self.sources_done)),
            ("rejects", n(self.rejects)),
            ("resumes", n(self.resumes)),
            ("sources_parked", n(self.sources_parked)),
            ("sources_expired", n(self.sources_expired)),
            ("flapping", n(self.flapping)),
            ("quarantined", n(self.quarantined)),
            ("evicted", n(self.evicted)),
            (
                "latency",
                match &self.latency {
                    None => J::Null,
                    Some(l) => l.to_json(),
                },
            ),
            ("per_source", J::Obj(per)),
        ])
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct FleetInner {
    cfg: FleetConfig,
    hub: RecordHub,
    stats: NetStats,
    factory: PipelineFactory,
    shutdown: AtomicBool,
    sources_joined: AtomicU64,
    sources_done: AtomicU64,
    rejects: AtomicU64,
    expired: AtomicU64,
    sources: Mutex<BTreeMap<Arc<str>, Arc<SourceShared>>>,
    /// Sources awaiting a reconnect, with their eviction deadline.
    parked: Mutex<BTreeMap<Arc<str>, Instant>>,
    registry: Option<Arc<Registry>>,
    /// `latency.net_fanout_us`, shared with the single-stream server's
    /// layout so dashboards see one family either way.
    fanout_hist: Option<Arc<Histogram>>,
    active_gauge: Option<Arc<Gauge>>,
    parked_gauge: Option<Arc<Gauge>>,
    resumes_ctr: Option<Arc<Counter>>,
    flap_ctr: Option<Arc<Counter>>,
    quarantine_ctr: Option<Arc<Counter>>,
    evict_ctr: Option<Arc<Counter>>,
    evictions_reported: AtomicU64,
    /// Bounded-latency sweep state (budget runs only).
    last_sweep: Mutex<Instant>,
    budget_violations: AtomicU64,
    shed_throttle: AtomicU64,
    shed_drop: AtomicU64,
    admission_refused: AtomicU64,
    admission_paused: AtomicBool,
    shed_throttle_ctr: Option<Arc<Counter>>,
    shed_drop_ctr: Option<Arc<Counter>>,
    admission_refused_ctr: Option<Arc<Counter>>,
    admission_paused_gauge: Option<Arc<Gauge>>,
}

impl FleetInner {
    fn emit(&self, kind: rfd_telemetry::event::EventKind, detail: String) {
        if let Some(r) = &self.registry {
            r.emit_event(kind, detail);
        }
    }

    fn note_evictions(&self) {
        if self.registry.is_none() {
            return;
        }
        let total = self.hub.evicted();
        let mut seen = self.evictions_reported.load(Ordering::Relaxed);
        while seen < total {
            match self.evictions_reported.compare_exchange(
                seen,
                seen + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.emit(
                        rfd_telemetry::event::EventKind::SlowConsumerEvicted,
                        format!("subscriber queue full (eviction #{})", seen + 1),
                    );
                    seen += 1;
                }
                Err(now) => seen = now,
            }
        }
    }

    fn snapshot(&self) -> FleetSnapshot {
        let per_source: Vec<SourceSnapshot> = {
            let map = self.sources.lock().unwrap_or_else(|e| e.into_inner());
            map.values().map(|s| SourceSnapshot::of(s)).collect()
        };
        let parked = {
            let map = self.parked.lock().unwrap_or_else(|e| e.into_inner());
            map.len() as u64
        };
        let count = |h: SourceHealth| per_source.iter().filter(|s| s.health == h).count() as u64;
        FleetSnapshot {
            net: self.stats.snapshot(self.hub.evicted()),
            sources_joined: self.sources_joined.load(Ordering::Relaxed),
            sources_done: self.sources_done.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            resumes: per_source.iter().map(|s| s.resumes).sum(),
            sources_parked: parked,
            sources_expired: self.expired.load(Ordering::Relaxed),
            flapping: count(SourceHealth::Flapping),
            quarantined: count(SourceHealth::Quarantined),
            evicted: count(SourceHealth::Evicted),
            latency: self.cfg.latency_budget.map(|b| FleetLatencySnapshot {
                budget_us: b.as_secs_f64() * 1e6,
                violations: self.budget_violations.load(Ordering::Relaxed),
                shed_throttle: self.shed_throttle.load(Ordering::Relaxed),
                shed_drop: self.shed_drop.load(Ordering::Relaxed),
                admission_refused: self.admission_refused.load(Ordering::Relaxed),
                admission_paused: self.admission_paused.load(Ordering::SeqCst),
            }),
            per_source,
        }
    }
}

/// Cloneable handle for stopping a running fleet server and reading its
/// statistics.
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

impl FleetHandle {
    /// Asks the server to stop. In-flight and parked sources are finalized
    /// with the samples that arrived; subscribers get a final Bye after the
    /// last record is published.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Current fleet statistics.
    pub fn stats(&self) -> FleetSnapshot {
        self.inner.snapshot()
    }
}

/// The multi-sensor ingest server. Bind, then [`FleetServer::run`].
pub struct FleetServer {
    listener: TcpListener,
    inner: Arc<FleetInner>,
}

/// One producer connection's place in the handshake.
enum ConnState {
    /// Nothing received yet; first frame must be a Hello.
    Await,
    /// Hello(Producer) received; next frame must be a SourceHello.
    Producer,
    /// Streaming samples for a registered source.
    Streaming(Arc<SourceShared>),
}

/// What servicing a connection decided.
enum Verdict {
    Keep,
    /// Close the connection (source, if any, already parked or finalized).
    Drop,
    /// The connection declared the subscriber role and was handed off to a
    /// blocking subscriber thread.
    Subscriber(std::thread::JoinHandle<()>),
}

/// A decoded, dedup-adjusted chunk the source queue had no room for. The
/// commit bookkeeping (high-water mark, ack) is deferred with it so a chunk
/// lost with its connection is never covered by an ack.
struct PendingChunk {
    /// Sample index one past the chunk's last sample (the new high-water
    /// mark once committed).
    end: u64,
    /// Samples missing before this chunk (booked on commit).
    gap: u64,
    samples: Vec<Complex32>,
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Unsent outbound bytes (acks, throttles), flushed as the socket
    /// accepts them — the loop never blocks on a slow reverse path.
    out: Vec<u8>,
    out_seq: u32,
    state: ConnState,
    /// The source epoch this connection attached at; stale ⇒ superseded.
    epoch: u64,
    last_rx: Instant,
    /// A decoded chunk the source queue had no room for; retried before
    /// any further reads from this socket (per-source backpressure).
    pending: Option<PendingChunk>,
    saturated: bool,
    chunks_since_ack: u64,
    expect_seq: Option<u32>,
    ingest_t0: Option<Instant>,
    /// Bye processed: flush `out`, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_seq: 0,
            state: ConnState::Await,
            epoch: 0,
            last_rx: Instant::now(),
            pending: None,
            saturated: false,
            chunks_since_ack: 0,
            expect_seq: None,
            ingest_t0: None,
            closing: false,
        }
    }

    /// Queues a frame on the outbox (flushed opportunistically).
    fn queue_frame(&mut self, stats: &NetStats, frame: &Frame) {
        let bytes = crate::frame::encode_frame(frame, self.out_seq);
        self.out_seq = self.out_seq.wrapping_add(1);
        stats.frames_out.add(1);
        stats.bytes_out.add(bytes.len() as u64);
        self.out.extend_from_slice(&bytes);
    }
}

impl FleetServer {
    /// Binds `addr` and prepares the fleet server around `factory` (one
    /// pipeline instance per source).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        cfg: FleetConfig,
        factory: PipelineFactory,
        registry: Option<Arc<Registry>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let fanout_hist = registry.as_ref().map(|r| {
            r.histogram("latency.net_fanout_us", || {
                Histogram::exponential(1.0, 1e7, 28)
            })
        });
        let active_gauge = registry
            .as_ref()
            .map(|r| r.gauge("net.fleet.active_sources"));
        let parked_gauge = registry
            .as_ref()
            .map(|r| r.gauge("net.fleet.parked_sources"));
        let resumes_ctr = registry.as_ref().map(|r| r.counter("net.fleet.resumes"));
        let flap_ctr = registry.as_ref().map(|r| r.counter("net.fleet.flapping"));
        let quarantine_ctr = registry
            .as_ref()
            .map(|r| r.counter("net.fleet.quarantined"));
        let evict_ctr = registry.as_ref().map(|r| r.counter("net.fleet.evicted"));
        let shed_throttle_ctr = registry
            .as_ref()
            .map(|r| r.counter("net.fleet.shed_throttle"));
        let shed_drop_ctr = registry.as_ref().map(|r| r.counter("net.fleet.shed_drop"));
        let admission_refused_ctr = registry
            .as_ref()
            .map(|r| r.counter("net.fleet.admission_refused"));
        let admission_paused_gauge = registry
            .as_ref()
            .map(|r| r.gauge("net.fleet.admission_paused"));
        let inner = Arc::new(FleetInner {
            hub: RecordHub::new(cfg.sub_queue_cap),
            stats: NetStats::new(registry.as_deref()),
            cfg,
            factory,
            shutdown: AtomicBool::new(false),
            sources_joined: AtomicU64::new(0),
            sources_done: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            sources: Mutex::new(BTreeMap::new()),
            parked: Mutex::new(BTreeMap::new()),
            registry,
            fanout_hist,
            active_gauge,
            parked_gauge,
            resumes_ctr,
            flap_ctr,
            quarantine_ctr,
            evict_ctr,
            evictions_reported: AtomicU64::new(0),
            last_sweep: Mutex::new(Instant::now()),
            budget_violations: AtomicU64::new(0),
            shed_throttle: AtomicU64::new(0),
            shed_drop: AtomicU64::new(0),
            admission_refused: AtomicU64::new(0),
            admission_paused: AtomicBool::new(false),
            shed_throttle_ctr,
            shed_drop_ctr,
            admission_refused_ctr,
            admission_paused_gauge,
        });
        Ok(Self { listener, inner })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and stats from other threads.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            inner: self.inner.clone(),
        }
    }

    /// An in-process subscription to the merged tagged stream.
    pub fn subscribe(&self) -> Subscription {
        self.inner.hub.subscribe()
    }

    /// An in-process subscription filtered to one source.
    pub fn subscribe_filtered(&self, source: &str) -> Subscription {
        self.inner.hub.subscribe_filtered(source)
    }

    /// Runs the readiness loop until shutdown (or until
    /// [`FleetConfig::expect`] sources complete). Returns the final
    /// statistics.
    pub fn run(self) -> io::Result<FleetSnapshot> {
        self.listener.set_nonblocking(true)?;
        let inner = &self.inner;
        let mut conns: Vec<Conn> = Vec::new();
        let mut sub_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut analysis_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut bye_published = false;

        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut progressed = false;

            // Accept every connection ready right now.
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if let Some(plan) = &inner.cfg.faults {
                            match plan.decide("net.fleet.accept") {
                                Some(Action::Disconnect) | Some(Action::Io) => {
                                    // Count, then slam the door: the sender
                                    // sees a connection reset and retries.
                                    inner.stats.connections.add(1);
                                    drop(stream);
                                    progressed = true;
                                    continue;
                                }
                                Some(Action::Slow(d)) => std::thread::sleep(d),
                                Some(Action::Spin(d)) => rfd_fault::spin_for(d),
                                _ => {}
                            }
                        }
                        inner.stats.connections.add(1);
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(true);
                        conns.push(Conn::new(stream));
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Service each producer socket round-robin.
            let mut i = 0;
            while i < conns.len() {
                match service_conn(inner, &mut conns[i], &mut analysis_threads, &mut progressed) {
                    Verdict::Keep => i += 1,
                    Verdict::Drop => {
                        let c = conns.swap_remove(i);
                        release_conn(inner, c);
                        progressed = true;
                    }
                    Verdict::Subscriber(t) => {
                        conns.swap_remove(i);
                        sub_threads.push(t);
                        progressed = true;
                    }
                }
            }
            sub_threads.retain(|t| !t.is_finished());
            analysis_threads.retain(|t| !t.is_finished());

            // Evict parked sources whose resume grace expired.
            sweep_parked(inner);

            // Bounded-latency mode: walk the shed ladder from the latest
            // deadline windows.
            latency_sweep(inner, false);

            // Bounded runs: once the expected number of sources has
            // completed (their records are already in subscriber queues),
            // publish the global Bye *before* raising shutdown so every
            // subscriber drains records first, then Bye — fully
            // deterministic teardown.
            if let Some(expect) = inner.cfg.expect {
                if inner.sources_done.load(Ordering::SeqCst) >= expect {
                    inner.note_evictions();
                    inner.hub.publish(HubMsg::Bye);
                    bye_published = true;
                    inner.shutdown.store(true, Ordering::SeqCst);
                }
            }

            if !progressed {
                std::thread::sleep(POLL);
            }
        }

        // Teardown: finalize whatever is still streaming or parked, wait
        // for every analysis thread to publish, then release the
        // subscribers.
        for c in conns {
            release_conn(inner, c);
        }
        let parked: Vec<Arc<str>> = {
            let mut map = inner.parked.lock().unwrap_or_else(|e| e.into_inner());
            let names: Vec<Arc<str>> = map.keys().cloned().collect();
            map.clear();
            names
        };
        if let Some(g) = &inner.parked_gauge {
            g.set(0);
        }
        for name in parked {
            let src = {
                let map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
                map.get(&name).cloned()
            };
            if let Some(src) = src {
                finalize_source(inner, &src);
            }
        }
        for t in analysis_threads {
            let _ = t.join();
        }
        // One forced sweep after every analysis thread published, so
        // violations recorded in the final burst (e.g. a chaos-slowed
        // pipeline's publish lag) still reach the counters and event log.
        latency_sweep(inner, true);
        inner.note_evictions();
        if !bye_published {
            inner.hub.publish(HubMsg::Bye);
        }
        for t in sub_threads {
            let _ = t.join();
        }
        Ok(inner.snapshot())
    }
}

/// Closes a dying connection. A streaming source is parked for the resume
/// grace (finalized when the grace is zero, the server is shutting down, or
/// the source's health rules it out). A connection superseded by a newer
/// attach (stale epoch) releases nothing.
fn release_conn(inner: &Arc<FleetInner>, mut c: Conn) {
    // Best-effort flush of queued acks so a clean Bye ends with its final
    // Ack delivered.
    let _ = c.stream.write_all(&c.out);
    if let ConnState::Streaming(src) = &c.state {
        if c.epoch != src.epoch.load(Ordering::SeqCst) {
            return; // Superseded: the newer connection owns the source.
        }
        if let Some(t0) = c.ingest_t0 {
            src.ingest_wall_us
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        if src.done.load(Ordering::SeqCst) || src.finalized.load(Ordering::SeqCst) {
            return;
        }
        if inner.cfg.resume_grace.is_zero() || inner.shutdown.load(Ordering::SeqCst) {
            finalize_source(inner, src);
        } else {
            park_source(inner, src);
        }
    }
}

/// Parks a dropped source awaiting a reconnect, feeding the disconnect into
/// its health machine first — a source the disconnect quarantines is
/// finalized instead of parked.
fn park_source(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    health_on_disconnect(inner, src);
    if src.health() >= SourceHealth::Quarantined {
        finalize_source(inner, src);
        return;
    }
    inner.stats.sessions_parked.add(1);
    let deadline = Instant::now() + inner.cfg.resume_grace;
    let mut map = inner.parked.lock().unwrap_or_else(|e| e.into_inner());
    map.insert(src.name.clone(), deadline);
    if let Some(g) = &inner.parked_gauge {
        g.set(map.len() as i64);
    }
}

/// Evicts parked sources whose resume grace expired.
fn sweep_parked(inner: &Arc<FleetInner>) {
    let now = Instant::now();
    let expired: Vec<Arc<str>> = {
        let mut map = inner.parked.lock().unwrap_or_else(|e| e.into_inner());
        let names: Vec<Arc<str>> = map
            .iter()
            .filter(|(_, deadline)| now >= **deadline)
            .map(|(name, _)| name.clone())
            .collect();
        for name in &names {
            map.remove(name);
        }
        if !names.is_empty() {
            if let Some(g) = &inner.parked_gauge {
                g.set(map.len() as i64);
            }
        }
        names
    };
    for name in expired {
        inner.stats.sessions_expired.add(1);
        inner.expired.fetch_add(1, Ordering::Relaxed);
        let src = {
            let map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
            map.get(&name).cloned()
        };
        if let Some(src) = src {
            raise_health(inner, &src, SourceHealth::Evicted, "resume grace expired");
            finalize_source(inner, &src);
        }
    }
}

/// The bounded-latency overload sweep: diff every live source's deadline
/// histogram, escalate the worst offender's shed rung on sustained budget
/// violations, relax rungs on sustained recovery, and pause admission of
/// new sources while any source is over budget. No-op without a budget;
/// rate-limited to [`LATENCY_SWEEP`] unless `forced` (the end-of-run
/// sweep, which must not miss violations recorded after the last tick).
fn latency_sweep(inner: &Arc<FleetInner>, forced: bool) {
    use rfd_telemetry::event::EventKind;
    let Some(budget) = inner.cfg.latency_budget else {
        return;
    };
    {
        let mut last = inner.last_sweep.lock().unwrap_or_else(|e| e.into_inner());
        if !forced && last.elapsed() < LATENCY_SWEEP {
            return;
        }
        *last = Instant::now();
    }
    let budget_us = budget.as_secs_f64() * 1e6;
    let sources: Vec<Arc<SourceShared>> = {
        let map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
        map.values().cloned().collect()
    };
    let mut worst: Option<(Arc<SourceShared>, f64)> = None;
    let mut any_over = false;
    for src in &sources {
        // Quarantined/evicted sources are already cut off; shedding them
        // would double-punish and skew the admission signal.
        if src.health() >= SourceHealth::Quarantined {
            continue;
        }
        let snap = {
            let mut win = src.deadline_win.lock().unwrap_or_else(|e| e.into_inner());
            win.advance(&src.deadline)
        };
        if snap.count == 0 {
            continue; // An empty window is no signal, not a clean one.
        }
        src.deadline_p99_bits
            .store(snap.p99.to_bits(), Ordering::Relaxed);
        if snap.p99 > budget_us {
            any_over = true;
            src.shed_clean.store(0, Ordering::Relaxed);
            let streak = src.shed_violate.fetch_add(1, Ordering::Relaxed) + 1;
            inner.budget_violations.fetch_add(1, Ordering::Relaxed);
            inner.emit(
                EventKind::BudgetViolated,
                format!(
                    "source {} deadline p99 {:.0}us over budget {budget_us:.0}us",
                    src.name, snap.p99
                ),
            );
            // A throttled source gets a fresh advisory every violating
            // sweep, not just on the rung transition.
            if src.shed_rung() >= SHED_THROTTLE {
                src.shed_throttle_pending.store(true, Ordering::SeqCst);
            }
            if streak >= SHED_VIOLATE_STREAK && src.shed_rung() < SHED_DROP {
                let is_worse = worst.as_ref().is_none_or(|(_, p)| snap.p99 > *p);
                if is_worse {
                    worst = Some((src.clone(), snap.p99));
                }
            }
        } else if snap.p99 < SHED_LOW_WATER * budget_us {
            src.shed_violate.store(0, Ordering::Relaxed);
            let streak = src.shed_clean.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= SHED_RESTORE_STREAK {
                src.shed_clean.store(0, Ordering::Relaxed);
                let rung = src.shed_rung();
                if rung > SHED_NONE {
                    src.shed.store(rung - 1, Ordering::SeqCst);
                    inner.emit(
                        EventKind::SourceShed,
                        format!(
                            "source {} shed relaxed {} -> {} (deadline p99 {:.0}us)",
                            src.name,
                            shed_str(rung),
                            shed_str(rung - 1),
                            snap.p99
                        ),
                    );
                }
            }
        } else {
            // Dead zone between low water and the budget: hold state.
            src.shed_violate.store(0, Ordering::Relaxed);
            src.shed_clean.store(0, Ordering::Relaxed);
        }
    }
    // Escalate only the worst offender this sweep: a fleet-wide stall
    // sheds the source actually blowing the budget before touching the
    // rest.
    if let Some((src, p99)) = worst {
        src.shed_violate.store(0, Ordering::Relaxed);
        let rung = src.shed_rung();
        if rung < SHED_DROP {
            src.shed.store(rung + 1, Ordering::SeqCst);
            if rung + 1 == SHED_THROTTLE {
                src.shed_throttle_pending.store(true, Ordering::SeqCst);
            }
            inner.emit(
                EventKind::SourceShed,
                format!(
                    "source {} shed {} -> {} (deadline p99 {p99:.0}us over {budget_us:.0}us)",
                    src.name,
                    shed_str(rung),
                    shed_str(rung + 1)
                ),
            );
        }
    }
    // Admission follows the current sweep's verdict: paused while any
    // eligible source is over budget, reopened the first sweep none is —
    // including sweeps with no signal at all (an idle or fully
    // quarantined fleet must not hold the gate shut forever).
    let was = inner.admission_paused.swap(any_over, Ordering::SeqCst);
    if was != any_over {
        if let Some(g) = &inner.admission_paused_gauge {
            g.set(i64::from(any_over));
        }
    }
}

/// Closes a source's ingest queue (its analysis thread runs to completion
/// and publishes) and books session-level stats. Idempotent per source via
/// the `finalized` flag.
fn finalize_source(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    if src.finalized.swap(true, Ordering::SeqCst) {
        return;
    }
    src.queue.close();
    inner.stats.chunks_dropped.add(src.queue.dropped());
    inner.stats.sessions.add(1);
}

// ---------------------------------------------------------------------------
// Health state machine
// ---------------------------------------------------------------------------

/// Escalates a source's health (states never regress through this path).
/// Returns true when the state actually changed, emitting the transition's
/// event and counter.
fn raise_health(
    inner: &Arc<FleetInner>,
    src: &Arc<SourceShared>,
    to: SourceHealth,
    why: &str,
) -> bool {
    loop {
        let cur = src.health.load(Ordering::SeqCst);
        if cur >= to as u8 {
            return false;
        }
        if src
            .health
            .compare_exchange(cur, to as u8, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            break;
        }
    }
    use rfd_telemetry::event::EventKind;
    let (kind, ctr) = match to {
        SourceHealth::Flapping => (EventKind::SourceFlapping, &inner.flap_ctr),
        SourceHealth::Quarantined => (EventKind::SourceQuarantined, &inner.quarantine_ctr),
        SourceHealth::Evicted => (EventKind::SourceEvicted, &inner.evict_ctr),
        SourceHealth::Healthy => return true,
    };
    if to == SourceHealth::Flapping {
        src.flaps.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(c) = ctr {
        c.add(1);
    }
    inner.emit(kind, format!("source {} {}: {why}", src.name, to.as_str()));
    true
}

/// Books a disconnect (no clean Bye): raises the flap score and escalates
/// through flapping to quarantine when the source flaps faster than it
/// makes progress.
fn health_on_disconnect(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    src.disconnects.fetch_add(1, Ordering::Relaxed);
    let score = src.flap_score.fetch_add(1, Ordering::SeqCst) + 1;
    if score >= inner.cfg.quarantine_flaps {
        raise_health(
            inner,
            src,
            SourceHealth::Quarantined,
            &format!("flap score {score} ≥ {}", inner.cfg.quarantine_flaps),
        );
    } else if score >= inner.cfg.flap_threshold {
        raise_health(
            inner,
            src,
            SourceHealth::Flapping,
            &format!("flap score {score} ≥ {}", inner.cfg.flap_threshold),
        );
    }
}

/// Books an attributed decode error; enough of them quarantine the source.
fn health_on_decode_error(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    let errs = src.decode_errors.fetch_add(1, Ordering::SeqCst) + 1;
    if errs >= inner.cfg.quarantine_errors {
        raise_health(
            inner,
            src,
            SourceHealth::Quarantined,
            &format!("{errs} decode errors"),
        );
    }
}

/// Books sustained progress (one ack boundary): damps the flap score, and
/// recovers a flapping source once the score falls to half the threshold
/// (hysteresis — recovering takes more progress than flapping took
/// disconnects).
fn health_on_progress(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    let score = {
        let mut cur = src.flap_score.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                break 0;
            }
            match src
                .flap_score
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break cur - 1,
                Err(now) => cur = now,
            }
        }
    };
    if score <= inner.cfg.flap_threshold / 2
        && src
            .health
            .compare_exchange(
                SourceHealth::Flapping as u8,
                SourceHealth::Healthy as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    {
        inner.emit(
            rfd_telemetry::event::EventKind::SourceResumed,
            format!("source {} healthy again (flap score {score})", src.name),
        );
    }
}

/// Services one connection for one sweep: flush the outbox, retry a pending
/// chunk, process decodable frames, read more bytes.
fn service_conn(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    analysis_threads: &mut Vec<std::thread::JoinHandle<()>>,
    progressed: &mut bool,
) -> Verdict {
    // 0. A connection superseded by a newer attach is dead weight.
    if let ConnState::Streaming(src) = &c.state {
        if c.epoch != src.epoch.load(Ordering::SeqCst) {
            return Verdict::Drop;
        }
    }

    // 1. Flush queued outbound bytes (acks, throttles, byes).
    if !c.out.is_empty() {
        match c.stream.write(&c.out) {
            Ok(0) => return Verdict::Drop,
            Ok(n) => {
                c.out.drain(..n);
                *progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Drop,
        }
    }
    if c.closing {
        return if c.out.is_empty() {
            Verdict::Drop
        } else {
            Verdict::Keep
        };
    }

    // 2. Retry the chunk the source queue previously refused. Until it
    // fits, this socket is not read: TCP backpressure per source.
    if let Some(chunk) = c.pending.take() {
        let src = match &c.state {
            ConnState::Streaming(s) => Some(s.clone()),
            _ => None,
        };
        if let Some(src) = src {
            if commit_chunk(inner, c, &src, chunk) {
                *progressed = true;
            } else if c.closing {
                return Verdict::Drop;
            } else {
                return Verdict::Keep;
            }
        }
    }

    // 3. Drain decodable frames.
    if let Some(v) = process_frames(inner, c, analysis_threads, progressed) {
        return v;
    }
    if c.pending.is_some() || c.closing {
        return Verdict::Keep;
    }

    // 4. Read more bytes (nonblocking). Chaos applies per source
    // (`net.fleet.source.<id>`) plus the site shared with the blocking
    // server so fault plans apply to either flavor.
    if let Some(plan) = &inner.cfg.faults {
        let site_action = match &c.state {
            ConnState::Streaming(src) => plan.decide(&src.chaos_site),
            _ => None,
        };
        let action = site_action.or_else(|| plan.decide("net.server.read"));
        match action {
            Some(Action::Io) => return Verdict::Drop,
            Some(Action::Disconnect) => return eof_verdict(inner, c),
            Some(Action::Corrupt) => {
                // A corrupted read is a decode error attributed to the
                // source (its health machine sees it), then a drop.
                inner.stats.decode_errors.add(1);
                if let ConnState::Streaming(src) = &c.state {
                    let src = src.clone();
                    health_on_decode_error(inner, &src);
                }
                return Verdict::Drop;
            }
            Some(Action::Slow(d)) => std::thread::sleep(d),
            Some(Action::Spin(d)) => rfd_fault::spin_for(d),
            _ => {}
        }
    }
    let mut buf = [0u8; 16 * 1024];
    match c.stream.read(&mut buf) {
        Ok(0) => return eof_verdict(inner, c),
        Ok(n) => {
            inner.stats.bytes_in.add(n as u64);
            c.dec.push(&buf[..n]);
            c.last_rx = Instant::now();
            *progressed = true;
            if let Some(v) = process_frames(inner, c, analysis_threads, progressed) {
                return v;
            }
        }
        Err(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::Interrupted =>
        {
            if c.last_rx.elapsed() >= inner.cfg.idle_timeout {
                inner.stats.idle_evictions.add(1);
                return Verdict::Drop;
            }
        }
        Err(_) => return Verdict::Drop,
    }
    Verdict::Keep
}

/// EOF from a peer without a clean Bye: close the connection. The release
/// path parks the source for the resume grace (or finalizes it when resume
/// is off).
fn eof_verdict(_inner: &Arc<FleetInner>, c: &mut Conn) -> Verdict {
    c.closing = true;
    if c.out.is_empty() {
        Verdict::Drop
    } else {
        Verdict::Keep
    }
}

/// The handshake stage of a connection, copied out of [`ConnState`] so the
/// frame dispatch below can mutate the connection freely.
#[derive(Clone, Copy, PartialEq)]
enum Stage {
    Await,
    Producer,
    Streaming,
}

/// Decodes and applies as many frames as possible. Returns a verdict when
/// the connection changes hands or must close, `None` to continue.
fn process_frames(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    analysis_threads: &mut Vec<std::thread::JoinHandle<()>>,
    progressed: &mut bool,
) -> Option<Verdict> {
    loop {
        if c.pending.is_some() || c.closing {
            return None;
        }
        let SeqFrame { seq, frame } = match c.dec.next_frame() {
            Ok(Some(sf)) => sf,
            Ok(None) => return None,
            Err(_) => {
                inner.stats.decode_errors.add(1);
                if let ConnState::Streaming(src) = &c.state {
                    let src = src.clone();
                    health_on_decode_error(inner, &src);
                }
                return Some(Verdict::Drop);
            }
        };
        inner.stats.frames_in.add(1);
        *progressed = true;
        if let Some(want) = c.expect_seq {
            if seq != want {
                inner.stats.seq_gaps.add(u64::from(seq.wrapping_sub(want)));
            }
        }
        c.expect_seq = Some(seq.wrapping_add(1));

        let (stage, src) = match &c.state {
            ConnState::Await => (Stage::Await, None),
            ConnState::Producer => (Stage::Producer, None),
            ConnState::Streaming(s) => (Stage::Streaming, Some(s.clone())),
        };
        match (stage, frame) {
            (Stage::Await, Frame::Hello(Role::Producer)) => {
                inner.stats.producers.add(1);
                c.state = ConnState::Producer;
            }
            (Stage::Await, Frame::Hello(Role::Subscriber)) => {
                // Hand the socket to a blocking subscriber thread; the
                // shared serve loop handles Resume, replay and heartbeats.
                let _ = c.stream.set_nonblocking(false);
                let _ = c.stream.set_read_timeout(Some(Duration::from_millis(50)));
                let stream = match c.stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return Some(Verdict::Drop),
                };
                let dec = std::mem::replace(&mut c.dec, FrameDecoder::new());
                let inner = inner.clone();
                let t = std::thread::Builder::new()
                    .name("rfd-fleet-sub".into())
                    .spawn(move || {
                        let ctx = SubscriberCtx {
                            hub: &inner.hub,
                            stats: &inner.stats,
                            shutdown: &inner.shutdown,
                            heartbeat: inner.cfg.heartbeat,
                        };
                        serve_subscriber(&ctx, stream, dec);
                    })
                    .expect("spawn fleet subscriber thread");
                return Some(Verdict::Subscriber(t));
            }
            (Stage::Producer, Frame::SourceHello { source, meta }) => {
                match admit_source(inner, &source, meta) {
                    Admission::New(src) => {
                        // Spawn the source's private analysis thread.
                        let t = {
                            let inner = inner.clone();
                            let src = src.clone();
                            std::thread::Builder::new()
                                .name(format!("rfd-fleet-{source}"))
                                .spawn(move || analysis_thread(inner, src))
                                .expect("spawn fleet analysis thread")
                        };
                        analysis_threads.push(t);
                        // Anchor the sender at position zero.
                        inner.stats.acks_sent.add(1);
                        c.queue_frame(
                            &inner.stats,
                            &Frame::Ack {
                                session: src.session,
                                position: 0,
                            },
                        );
                        c.epoch = src.epoch.load(Ordering::SeqCst);
                        c.state = ConnState::Streaming(src);
                    }
                    Admission::Resumed(src) => {
                        // Reattach: the authoritative ack carries the
                        // committed high-water mark; the client seeks to it
                        // and the contiguity accounting dedupes overlap.
                        inner.stats.acks_sent.add(1);
                        c.queue_frame(
                            &inner.stats,
                            &Frame::Ack {
                                session: src.session,
                                position: src.expected.load(Ordering::SeqCst),
                            },
                        );
                        c.epoch = src.epoch.load(Ordering::SeqCst);
                        c.chunks_since_ack = 0;
                        c.state = ConnState::Streaming(src);
                    }
                    Admission::Refused => {
                        inner.rejects.fetch_add(1, Ordering::Relaxed);
                        c.queue_frame(&inner.stats, &Frame::Bye);
                        c.closing = true;
                    }
                }
            }
            (Stage::Streaming, Frame::SampleChunk { start_sample, iq }) => {
                let src = src.expect("streaming state carries its source");
                ingest_chunk(inner, c, &src, start_sample, iq);
            }
            (Stage::Streaming, Frame::Resume { .. }) => {
                // A resuming client may declare its last-acked position
                // after the SourceHello. The claim is advisory — the
                // server's own high-water mark (already acked) is
                // authoritative and overlap is deduped — so malformed or
                // beyond-stream positions are harmless noise.
            }
            (Stage::Streaming, Frame::Bye) => {
                let src = src.expect("streaming state carries its source");
                if let Some(t0) = c.ingest_t0.take() {
                    src.ingest_wall_us
                        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
                // Final authoritative ack, then close after the flush.
                inner.stats.acks_sent.add(1);
                let position = src.expected.load(Ordering::Relaxed);
                let ack = Frame::Ack {
                    session: src.session,
                    position,
                };
                c.queue_frame(&inner.stats, &ack);
                finalize_source(inner, &src);
                c.state = ConnState::Await;
                c.closing = true;
            }
            (_, Frame::Heartbeat) => {}
            (Stage::Await, Frame::Bye) | (Stage::Producer, Frame::Bye) => {
                c.closing = true;
            }
            // Anything else — a chunk before the handshake, a duplicate
            // SourceHello on a streaming connection, a server→subscriber
            // tag from a producer — is a protocol violation.
            (_, _) => {
                inner.stats.decode_errors.add(1);
                if let Some(src) = src {
                    health_on_decode_error(inner, &src);
                }
                return Some(Verdict::Drop);
            }
        }
    }
}

/// What a SourceHello earned.
enum Admission {
    /// A brand-new source: registered and announced.
    New(Arc<SourceShared>),
    /// A known live or parked source reattaching (resume / takeover).
    Resumed(Arc<SourceShared>),
    /// Completed, quarantined or evicted id — refused with a Bye.
    Refused,
}

/// Admits a SourceHello: a fresh id registers, a known id resumes (parked)
/// or takes over (still live — newest connection wins), and a retired or
/// quarantined id is refused.
fn admit_source(inner: &Arc<FleetInner>, source: &str, meta: StreamMeta) -> Admission {
    let existing = {
        let map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
        map.get(source).cloned()
    };
    let src = match existing {
        None => {
            // Overload admission control: while the fleet is over its
            // latency budget, brand-new ids are refused. Known sources
            // resuming fall through — refusing a resume would turn a
            // transient overload into data loss.
            if inner.admission_paused.load(Ordering::SeqCst) {
                inner.admission_refused.fetch_add(1, Ordering::Relaxed);
                if let Some(ctr) = &inner.admission_refused_ctr {
                    ctr.add(1);
                }
                inner.emit(
                    rfd_telemetry::event::EventKind::AdmissionRefused,
                    format!("source {source} refused: fleet over latency budget"),
                );
                return Admission::Refused;
            }
            return register_source(inner, source, meta);
        }
        Some(src) => src,
    };

    // Quarantined / evicted ids are refused; persistent hammering on a
    // quarantined id evicts it outright.
    if src.health() >= SourceHealth::Quarantined {
        let rejects = src.rejects.fetch_add(1, Ordering::SeqCst) + 1;
        if src.health() == SourceHealth::Quarantined && rejects >= inner.cfg.evict_rejects {
            raise_health(
                inner,
                &src,
                SourceHealth::Evicted,
                &format!("{rejects} refused reconnects"),
            );
        }
        return Admission::Refused;
    }
    // A completed or finalized stream cannot be reopened.
    if src.done.load(Ordering::SeqCst) || src.finalized.load(Ordering::SeqCst) {
        src.rejects.fetch_add(1, Ordering::Relaxed);
        return Admission::Refused;
    }
    if inner.cfg.resume_grace.is_zero() {
        src.rejects.fetch_add(1, Ordering::Relaxed);
        return Admission::Refused;
    }

    let was_parked = {
        let mut map = inner.parked.lock().unwrap_or_else(|e| e.into_inner());
        let hit = map.remove(source).is_some();
        if hit {
            if let Some(g) = &inner.parked_gauge {
                g.set(map.len() as i64);
            }
        }
        hit
    };
    if !was_parked {
        // The old connection is still attached: treat the reattach as the
        // implied death of the old one (newest connection wins). The epoch
        // bump below strands the old connection; the disconnect still
        // counts against the source's health.
        health_on_disconnect(inner, &src);
        if src.health() >= SourceHealth::Quarantined {
            finalize_source(inner, &src);
            src.rejects.fetch_add(1, Ordering::Relaxed);
            return Admission::Refused;
        }
    }
    src.epoch.fetch_add(1, Ordering::SeqCst);
    src.resumes.fetch_add(1, Ordering::Relaxed);
    inner.stats.resumes.add(1);
    if let Some(ctr) = &inner.resumes_ctr {
        ctr.add(1);
    }
    inner.emit(
        rfd_telemetry::event::EventKind::SourceResumed,
        format!(
            "source {} resumed at position {} ({})",
            src.name,
            src.expected.load(Ordering::SeqCst),
            if was_parked { "was parked" } else { "takeover" },
        ),
    );
    Admission::Resumed(src)
}

/// Registers a new source: creates its queue, shared state and per-source
/// metrics, and announces it on the hub.
fn register_source(inner: &Arc<FleetInner>, source: &str, meta: StreamMeta) -> Admission {
    let name: Arc<str> = Arc::from(source);
    let reg = inner.registry.as_deref();
    let session = inner.sources_joined.fetch_add(1, Ordering::SeqCst) + 1;
    let src = Arc::new(SourceShared {
        meta,
        queue: ChunkQueue::new(inner.cfg.queue_cap, inner.cfg.overflow),
        session,
        epoch: AtomicU64::new(1),
        chunks_in: AtomicU64::new(0),
        samples_in: AtomicU64::new(0),
        chunks_duplicate: AtomicU64::new(0),
        sample_gaps: AtomicU64::new(0),
        throttles: AtomicU64::new(0),
        records: AtomicU64::new(0),
        expected: AtomicU64::new(0),
        ingest_wall_us: AtomicU64::new(0),
        done: AtomicBool::new(false),
        finalized: AtomicBool::new(false),
        health: AtomicU8::new(SourceHealth::Healthy as u8),
        disconnects: AtomicU64::new(0),
        resumes: AtomicU64::new(0),
        flap_score: AtomicU64::new(0),
        flaps: AtomicU64::new(0),
        decode_errors: AtomicU64::new(0),
        rejects: AtomicU64::new(0),
        chaos_site: format!("net.fleet.source.{source}"),
        fanout: Histogram::exponential(1.0, 1e7, 28),
        deadline: Histogram::exponential(1.0, 1e7, 28),
        deadline_win: Mutex::new(HistogramWindow::new()),
        deadline_p99_bits: AtomicU64::new(0),
        shed: AtomicU8::new(SHED_NONE),
        shed_violate: AtomicU32::new(0),
        shed_clean: AtomicU32::new(0),
        shed_throttle_pending: AtomicBool::new(false),
        queue_gauge: reg.map(|r| r.gauge(&format!("net.fleet.source.{source}.queue_depth"))),
        samples_ctr: reg.map(|r| r.counter(&format!("net.fleet.source.{source}.samples_in"))),
        records_ctr: reg.map(|r| r.counter(&format!("net.fleet.source.{source}.records"))),
        name: name.clone(),
    });
    {
        let mut map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
        map.insert(name.clone(), src.clone());
    }
    if let Some(g) = &inner.active_gauge {
        g.add(1);
    }
    inner.emit(
        rfd_telemetry::event::EventKind::SourceJoined,
        format!("source {name} joined ({:.3} Msps)", meta.sample_rate / 1e6),
    );
    inner.hub.publish(HubMsg::SourceMeta { source: name, meta });
    Admission::New(src)
}

/// Ingests one sample chunk for a streaming source: contiguity accounting,
/// scale conversion, throttle advisories, committed queue push, periodic
/// acks.
fn ingest_chunk(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    src: &Arc<SourceShared>,
    start_sample: u64,
    iq: Vec<(i16, i16)>,
) {
    c.ingest_t0.get_or_insert_with(Instant::now);
    inner.stats.chunks_in.add(1);
    src.chunks_in.fetch_add(1, Ordering::Relaxed);
    let n = iq.len() as u64;
    let end = start_sample.saturating_add(n);
    let expected = src.expected.load(Ordering::Relaxed);
    if end <= expected {
        inner.stats.chunks_duplicate.add(1);
        src.chunks_duplicate.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let gap = start_sample.saturating_sub(expected);
    let skip = expected.saturating_sub(start_sample) as usize;
    let scale = src.meta.scale;
    let samples: Vec<Complex32> = iq[skip..]
        .iter()
        .map(|&(i, q)| from_i16_iq(i, q).scale(scale))
        .collect();

    // Throttle advisory on the saturation rising edge, per source.
    let depth = src.queue.len();
    if depth >= src.queue.capacity() {
        if !c.saturated {
            c.saturated = true;
            inner.stats.throttles_sent.add(1);
            src.throttles.fetch_add(1, Ordering::Relaxed);
            inner.emit(
                rfd_telemetry::event::EventKind::ThrottleAdvisory,
                format!(
                    "source {} ingest queue at {depth}/{}",
                    src.name,
                    src.queue.capacity()
                ),
            );
            let frame = Frame::Throttle {
                depth: depth as u32,
                cap: src.queue.capacity() as u32,
            };
            c.queue_frame(&inner.stats, &frame);
        }
    } else {
        c.saturated = false;
    }

    // Shed rung 1: the overload sweep owes this sender a Throttle
    // advisory (repeated every violating sweep, independent of queue
    // saturation — the budget, not the queue bound, is the constraint).
    if src.shed_rung() >= SHED_THROTTLE && src.shed_throttle_pending.swap(false, Ordering::SeqCst) {
        inner.stats.throttles_sent.add(1);
        src.throttles.fetch_add(1, Ordering::Relaxed);
        inner.shed_throttle.fetch_add(1, Ordering::Relaxed);
        if let Some(ctr) = &inner.shed_throttle_ctr {
            ctr.add(1);
        }
        let frame = Frame::Throttle {
            depth: depth as u32,
            cap: src.queue.capacity() as u32,
        };
        c.queue_frame(&inner.stats, &frame);
    }

    commit_chunk(inner, c, src, PendingChunk { end, gap, samples });
}

/// Pushes a dedup-adjusted chunk into the source queue and, only on
/// success, advances the high-water mark and runs the ack/health
/// bookkeeping — so a chunk parked by backpressure (and possibly lost with
/// its connection) is never covered by an ack. Returns true when the chunk
/// was committed; on failure the chunk is re-parked (`Full`) or the
/// connection starts closing (`Closed`).
fn commit_chunk(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    src: &Arc<SourceShared>,
    chunk: PendingChunk,
) -> bool {
    let PendingChunk { end, gap, samples } = chunk;
    let kept = samples.len() as u64;
    // Shed rung 2: a drop-oldest source forces room instead of parking
    // the chunk — latency is the contract now, the oldest backlog pays.
    if src.shed_rung() >= SHED_DROP
        && src.queue.len() >= src.queue.capacity()
        && src.queue.drop_oldest()
    {
        inner.shed_drop.fetch_add(1, Ordering::Relaxed);
        if let Some(ctr) = &inner.shed_drop_ctr {
            ctr.add(1);
        }
    }
    match src.queue.try_push((Instant::now(), samples)) {
        Ok(_) => {
            if let Some(g) = &src.queue_gauge {
                g.set(src.queue.len() as i64);
            }
        }
        Err(TryPushError::Full((_, samples))) => {
            c.pending = Some(PendingChunk { end, gap, samples });
            return false;
        }
        Err(TryPushError::Closed(_)) => {
            c.closing = true;
            return false;
        }
    }
    if gap > 0 {
        inner.stats.sample_gaps.add(gap);
        src.sample_gaps.fetch_add(gap, Ordering::Relaxed);
    }
    src.expected.store(end, Ordering::SeqCst);
    inner.stats.samples_in.add(kept);
    src.samples_in.fetch_add(kept, Ordering::Relaxed);
    if let Some(ctr) = &src.samples_ctr {
        ctr.add(kept);
    }
    c.chunks_since_ack += 1;
    if c.chunks_since_ack >= ACK_EVERY {
        c.chunks_since_ack = 0;
        inner.stats.acks_sent.add(1);
        let frame = Frame::Ack {
            session: src.session,
            position: end,
        };
        c.queue_frame(&inner.stats, &frame);
        health_on_progress(inner, src);
    }
    true
}

/// One source's analysis thread: accumulate the contiguous sample stream,
/// run the source's private pipeline when the stream ends, publish tagged
/// records (offline order) and the source's Bye.
fn analysis_thread(inner: Arc<FleetInner>, src: Arc<SourceShared>) {
    let analysis_site = format!("net.fleet.analysis.{}", src.name);
    let mut samples: Vec<Complex32> = Vec::new();
    while let Some((committed, chunk)) = src.queue.pop() {
        // Chaos: a slow/cpu fault here starves this source's consumer so
        // its queue wait — and only its — blows the deadline budget.
        if let Some(plan) = &inner.cfg.faults {
            match plan.decide(&analysis_site) {
                Some(Action::Slow(d)) => std::thread::sleep(d),
                Some(Action::Spin(d)) => rfd_fault::spin_for(d),
                _ => {}
            }
        }
        // Queue wait is the first half of the deadline metric: how long a
        // committed chunk sat before this thread consumed it.
        src.deadline.record(committed.elapsed().as_secs_f64() * 1e6);
        samples.extend_from_slice(&chunk);
        if let Some(g) = &src.queue_gauge {
            g.set(src.queue.len() as i64);
        }
    }
    // A source cut off before any sample arrived (e.g. quarantined on its
    // first frames) publishes no records — don't spin up a pipeline (or
    // its journal directory) for an empty stream.
    let finalized_at = Instant::now();
    let records = if samples.is_empty() {
        Vec::new()
    } else {
        let mut pipeline = (inner.factory)(&src.name);
        pipeline.analyze(&src.meta, samples)
    };
    for rec in records {
        // Finalize → publish lag is the second half of the deadline
        // metric: a chaos-slowed pipeline shows up here.
        src.deadline
            .record(finalized_at.elapsed().as_secs_f64() * 1e6);
        inner.stats.records_published.add(1);
        src.records.fetch_add(1, Ordering::Relaxed);
        if let Some(ctr) = &src.records_ctr {
            ctr.add(1);
        }
        let t0 = Instant::now();
        inner.hub.publish(HubMsg::SourceRecord {
            source: src.name.clone(),
            record: rec,
        });
        let us = t0.elapsed().as_secs_f64() * 1e6;
        src.fanout.record(us);
        if let Some(h) = &inner.fanout_hist {
            h.record(us);
        }
    }
    inner.hub.publish(HubMsg::SourceBye {
        source: src.name.clone(),
    });
    inner.note_evictions();
    inner
        .stats
        .ingest_signal_us
        .add((src.expected.load(Ordering::Relaxed) as f64 / src.meta.sample_rate * 1e6) as u64);
    inner
        .stats
        .ingest_wall_us
        .add(src.ingest_wall_us.load(Ordering::Relaxed));
    src.done.store(true, Ordering::SeqCst);
    if let Some(g) = &inner.active_gauge {
        g.add(-1);
    }
    inner.emit(
        rfd_telemetry::event::EventKind::SourceLeft,
        format!(
            "source {} done ({} records)",
            src.name,
            src.records.load(Ordering::Relaxed)
        ),
    );
    inner.sources_done.fetch_add(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{RecordSubscriber, SendRate, SubEvent, TraceSender};
    use crate::frame::RecordMsg;

    fn stub_factory() -> PipelineFactory {
        Box::new(|_source: &str| {
            Box::new(
                |meta: &StreamMeta, samples: Vec<Complex32>| -> Vec<RecordMsg> {
                    vec![RecordMsg {
                        start_us: 0.0,
                        end_us: samples.len() as f64 / meta.sample_rate * 1e6,
                        line: format!("session of {} samples", samples.len()),
                    }]
                },
            )
        })
    }

    fn meta() -> StreamMeta {
        StreamMeta {
            sample_rate: 1e6,
            center_hz: 0.0,
            scale: 1.0,
        }
    }

    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let t0 = Instant::now();
        while !cond() {
            assert!(t0.elapsed() < Duration::from_secs(10), "timed out: {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn three_sources_merge_with_tags() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                expect: Some(3),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run().unwrap());

        let mut sub = RecordSubscriber::connect(addr).unwrap();
        let senders: Vec<_> = (0..3)
            .map(|k| {
                std::thread::spawn(move || {
                    let n = 1000 * (k + 1);
                    let samples = vec![Complex32::new(0.1, -0.1); n];
                    let mut tx = TraceSender::connect_source(addr, &format!("sensor-{k}")).unwrap();
                    tx.send_samples(meta(), &samples, SendRate::Max, 256)
                        .unwrap();
                    tx.finish().unwrap();
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }

        let mut by_source: std::collections::BTreeMap<String, Vec<String>> =
            std::collections::BTreeMap::new();
        let mut byes = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::SourceRecord { source, record } => {
                    by_source.entry(source).or_default().push(record.line);
                }
                SubEvent::SourceBye { source } => byes.push(source),
                SubEvent::Bye => break,
                _ => {}
            }
        }
        for k in 0..3usize {
            assert_eq!(
                by_source.get(&format!("sensor-{k}")).map(Vec::as_slice),
                Some(&[format!("session of {} samples", 1000 * (k + 1))][..]),
            );
        }
        byes.sort();
        assert_eq!(byes, vec!["sensor-0", "sensor-1", "sensor-2"]);

        let stats = run.join().unwrap();
        assert_eq!(stats.sources_joined, 3);
        assert_eq!(stats.sources_done, 3);
        assert_eq!(stats.net.samples_in, 1000 + 2000 + 3000);
        assert_eq!(stats.net.decode_errors, 0);
        assert_eq!(stats.per_source.len(), 3);
        assert_eq!(stats.per_source[0].source, "sensor-0");
        assert_eq!(stats.per_source[1].samples_in, 2000);
        assert!(stats.per_source.iter().all(|s| s.done));
        assert!(stats
            .per_source
            .iter()
            .all(|s| s.health == SourceHealth::Healthy));
    }

    #[test]
    fn duplicate_source_id_is_refused() {
        // With resume off, a second claim on a live or completed id is a
        // duplicate, not a resume — the PR8 uniqueness contract.
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                resume_grace: Duration::ZERO,
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        let samples = vec![Complex32::new(0.0, 0.0); 512];
        let mut tx1 = TraceSender::connect_source(addr, "dup").unwrap();
        tx1.send_samples(meta(), &samples, SendRate::Max, 128)
            .unwrap();
        tx1.finish().unwrap();
        // Source ids are unique for the life of the server: a second claim
        // on the id — even after the first completed — is refused.
        let mut tx2 = TraceSender::connect_source(addr, "dup").unwrap();
        let second = tx2
            .send_samples(meta(), &samples, SendRate::Max, 128)
            .and_then(|_| tx2.finish());
        // The send may locally "succeed" (socket buffering); the rejection
        // is authoritative server-side.
        let _ = second;
        let t0 = Instant::now();
        while handle.stats().rejects == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
        let stats = run.join().unwrap();
        assert_eq!(stats.sources_joined, 1);
        assert_eq!(stats.rejects, 1);
        assert_eq!(stats.per_source.len(), 1);
        assert_eq!(stats.net.samples_in, 512);
    }

    #[test]
    fn garbage_first_frame_is_dropped_cleanly() {
        let server =
            FleetServer::bind("127.0.0.1:0", FleetConfig::default(), stub_factory(), None).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /ingest HTTP/1.1\r\n\r\nnot a frame")
            .unwrap();
        drop(s);
        let t0 = Instant::now();
        while handle.stats().net.decode_errors == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.stats().net.decode_errors, 1);
        handle.shutdown();
        run.join().unwrap();
    }

    #[test]
    fn dropped_source_resumes_byte_identical() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                expect: Some(1),
                resume_grace: Duration::from_secs(10),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());
        let mut sub = RecordSubscriber::connect(addr).unwrap();

        let samples = vec![Complex32::new(0.25, -0.25); 3072];
        // First connection: stream the first 1024 samples, then die without
        // a Bye. The source is parked.
        {
            let mut tx1 = TraceSender::connect_source(addr, "res").unwrap();
            tx1.send_samples(meta(), &samples[..1024], SendRate::Max, 256)
                .unwrap();
            // Dropped without finish(): simulated sender crash.
        }
        wait_for("source parked after crash", || {
            handle.stats().net.sessions_parked == 1
        });

        // Second connection claims the same id and (like a restarted
        // sender with no local state) resends from sample zero; the server
        // dedupes the overlap against its committed high-water mark.
        let mut tx2 = TraceSender::connect_source(addr, "res").unwrap();
        tx2.send_samples(meta(), &samples, SendRate::Max, 256)
            .unwrap();
        tx2.finish().unwrap();

        // The record stream is byte-identical to an uninterrupted run.
        let mut lines = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::SourceRecord { source, record } => {
                    assert_eq!(source, "res");
                    lines.push(record.line);
                }
                SubEvent::Bye => break,
                _ => {}
            }
        }
        assert_eq!(lines, vec!["session of 3072 samples".to_string()]);

        let stats = run.join().unwrap();
        assert_eq!(stats.sources_joined, 1);
        assert_eq!(stats.sources_done, 1);
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.net.sessions_parked, 1);
        assert_eq!(stats.net.samples_in, 3072);
        let s = &stats.per_source[0];
        assert_eq!(s.resumes, 1);
        assert_eq!(s.disconnects, 1);
        assert_eq!(s.samples_in, 3072);
        assert_eq!(s.chunks_duplicate, 4, "the 1024-sample overlap dedupes");
        assert_eq!(s.health, SourceHealth::Healthy);
        assert!(s.done);
    }

    #[test]
    fn quarantined_source_is_refused_and_finalized() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                quarantine_errors: 1,
                resume_grace: Duration::from_secs(10),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        // Stream one clean chunk, then flood garbage: the decode error is
        // attributed to the source and quarantines it immediately
        // (threshold 1), finalizing the stream with what arrived.
        let mut s = TcpStream::connect(addr).unwrap();
        let mut seq = 0u32;
        let mut send = |s: &mut TcpStream, f: &Frame| {
            let b = crate::frame::encode_frame(f, seq);
            seq = seq.wrapping_add(1);
            s.write_all(&b).unwrap();
        };
        send(&mut s, &Frame::Hello(Role::Producer));
        send(
            &mut s,
            &Frame::SourceHello {
                source: "noisy".into(),
                meta: meta(),
            },
        );
        send(
            &mut s,
            &Frame::SampleChunk {
                start_sample: 0,
                iq: vec![(100, -100); 256],
            },
        );
        s.write_all(b"\xde\xad\xbe\xef garbage flood \xde\xad\xbe\xef")
            .unwrap();
        s.flush().unwrap();
        wait_for("source quarantined and finalized", || {
            let st = handle.stats();
            st.quarantined == 1 && st.per_source.first().is_some_and(|s| s.done)
        });
        drop(s);

        // Reconnects on a quarantined id are refused.
        let mut tx = TraceSender::connect_source(addr, "noisy").unwrap();
        let refused = tx
            .send_samples(
                meta(),
                &vec![Complex32::new(0.0, 0.0); 256],
                SendRate::Max,
                128,
            )
            .and_then(|_| tx.finish());
        let _ = refused;
        wait_for("quarantined reconnect refused", || {
            handle.stats().rejects >= 1
        });

        handle.shutdown();
        let stats = run.join().unwrap();
        let s = &stats.per_source[0];
        assert_eq!(s.health, SourceHealth::Quarantined);
        assert_eq!(s.samples_in, 256, "the clean chunk before the flood kept");
        assert_eq!(s.records, 1, "partial stream still analyzed");
        assert!(s.decode_errors >= 1);
        assert!(s.rejects >= 1);
        assert!(s.done);
        assert_eq!(stats.sources_done, 1);
    }

    #[test]
    fn grace_expiry_evicts_parked_source() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                resume_grace: Duration::from_millis(50),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        {
            let mut tx = TraceSender::connect_source(addr, "ghost").unwrap();
            tx.send_samples(
                meta(),
                &vec![Complex32::new(0.5, 0.5); 512],
                SendRate::Max,
                128,
            )
            .unwrap();
            // Crash without Bye; nobody resumes within the 50 ms grace.
        }
        wait_for("parked source expires and finalizes", || {
            let st = handle.stats();
            st.sources_expired == 1 && st.per_source.first().is_some_and(|s| s.done)
        });
        handle.shutdown();
        let stats = run.join().unwrap();
        assert_eq!(stats.net.sessions_parked, 1);
        assert_eq!(stats.net.sessions_expired, 1);
        assert_eq!(stats.sources_expired, 1);
        let s = &stats.per_source[0];
        assert_eq!(s.health, SourceHealth::Evicted);
        assert_eq!(s.samples_in, 512);
        assert_eq!(s.records, 1, "evicted stream analyzed with what arrived");
        assert!(s.done);
    }

    #[test]
    fn shed_ladder_escalates_worst_source_and_recovers_with_hysteresis() {
        // Drive the sweep directly (forced ticks) against a bound-but-idle
        // server: deterministic rung walking without socket timing.
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                latency_budget: Some(Duration::from_millis(5)),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let inner = server.inner.clone();
        let hot = match register_source(&inner, "hot", meta()) {
            Admission::New(s) => s,
            _ => panic!("fresh id must register"),
        };
        let tick = |us: f64| {
            hot.deadline.record(us);
            latency_sweep(&inner, true);
        };

        // Violations escalate only after the streak, worst-first.
        tick(50_000.0);
        assert_eq!(hot.shed_rung(), SHED_NONE, "one violating sweep holds");
        assert!(
            inner.admission_paused.load(Ordering::SeqCst),
            "admission pauses on the first over-budget sweep"
        );
        tick(50_000.0);
        assert_eq!(hot.shed_rung(), SHED_THROTTLE);
        assert!(hot.shed_throttle_pending.load(Ordering::SeqCst));
        tick(50_000.0);
        tick(50_000.0);
        assert_eq!(hot.shed_rung(), SHED_DROP);
        tick(50_000.0);
        assert_eq!(hot.shed_rung(), SHED_DROP, "drop-oldest is the top rung");

        // New ids are refused while paused; the counter and snapshot agree.
        match admit_source(&inner, "newcomer", meta()) {
            Admission::Refused => {}
            _ => panic!("new id must be refused while over budget"),
        }
        assert_eq!(inner.admission_refused.load(Ordering::Relaxed), 1);

        // Recovery retraces the ladder one rung per restore streak, and
        // the first clean sweep reopens admission.
        for _ in 0..SHED_RESTORE_STREAK {
            tick(10.0);
        }
        assert_eq!(hot.shed_rung(), SHED_THROTTLE);
        assert!(!inner.admission_paused.load(Ordering::SeqCst));
        for _ in 0..SHED_RESTORE_STREAK {
            tick(10.0);
        }
        assert_eq!(hot.shed_rung(), SHED_NONE);
        match admit_source(&inner, "newcomer", meta()) {
            Admission::New(_) => {}
            _ => panic!("admission must reopen once under budget"),
        }

        let snap = inner.snapshot();
        let lat = snap.latency.expect("budget run must carry latency stats");
        assert_eq!(lat.budget_us, 5_000.0);
        assert!(lat.violations >= 5);
        assert_eq!(lat.admission_refused, 1);
        assert!(!lat.admission_paused);
        let row = snap
            .per_source
            .iter()
            .find(|s| s.source == "hot")
            .expect("per-source row");
        assert_eq!(row.shed, "none");
        assert!(row.deadline_p99_us < 5_000.0, "last window was clean");
    }

    #[test]
    fn shed_never_escalates_health_and_skips_quarantined_sources() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                latency_budget: Some(Duration::from_millis(5)),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let inner = server.inner.clone();
        let src = match register_source(&inner, "sick", meta()) {
            Admission::New(s) => s,
            _ => panic!("fresh id must register"),
        };
        for _ in 0..4 {
            src.deadline.record(50_000.0);
            latency_sweep(&inner, true);
        }
        assert_eq!(src.shed_rung(), SHED_DROP);
        assert_eq!(
            src.health(),
            SourceHealth::Healthy,
            "shedding is not a health violation"
        );
        // Once quarantined, the sweep ignores the source entirely: its
        // rung freezes and its violations stop pausing admission.
        raise_health(&inner, &src, SourceHealth::Quarantined, "test");
        src.deadline.record(50_000.0);
        latency_sweep(&inner, true);
        src.deadline.record(10.0);
        latency_sweep(&inner, true);
        assert!(
            !inner.admission_paused.load(Ordering::SeqCst),
            "a quarantined source cannot hold the admission gate"
        );
    }

    #[test]
    fn slow_pipeline_overload_is_visible_end_to_end() {
        use rfd_telemetry::Registry;
        // "laggy" gets a pipeline that stalls well past the 2 ms budget;
        // "quick" is untouched. The run must finish with the violation
        // booked, the laggy row over budget, and the quick row clean.
        let reg = Arc::new(Registry::new());
        let factory: PipelineFactory = Box::new(|source: &str| {
            let slow = source == "laggy";
            Box::new(
                move |meta: &StreamMeta, samples: Vec<Complex32>| -> Vec<RecordMsg> {
                    if slow {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    vec![RecordMsg {
                        start_us: 0.0,
                        end_us: samples.len() as f64 / meta.sample_rate * 1e6,
                        line: format!("session of {} samples", samples.len()),
                    }]
                },
            )
        });
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                latency_budget: Some(Duration::from_millis(2)),
                expect: Some(2),
                ..Default::default()
            },
            factory,
            Some(reg.clone()),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run().unwrap());

        let senders: Vec<_> = ["laggy", "quick"]
            .into_iter()
            .map(|name| {
                std::thread::spawn(move || {
                    let samples = vec![Complex32::new(0.1, -0.1); 2048];
                    let mut tx = TraceSender::connect_source(addr, name).unwrap();
                    tx.send_samples(meta(), &samples, SendRate::Max, 256)
                        .unwrap();
                    tx.finish().unwrap();
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }

        let stats = run.join().unwrap();
        let lat = stats.latency.expect("budget run must carry latency stats");
        assert!(lat.violations >= 1, "the stalled publish must be booked");
        assert!(reg.counter("events.budget_violated").get() >= 1);
        let row = |name: &str| {
            stats
                .per_source
                .iter()
                .find(|s| s.source == name)
                .unwrap()
                .clone()
        };
        assert!(row("laggy").deadline_p99_us > 2_000.0);
        assert_eq!(row("quick").records, 1, "unshed source publishes clean");
        assert!(stats
            .per_source
            .iter()
            .all(|s| s.health == SourceHealth::Healthy));
    }
}
