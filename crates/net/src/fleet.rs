//! The fleet plane: one server, N concurrent capture senders, one merged
//! record stream.
//!
//! ```text
//!  sender "roof"  ──TCP──▶ ┐                        ┌─▶ pipeline("roof")  ─┐
//!  sender "lab-3" ──TCP──▶ ├─ readiness loop ──────▶├─▶ pipeline("lab-3") ─┼─▶ RecordHub
//!  sender "van"   ──TCP──▶ ┘  (one thread,          └─▶ pipeline("van")   ─┘  (tagged)
//!                             nonblocking sockets)
//!  subscriber ◀──TCP── per-sub bounded queue ◀──────────────────────────────────┘
//! ```
//!
//! Where [`Server`](crate::Server) dedicates a blocking thread to every
//! connection and serializes all sessions through one shared pipeline, the
//! fleet server is built for *many concurrent senders*:
//!
//! * **One readiness loop** owns every producer socket. Sockets are
//!   nonblocking; the loop polls them round-robin (the same std-only
//!   poll-style the obs scrape endpoint uses — no epoll dependency), so a
//!   hundred senders cost one thread, not a hundred.
//! * **A source handshake** ([`Frame::SourceHello`]) binds each connection
//!   to a stable source id. Ids are unique for the life of the server — a
//!   duplicate handshake is refused, which keeps per-source streams, stats
//!   and metrics unambiguous.
//! * **Per-source sharding**: every source gets its own bounded
//!   [`ChunkQueue`] and its own [`Pipeline`] instance from the injected
//!   factory, drained by its own analysis thread. Sources never contend on
//!   a pipeline lock, and one source's backlog cannot delay another's
//!   analysis.
//! * **Per-source backpressure**: a full queue stops the loop from reading
//!   that source's socket (TCP pushes back to the sender) and sends a
//!   Throttle advisory on the saturation rising edge — other sockets keep
//!   being serviced.
//! * **Tagged fan-out**: records enter the [`RecordHub`] as
//!   [`HubMsg::SourceRecord`] so subscribers (and `rfdump watch --source`)
//!   can filter per source.
//!
//! Determinism: each source's samples are accumulated contiguously and
//! analyzed by a private pipeline exactly like an offline run of that trace
//! alone, and its records are published in one burst (meta, records in
//! offline order, source-bye) under the hub lock per message with no
//! interleaving *within* a source. A filtered subscriber therefore sees a
//! byte-identical record stream to `rfdump -r trace` at any worker count.
//! Merge order *between* sources is arrival order and intentionally
//! unspecified.
//!
//! Resume is not supported on fleet connections (a dropped sender finalizes
//! its source with the samples that arrived); fleet senders are expected to
//! retry at the application layer with a fresh source id.

use crate::frame::{Frame, FrameDecoder, Role, SeqFrame, StreamMeta};
use crate::hub::{HubMsg, RecordHub, Subscription};
use crate::queue::{ChunkQueue, OverflowPolicy, TryPushError};
use crate::server::{serve_subscriber, NetStats, NetStatsSnapshot, Pipeline, SubscriberCtx};
use rfd_dsp::complex::from_i16_iq;
use rfd_dsp::Complex32;
use rfd_fault::{Action, FaultPlan};
use rfd_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Builds one fresh [`Pipeline`] per fleet source.
pub type PipelineFactory = Box<dyn Fn() -> Box<dyn Pipeline> + Send + Sync>;

/// Send a producer an Ack every this many ingested chunks (matches the
/// single-stream server).
const ACK_EVERY: u64 = 16;

/// Idle sleep between readiness sweeps when no socket made progress.
const POLL: Duration = Duration::from_millis(1);

/// Fleet server knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-source ingest queue capacity, in sample chunks.
    pub queue_cap: usize,
    /// What a full per-source queue does to its sender.
    pub overflow: OverflowPolicy,
    /// Per-subscriber record queue capacity (slow-consumer eviction bound).
    pub sub_queue_cap: usize,
    /// Shut down cleanly after this many sources complete (bounded runs:
    /// tests, CI, benchmarks). `None` runs until [`FleetHandle::shutdown`].
    pub expect: Option<u64>,
    /// Idle interval after which a subscriber connection gets a Heartbeat.
    pub heartbeat: Duration,
    /// A producer socket silent for this long is evicted (its source is
    /// finalized with the samples that arrived).
    pub idle_timeout: Duration,
    /// Fault-injection plan for chaos testing (`net.server.read` site).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            queue_cap: 64,
            overflow: OverflowPolicy::Block,
            sub_queue_cap: 4096,
            expect: None,
            heartbeat: Duration::from_secs(1),
            idle_timeout: Duration::from_secs(30),
            faults: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-source state and statistics
// ---------------------------------------------------------------------------

/// One source's shared state: written by the readiness loop (ingest side)
/// and its analysis thread (publish side), read by stats snapshots.
struct SourceShared {
    name: Arc<str>,
    meta: StreamMeta,
    queue: ChunkQueue<Vec<Complex32>>,
    chunks_in: AtomicU64,
    samples_in: AtomicU64,
    chunks_duplicate: AtomicU64,
    sample_gaps: AtomicU64,
    throttles: AtomicU64,
    records: AtomicU64,
    /// Contiguous ingest high-water mark (next expected sample index).
    expected: AtomicU64,
    /// Ingest wall time, µs (first chunk to stream close).
    ingest_wall_us: AtomicU64,
    done: AtomicBool,
    /// Per-record publish duration, µs — the source's fan-out latency.
    fanout: Histogram,
    /// `net.fleet.source.<id>.queue_depth` when a registry is attached.
    queue_gauge: Option<Arc<Gauge>>,
    samples_ctr: Option<Arc<Counter>>,
    records_ctr: Option<Arc<Counter>>,
}

/// Point-in-time statistics for one fleet source.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSnapshot {
    /// The stable source id.
    pub source: String,
    /// Sample chunks ingested.
    pub chunks_in: u64,
    /// Complex samples ingested.
    pub samples_in: u64,
    /// Chunks skipped as duplicates of already-ingested samples.
    pub chunks_duplicate: u64,
    /// Samples missing from the contiguous stream.
    pub sample_gaps: u64,
    /// Chunks discarded by the drop-oldest overflow policy.
    pub chunks_dropped: u64,
    /// Throttle advisories sent to this source's sender.
    pub throttles: u64,
    /// Records published for this source.
    pub records: u64,
    /// Signal time ingested, µs.
    pub ingest_signal_us: u64,
    /// Wall time spent ingesting, µs.
    pub ingest_wall_us: u64,
    /// Record publish (fan-out) latency samples.
    pub fanout_count: u64,
    /// Fan-out latency p50, µs.
    pub fanout_p50_us: f64,
    /// Fan-out latency p99, µs.
    pub fanout_p99_us: f64,
    /// Whether the source's stream has ended and been analyzed.
    pub done: bool,
}

impl SourceSnapshot {
    fn of(s: &SourceShared) -> Self {
        Self {
            source: s.name.to_string(),
            chunks_in: s.chunks_in.load(Ordering::Relaxed),
            samples_in: s.samples_in.load(Ordering::Relaxed),
            chunks_duplicate: s.chunks_duplicate.load(Ordering::Relaxed),
            sample_gaps: s.sample_gaps.load(Ordering::Relaxed),
            chunks_dropped: s.queue.dropped(),
            throttles: s.throttles.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            ingest_signal_us: (s.expected.load(Ordering::Relaxed) as f64 / s.meta.sample_rate * 1e6)
                as u64,
            ingest_wall_us: s.ingest_wall_us.load(Ordering::Relaxed),
            fanout_count: s.fanout.count(),
            fanout_p50_us: s.fanout.quantile(0.5),
            fanout_p99_us: s.fanout.quantile(0.99),
            done: s.done.load(Ordering::Relaxed),
        }
    }

    /// The snapshot as a JSON object (one entry of the stats-json v8
    /// `fleet.per_source` map).
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        J::obj(vec![
            ("chunks_in", n(self.chunks_in)),
            ("samples_in", n(self.samples_in)),
            ("chunks_duplicate", n(self.chunks_duplicate)),
            ("sample_gaps", n(self.sample_gaps)),
            ("chunks_dropped", n(self.chunks_dropped)),
            ("throttles", n(self.throttles)),
            ("records", n(self.records)),
            ("ingest_signal_us", n(self.ingest_signal_us)),
            ("ingest_wall_us", n(self.ingest_wall_us)),
            ("fanout_count", n(self.fanout_count)),
            ("fanout_p50_us", J::num(self.fanout_p50_us)),
            ("fanout_p99_us", J::num(self.fanout_p99_us)),
            ("done", J::Bool(self.done)),
        ])
    }
}

/// Point-in-time fleet statistics: the wire-level rollup plus one
/// [`SourceSnapshot`] per source, sorted by source id.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Wire-level statistics (the stats-json `net` section).
    pub net: NetStatsSnapshot,
    /// Sources that completed their handshake.
    pub sources_joined: u64,
    /// Sources whose stream ended and whose records are published.
    pub sources_done: u64,
    /// Connections refused for a bad or duplicate source handshake.
    pub rejects: u64,
    /// Per-source statistics, sorted by source id.
    pub per_source: Vec<SourceSnapshot>,
}

impl FleetSnapshot {
    /// The snapshot as a JSON object (the stats-json v8 `fleet` section).
    /// `per_source` keys are sorted, so renderings are stable.
    pub fn to_json(&self) -> rfd_telemetry::json::JsonValue {
        use rfd_telemetry::json::JsonValue as J;
        let n = |v: u64| J::num(v as f64);
        let per: Vec<(String, J)> = self
            .per_source
            .iter()
            .map(|s| (s.source.clone(), s.to_json()))
            .collect();
        J::obj(vec![
            ("sources_joined", n(self.sources_joined)),
            ("sources_done", n(self.sources_done)),
            ("rejects", n(self.rejects)),
            ("per_source", J::Obj(per)),
        ])
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

struct FleetInner {
    cfg: FleetConfig,
    hub: RecordHub,
    stats: NetStats,
    factory: PipelineFactory,
    shutdown: AtomicBool,
    sources_joined: AtomicU64,
    sources_done: AtomicU64,
    rejects: AtomicU64,
    sources: Mutex<BTreeMap<Arc<str>, Arc<SourceShared>>>,
    registry: Option<Arc<Registry>>,
    /// `latency.net_fanout_us`, shared with the single-stream server's
    /// layout so dashboards see one family either way.
    fanout_hist: Option<Arc<Histogram>>,
    active_gauge: Option<Arc<Gauge>>,
    evictions_reported: AtomicU64,
}

impl FleetInner {
    fn emit(&self, kind: rfd_telemetry::event::EventKind, detail: String) {
        if let Some(r) = &self.registry {
            r.emit_event(kind, detail);
        }
    }

    fn note_evictions(&self) {
        if self.registry.is_none() {
            return;
        }
        let total = self.hub.evicted();
        let mut seen = self.evictions_reported.load(Ordering::Relaxed);
        while seen < total {
            match self.evictions_reported.compare_exchange(
                seen,
                seen + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.emit(
                        rfd_telemetry::event::EventKind::SlowConsumerEvicted,
                        format!("subscriber queue full (eviction #{})", seen + 1),
                    );
                    seen += 1;
                }
                Err(now) => seen = now,
            }
        }
    }

    fn snapshot(&self) -> FleetSnapshot {
        let per_source: Vec<SourceSnapshot> = {
            let map = self.sources.lock().unwrap_or_else(|e| e.into_inner());
            map.values().map(|s| SourceSnapshot::of(s)).collect()
        };
        FleetSnapshot {
            net: self.stats.snapshot(self.hub.evicted()),
            sources_joined: self.sources_joined.load(Ordering::Relaxed),
            sources_done: self.sources_done.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            per_source,
        }
    }
}

/// Cloneable handle for stopping a running fleet server and reading its
/// statistics.
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

impl FleetHandle {
    /// Asks the server to stop. In-flight sources are finalized with the
    /// samples that arrived; subscribers get a final Bye after the last
    /// record is published.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Current fleet statistics.
    pub fn stats(&self) -> FleetSnapshot {
        self.inner.snapshot()
    }
}

/// The multi-sensor ingest server. Bind, then [`FleetServer::run`].
pub struct FleetServer {
    listener: TcpListener,
    inner: Arc<FleetInner>,
}

/// One producer connection's place in the handshake.
enum ConnState {
    /// Nothing received yet; first frame must be a Hello.
    Await,
    /// Hello(Producer) received; next frame must be a SourceHello.
    Producer,
    /// Streaming samples for a registered source.
    Streaming(Arc<SourceShared>),
}

/// What servicing a connection decided.
enum Verdict {
    Keep,
    /// Close the connection (source, if any, already finalized).
    Drop,
    /// The connection declared the subscriber role and was handed off to a
    /// blocking subscriber thread.
    Subscriber(std::thread::JoinHandle<()>),
}

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Unsent outbound bytes (acks, throttles), flushed as the socket
    /// accepts them — the loop never blocks on a slow reverse path.
    out: Vec<u8>,
    out_seq: u32,
    state: ConnState,
    last_rx: Instant,
    /// A decoded chunk the source queue had no room for; retried before
    /// any further reads from this socket (per-source backpressure).
    pending: Option<Vec<Complex32>>,
    saturated: bool,
    chunks_since_ack: u64,
    expect_seq: Option<u32>,
    ingest_t0: Option<Instant>,
    /// Bye processed: flush `out`, then close.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_seq: 0,
            state: ConnState::Await,
            last_rx: Instant::now(),
            pending: None,
            saturated: false,
            chunks_since_ack: 0,
            expect_seq: None,
            ingest_t0: None,
            closing: false,
        }
    }

    /// Queues a frame on the outbox (flushed opportunistically).
    fn queue_frame(&mut self, stats: &NetStats, frame: &Frame) {
        let bytes = crate::frame::encode_frame(frame, self.out_seq);
        self.out_seq = self.out_seq.wrapping_add(1);
        stats.frames_out.add(1);
        stats.bytes_out.add(bytes.len() as u64);
        self.out.extend_from_slice(&bytes);
    }
}

impl FleetServer {
    /// Binds `addr` and prepares the fleet server around `factory` (one
    /// pipeline instance per source).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        cfg: FleetConfig,
        factory: PipelineFactory,
        registry: Option<Arc<Registry>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let fanout_hist = registry.as_ref().map(|r| {
            r.histogram("latency.net_fanout_us", || {
                Histogram::exponential(1.0, 1e7, 28)
            })
        });
        let active_gauge = registry
            .as_ref()
            .map(|r| r.gauge("net.fleet.active_sources"));
        let inner = Arc::new(FleetInner {
            hub: RecordHub::new(cfg.sub_queue_cap),
            stats: NetStats::new(registry.as_deref()),
            cfg,
            factory,
            shutdown: AtomicBool::new(false),
            sources_joined: AtomicU64::new(0),
            sources_done: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            sources: Mutex::new(BTreeMap::new()),
            registry,
            fanout_hist,
            active_gauge,
            evictions_reported: AtomicU64::new(0),
        });
        Ok(Self { listener, inner })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and stats from other threads.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            inner: self.inner.clone(),
        }
    }

    /// An in-process subscription to the merged tagged stream.
    pub fn subscribe(&self) -> Subscription {
        self.inner.hub.subscribe()
    }

    /// An in-process subscription filtered to one source.
    pub fn subscribe_filtered(&self, source: &str) -> Subscription {
        self.inner.hub.subscribe_filtered(source)
    }

    /// Runs the readiness loop until shutdown (or until
    /// [`FleetConfig::expect`] sources complete). Returns the final
    /// statistics.
    pub fn run(self) -> io::Result<FleetSnapshot> {
        self.listener.set_nonblocking(true)?;
        let inner = &self.inner;
        let mut conns: Vec<Conn> = Vec::new();
        let mut sub_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut analysis_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut bye_published = false;

        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut progressed = false;

            // Accept every connection ready right now.
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        inner.stats.connections.add(1);
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(true);
                        conns.push(Conn::new(stream));
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }

            // Service each producer socket round-robin.
            let mut i = 0;
            while i < conns.len() {
                match service_conn(inner, &mut conns[i], &mut analysis_threads, &mut progressed) {
                    Verdict::Keep => i += 1,
                    Verdict::Drop => {
                        let c = conns.swap_remove(i);
                        drop_conn(inner, c);
                        progressed = true;
                    }
                    Verdict::Subscriber(t) => {
                        conns.swap_remove(i);
                        sub_threads.push(t);
                        progressed = true;
                    }
                }
            }
            sub_threads.retain(|t| !t.is_finished());
            analysis_threads.retain(|t| !t.is_finished());

            // Bounded runs: once the expected number of sources has
            // completed (their records are already in subscriber queues),
            // publish the global Bye *before* raising shutdown so every
            // subscriber drains records first, then Bye — fully
            // deterministic teardown.
            if let Some(expect) = inner.cfg.expect {
                if inner.sources_done.load(Ordering::SeqCst) >= expect {
                    inner.note_evictions();
                    inner.hub.publish(HubMsg::Bye);
                    bye_published = true;
                    inner.shutdown.store(true, Ordering::SeqCst);
                }
            }

            if !progressed {
                std::thread::sleep(POLL);
            }
        }

        // Teardown: finalize whatever is still streaming, wait for every
        // analysis thread to publish, then release the subscribers.
        for c in conns {
            drop_conn(inner, c);
        }
        for t in analysis_threads {
            let _ = t.join();
        }
        inner.note_evictions();
        if !bye_published {
            inner.hub.publish(HubMsg::Bye);
        }
        for t in sub_threads {
            let _ = t.join();
        }
        Ok(inner.snapshot())
    }
}

/// Closes a dying connection, finalizing its source if it was streaming.
fn drop_conn(inner: &Arc<FleetInner>, mut c: Conn) {
    // Best-effort flush of queued acks so a clean Bye ends with its final
    // Ack delivered.
    let _ = c.stream.write_all(&c.out);
    if let ConnState::Streaming(src) = &c.state {
        if let Some(t0) = c.ingest_t0 {
            src.ingest_wall_us
                .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        finalize_source(inner, src);
    }
}

/// Closes a source's ingest queue (its analysis thread runs to completion
/// and publishes) and books session-level stats. Idempotent per source via
/// the closed queue.
fn finalize_source(inner: &Arc<FleetInner>, src: &Arc<SourceShared>) {
    src.queue.close();
    inner.stats.chunks_dropped.add(src.queue.dropped());
    inner.stats.sessions.add(1);
}

/// Services one connection for one sweep: flush the outbox, retry a pending
/// chunk, process decodable frames, read more bytes.
fn service_conn(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    analysis_threads: &mut Vec<std::thread::JoinHandle<()>>,
    progressed: &mut bool,
) -> Verdict {
    // 1. Flush queued outbound bytes (acks, throttles, byes).
    if !c.out.is_empty() {
        match c.stream.write(&c.out) {
            Ok(0) => return Verdict::Drop,
            Ok(n) => {
                c.out.drain(..n);
                *progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Verdict::Drop,
        }
    }
    if c.closing {
        return if c.out.is_empty() {
            Verdict::Drop
        } else {
            Verdict::Keep
        };
    }

    // 2. Retry the chunk the source queue previously refused. Until it
    // fits, this socket is not read: TCP backpressure per source.
    if let Some(chunk) = c.pending.take() {
        let src = match &c.state {
            ConnState::Streaming(s) => Some(s.clone()),
            _ => None,
        };
        if let Some(src) = src {
            match src.queue.try_push(chunk) {
                Ok(_) => {
                    if let Some(g) = &src.queue_gauge {
                        g.set(src.queue.len() as i64);
                    }
                    *progressed = true;
                }
                Err(TryPushError::Full(chunk)) => {
                    c.pending = Some(chunk);
                    return Verdict::Keep;
                }
                Err(TryPushError::Closed(_)) => return Verdict::Drop,
            }
        }
    }

    // 3. Drain decodable frames.
    if let Some(v) = process_frames(inner, c, analysis_threads, progressed) {
        return v;
    }
    if c.pending.is_some() || c.closing {
        return Verdict::Keep;
    }

    // 4. Read more bytes (nonblocking), with the same chaos site as the
    // blocking server so fault plans apply to either flavor.
    if let Some(plan) = &inner.cfg.faults {
        match plan.decide("net.server.read") {
            Some(Action::Io) => return Verdict::Drop,
            Some(Action::Disconnect) => return eof_verdict(inner, c),
            Some(Action::Slow(d)) => std::thread::sleep(d),
            Some(Action::Spin(d)) => rfd_fault::spin_for(d),
            _ => {}
        }
    }
    let mut buf = [0u8; 16 * 1024];
    match c.stream.read(&mut buf) {
        Ok(0) => return eof_verdict(inner, c),
        Ok(n) => {
            inner.stats.bytes_in.add(n as u64);
            c.dec.push(&buf[..n]);
            c.last_rx = Instant::now();
            *progressed = true;
            if let Some(v) = process_frames(inner, c, analysis_threads, progressed) {
                return v;
            }
        }
        Err(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::Interrupted =>
        {
            if c.last_rx.elapsed() >= inner.cfg.idle_timeout {
                inner.stats.idle_evictions.add(1);
                return Verdict::Drop;
            }
        }
        Err(_) => return Verdict::Drop,
    }
    Verdict::Keep
}

/// Clean EOF from a peer: for a streaming source this is an implicit Bye
/// (fleet connections have no resume).
fn eof_verdict(_inner: &Arc<FleetInner>, c: &mut Conn) -> Verdict {
    c.closing = true;
    if c.out.is_empty() {
        Verdict::Drop
    } else {
        Verdict::Keep
    }
}

/// The handshake stage of a connection, copied out of [`ConnState`] so the
/// frame dispatch below can mutate the connection freely.
#[derive(Clone, Copy, PartialEq)]
enum Stage {
    Await,
    Producer,
    Streaming,
}

/// Decodes and applies as many frames as possible. Returns a verdict when
/// the connection changes hands or must close, `None` to continue.
fn process_frames(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    analysis_threads: &mut Vec<std::thread::JoinHandle<()>>,
    progressed: &mut bool,
) -> Option<Verdict> {
    loop {
        if c.pending.is_some() || c.closing {
            return None;
        }
        let SeqFrame { seq, frame } = match c.dec.next_frame() {
            Ok(Some(sf)) => sf,
            Ok(None) => return None,
            Err(_) => {
                inner.stats.decode_errors.add(1);
                return Some(Verdict::Drop);
            }
        };
        inner.stats.frames_in.add(1);
        *progressed = true;
        if let Some(want) = c.expect_seq {
            if seq != want {
                inner.stats.seq_gaps.add(u64::from(seq.wrapping_sub(want)));
            }
        }
        c.expect_seq = Some(seq.wrapping_add(1));

        let (stage, src) = match &c.state {
            ConnState::Await => (Stage::Await, None),
            ConnState::Producer => (Stage::Producer, None),
            ConnState::Streaming(s) => (Stage::Streaming, Some(s.clone())),
        };
        match (stage, frame) {
            (Stage::Await, Frame::Hello(Role::Producer)) => {
                inner.stats.producers.add(1);
                c.state = ConnState::Producer;
            }
            (Stage::Await, Frame::Hello(Role::Subscriber)) => {
                // Hand the socket to a blocking subscriber thread; the
                // shared serve loop handles Resume, replay and heartbeats.
                let _ = c.stream.set_nonblocking(false);
                let _ = c.stream.set_read_timeout(Some(Duration::from_millis(50)));
                let stream = match c.stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return Some(Verdict::Drop),
                };
                let dec = std::mem::replace(&mut c.dec, FrameDecoder::new());
                let inner = inner.clone();
                let t = std::thread::Builder::new()
                    .name("rfd-fleet-sub".into())
                    .spawn(move || {
                        let ctx = SubscriberCtx {
                            hub: &inner.hub,
                            stats: &inner.stats,
                            shutdown: &inner.shutdown,
                            heartbeat: inner.cfg.heartbeat,
                        };
                        serve_subscriber(&ctx, stream, dec);
                    })
                    .expect("spawn fleet subscriber thread");
                return Some(Verdict::Subscriber(t));
            }
            (Stage::Producer, Frame::SourceHello { source, meta }) => {
                match register_source(inner, &source, meta) {
                    Some(src) => {
                        // Spawn the source's private analysis thread.
                        let t = {
                            let inner = inner.clone();
                            let src = src.clone();
                            std::thread::Builder::new()
                                .name(format!("rfd-fleet-{source}"))
                                .spawn(move || analysis_thread(inner, src))
                                .expect("spawn fleet analysis thread")
                        };
                        analysis_threads.push(t);
                        // Anchor the sender at position zero.
                        inner.stats.acks_sent.add(1);
                        c.queue_frame(
                            &inner.stats,
                            &Frame::Ack {
                                session: inner.sources_joined.load(Ordering::Relaxed),
                                position: 0,
                            },
                        );
                        c.state = ConnState::Streaming(src);
                    }
                    None => {
                        // Duplicate source id: refuse cleanly.
                        inner.rejects.fetch_add(1, Ordering::Relaxed);
                        c.queue_frame(&inner.stats, &Frame::Bye);
                        c.closing = true;
                    }
                }
            }
            (Stage::Streaming, Frame::SampleChunk { start_sample, iq }) => {
                let src = src.expect("streaming state carries its source");
                ingest_chunk(inner, c, &src, start_sample, iq);
            }
            (Stage::Streaming, Frame::Bye) => {
                let src = src.expect("streaming state carries its source");
                if let Some(t0) = c.ingest_t0.take() {
                    src.ingest_wall_us
                        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                }
                // Final authoritative ack, then close after the flush.
                inner.stats.acks_sent.add(1);
                let position = src.expected.load(Ordering::Relaxed);
                let ack = Frame::Ack {
                    session: 0,
                    position,
                };
                c.queue_frame(&inner.stats, &ack);
                finalize_source(inner, &src);
                c.state = ConnState::Await;
                c.closing = true;
            }
            (_, Frame::Heartbeat) => {}
            (Stage::Await, Frame::Bye) | (Stage::Producer, Frame::Bye) => {
                c.closing = true;
            }
            // Anything else — a chunk before the handshake, a duplicate
            // SourceHello on a streaming connection, a server→subscriber
            // tag from a producer — is a protocol violation.
            (_, _) => {
                inner.stats.decode_errors.add(1);
                return Some(Verdict::Drop);
            }
        }
    }
}

/// Registers a new source: validates uniqueness, creates its queue, shared
/// state and per-source metrics, and announces it on the hub.
fn register_source(
    inner: &Arc<FleetInner>,
    source: &str,
    meta: StreamMeta,
) -> Option<Arc<SourceShared>> {
    let name: Arc<str> = Arc::from(source);
    let reg = inner.registry.as_deref();
    let src = Arc::new(SourceShared {
        meta,
        queue: ChunkQueue::new(inner.cfg.queue_cap, inner.cfg.overflow),
        chunks_in: AtomicU64::new(0),
        samples_in: AtomicU64::new(0),
        chunks_duplicate: AtomicU64::new(0),
        sample_gaps: AtomicU64::new(0),
        throttles: AtomicU64::new(0),
        records: AtomicU64::new(0),
        expected: AtomicU64::new(0),
        ingest_wall_us: AtomicU64::new(0),
        done: AtomicBool::new(false),
        fanout: Histogram::exponential(1.0, 1e7, 28),
        queue_gauge: reg.map(|r| r.gauge(&format!("net.fleet.source.{source}.queue_depth"))),
        samples_ctr: reg.map(|r| r.counter(&format!("net.fleet.source.{source}.samples_in"))),
        records_ctr: reg.map(|r| r.counter(&format!("net.fleet.source.{source}.records"))),
        name: name.clone(),
    });
    {
        let mut map = inner.sources.lock().unwrap_or_else(|e| e.into_inner());
        // Source ids are unique for the life of the server — an id that has
        // already streamed (even to completion) is refused, keeping every
        // per-source stream and stat unambiguous.
        if map.contains_key(&name) {
            return None;
        }
        map.insert(name.clone(), src.clone());
    }
    inner.sources_joined.fetch_add(1, Ordering::SeqCst);
    if let Some(g) = &inner.active_gauge {
        g.add(1);
    }
    inner.emit(
        rfd_telemetry::event::EventKind::SourceJoined,
        format!("source {name} joined ({:.3} Msps)", meta.sample_rate / 1e6),
    );
    inner.hub.publish(HubMsg::SourceMeta { source: name, meta });
    Some(src)
}

/// Ingests one sample chunk for a streaming source: contiguity accounting,
/// scale conversion, throttle advisories, queue push, periodic acks.
fn ingest_chunk(
    inner: &Arc<FleetInner>,
    c: &mut Conn,
    src: &Arc<SourceShared>,
    start_sample: u64,
    iq: Vec<(i16, i16)>,
) {
    c.ingest_t0.get_or_insert_with(Instant::now);
    inner.stats.chunks_in.add(1);
    src.chunks_in.fetch_add(1, Ordering::Relaxed);
    let n = iq.len() as u64;
    let end = start_sample.saturating_add(n);
    let expected = src.expected.load(Ordering::Relaxed);
    if end <= expected {
        inner.stats.chunks_duplicate.add(1);
        src.chunks_duplicate.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if start_sample > expected {
        inner.stats.sample_gaps.add(start_sample - expected);
        src.sample_gaps
            .fetch_add(start_sample - expected, Ordering::Relaxed);
    }
    let skip = expected.saturating_sub(start_sample) as usize;
    src.expected.store(end, Ordering::Relaxed);
    let scale = src.meta.scale;
    let samples: Vec<Complex32> = iq[skip..]
        .iter()
        .map(|&(i, q)| from_i16_iq(i, q).scale(scale))
        .collect();
    inner.stats.samples_in.add(samples.len() as u64);
    src.samples_in
        .fetch_add(samples.len() as u64, Ordering::Relaxed);
    if let Some(ctr) = &src.samples_ctr {
        ctr.add(samples.len() as u64);
    }

    // Throttle advisory on the saturation rising edge, per source.
    let depth = src.queue.len();
    if depth >= src.queue.capacity() {
        if !c.saturated {
            c.saturated = true;
            inner.stats.throttles_sent.add(1);
            src.throttles.fetch_add(1, Ordering::Relaxed);
            inner.emit(
                rfd_telemetry::event::EventKind::ThrottleAdvisory,
                format!(
                    "source {} ingest queue at {depth}/{}",
                    src.name,
                    src.queue.capacity()
                ),
            );
            let frame = Frame::Throttle {
                depth: depth as u32,
                cap: src.queue.capacity() as u32,
            };
            c.queue_frame(&inner.stats, &frame);
        }
    } else {
        c.saturated = false;
    }

    match src.queue.try_push(samples) {
        Ok(_) => {
            if let Some(g) = &src.queue_gauge {
                g.set(src.queue.len() as i64);
            }
        }
        Err(TryPushError::Full(samples)) => {
            // Backpressure: park the chunk; the socket is not read again
            // until it fits.
            c.pending = Some(samples);
        }
        Err(TryPushError::Closed(_)) => {
            c.closing = true;
            return;
        }
    }

    c.chunks_since_ack += 1;
    if c.chunks_since_ack >= ACK_EVERY {
        c.chunks_since_ack = 0;
        inner.stats.acks_sent.add(1);
        let position = src.expected.load(Ordering::Relaxed);
        let frame = Frame::Ack {
            session: 0,
            position,
        };
        c.queue_frame(&inner.stats, &frame);
    }
}

/// One source's analysis thread: accumulate the contiguous sample stream,
/// run the source's private pipeline when the stream ends, publish tagged
/// records (offline order) and the source's Bye.
fn analysis_thread(inner: Arc<FleetInner>, src: Arc<SourceShared>) {
    let mut samples: Vec<Complex32> = Vec::new();
    while let Some(chunk) = src.queue.pop() {
        samples.extend_from_slice(&chunk);
        if let Some(g) = &src.queue_gauge {
            g.set(src.queue.len() as i64);
        }
    }
    let mut pipeline = (inner.factory)();
    let records = pipeline.analyze(&src.meta, samples);
    for rec in records {
        inner.stats.records_published.add(1);
        src.records.fetch_add(1, Ordering::Relaxed);
        if let Some(ctr) = &src.records_ctr {
            ctr.add(1);
        }
        let t0 = Instant::now();
        inner.hub.publish(HubMsg::SourceRecord {
            source: src.name.clone(),
            record: rec,
        });
        let us = t0.elapsed().as_secs_f64() * 1e6;
        src.fanout.record(us);
        if let Some(h) = &inner.fanout_hist {
            h.record(us);
        }
    }
    inner.hub.publish(HubMsg::SourceBye {
        source: src.name.clone(),
    });
    inner.note_evictions();
    inner
        .stats
        .ingest_signal_us
        .add((src.expected.load(Ordering::Relaxed) as f64 / src.meta.sample_rate * 1e6) as u64);
    inner
        .stats
        .ingest_wall_us
        .add(src.ingest_wall_us.load(Ordering::Relaxed));
    src.done.store(true, Ordering::SeqCst);
    if let Some(g) = &inner.active_gauge {
        g.add(-1);
    }
    inner.emit(
        rfd_telemetry::event::EventKind::SourceLeft,
        format!(
            "source {} done ({} records)",
            src.name,
            src.records.load(Ordering::Relaxed)
        ),
    );
    inner.sources_done.fetch_add(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{RecordSubscriber, SendRate, SubEvent, TraceSender};
    use crate::frame::RecordMsg;

    fn stub_factory() -> PipelineFactory {
        Box::new(|| {
            Box::new(
                |meta: &StreamMeta, samples: Vec<Complex32>| -> Vec<RecordMsg> {
                    vec![RecordMsg {
                        start_us: 0.0,
                        end_us: samples.len() as f64 / meta.sample_rate * 1e6,
                        line: format!("session of {} samples", samples.len()),
                    }]
                },
            )
        })
    }

    fn meta() -> StreamMeta {
        StreamMeta {
            sample_rate: 1e6,
            center_hz: 0.0,
            scale: 1.0,
        }
    }

    #[test]
    fn three_sources_merge_with_tags() {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            FleetConfig {
                expect: Some(3),
                ..Default::default()
            },
            stub_factory(),
            None,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let run = std::thread::spawn(move || server.run().unwrap());

        let mut sub = RecordSubscriber::connect(addr).unwrap();
        let senders: Vec<_> = (0..3)
            .map(|k| {
                std::thread::spawn(move || {
                    let n = 1000 * (k + 1);
                    let samples = vec![Complex32::new(0.1, -0.1); n];
                    let mut tx = TraceSender::connect_source(addr, &format!("sensor-{k}")).unwrap();
                    tx.send_samples(meta(), &samples, SendRate::Max, 256)
                        .unwrap();
                    tx.finish().unwrap();
                })
            })
            .collect();
        for s in senders {
            s.join().unwrap();
        }

        let mut by_source: std::collections::BTreeMap<String, Vec<String>> =
            std::collections::BTreeMap::new();
        let mut byes = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::SourceRecord { source, record } => {
                    by_source.entry(source).or_default().push(record.line);
                }
                SubEvent::SourceBye { source } => byes.push(source),
                SubEvent::Bye => break,
                _ => {}
            }
        }
        for k in 0..3usize {
            assert_eq!(
                by_source.get(&format!("sensor-{k}")).map(Vec::as_slice),
                Some(&[format!("session of {} samples", 1000 * (k + 1))][..]),
            );
        }
        byes.sort();
        assert_eq!(byes, vec!["sensor-0", "sensor-1", "sensor-2"]);

        let stats = run.join().unwrap();
        assert_eq!(stats.sources_joined, 3);
        assert_eq!(stats.sources_done, 3);
        assert_eq!(stats.net.samples_in, 1000 + 2000 + 3000);
        assert_eq!(stats.net.decode_errors, 0);
        assert_eq!(stats.per_source.len(), 3);
        assert_eq!(stats.per_source[0].source, "sensor-0");
        assert_eq!(stats.per_source[1].samples_in, 2000);
        assert!(stats.per_source.iter().all(|s| s.done));
    }

    #[test]
    fn duplicate_source_id_is_refused() {
        let server =
            FleetServer::bind("127.0.0.1:0", FleetConfig::default(), stub_factory(), None).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());

        let samples = vec![Complex32::new(0.0, 0.0); 512];
        let mut tx1 = TraceSender::connect_source(addr, "dup").unwrap();
        tx1.send_samples(meta(), &samples, SendRate::Max, 128)
            .unwrap();
        tx1.finish().unwrap();
        // Source ids are unique for the life of the server: a second claim
        // on the id — even after the first completed — is refused.
        let mut tx2 = TraceSender::connect_source(addr, "dup").unwrap();
        let second = tx2
            .send_samples(meta(), &samples, SendRate::Max, 128)
            .and_then(|_| tx2.finish());
        // The send may locally "succeed" (socket buffering); the rejection
        // is authoritative server-side.
        let _ = second;
        let t0 = Instant::now();
        while handle.stats().rejects == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        handle.shutdown();
        let stats = run.join().unwrap();
        assert_eq!(stats.sources_joined, 1);
        assert_eq!(stats.rejects, 1);
        assert_eq!(stats.per_source.len(), 1);
        assert_eq!(stats.net.samples_in, 512);
    }

    #[test]
    fn garbage_first_frame_is_dropped_cleanly() {
        let server =
            FleetServer::bind("127.0.0.1:0", FleetConfig::default(), stub_factory(), None).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let run = std::thread::spawn(move || server.run().unwrap());
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /ingest HTTP/1.1\r\n\r\nnot a frame")
            .unwrap();
        drop(s);
        let t0 = Instant::now();
        while handle.stats().net.decode_errors == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.stats().net.decode_errors, 1);
        handle.shutdown();
        run.join().unwrap();
    }
}
