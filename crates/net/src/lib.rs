//! rfd-net — the wire layer of the monitor: a framed, versioned protocol
//! for shipping raw sample streams *into* the rfdump pipeline and decoded
//! record streams *out* to live subscribers, plus the server that joins the
//! two.
//!
//! The paper's architecture assumes samples arrive from a radio front-end
//! and analysis results are consumed by "visualizer" clients; this crate is
//! that seam, std-only:
//!
//! * [`frame`] — the `RFDN` frame codec: length-prefixed, CRC-protected,
//!   sequence-numbered frames with a hardened incremental decoder.
//! * [`queue`] — the bounded ingest queue with explicit overflow policy
//!   (block = lossless backpressure, drop-oldest = lossy real-time).
//! * [`hub`] — record fan-out with per-subscriber bounded queues and
//!   slow-consumer eviction.
//! * [`server`] — the TCP server: producers in, subscribers out, one
//!   [`Pipeline`] in the middle.
//! * [`fleet`] — the multi-sensor ingest server: one nonblocking readiness
//!   loop accepts N concurrent capture senders, shards each source onto its
//!   own pipeline instance, and merges the record streams with per-source
//!   tags.
//! * [`client`] — [`TraceSender`] and [`RecordSubscriber`], what the CLI's
//!   `send` / `watch` modes wrap.
//!
//! The analysis stage itself is injected via the [`Pipeline`] trait, so
//! this crate never depends on the pipeline crate (the dependency points
//! the other way: the `rfdump` binary implements [`Pipeline`] with its
//! offline architecture, which is what makes the live record stream
//! byte-identical to offline output on the same samples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fleet;
pub mod frame;
pub mod hub;
pub mod queue;
pub mod server;

pub use client::{
    JournaledSubscriber, RecordSubscriber, ResilientSender, ResilientSubscriber, RetryPolicy,
    SendRate, SendReport, SubEvent, TraceSender,
};
pub use fleet::{
    FleetConfig, FleetHandle, FleetLatencySnapshot, FleetServer, FleetSnapshot, PipelineFactory,
    SourceHealth, SourceSnapshot,
};
pub use frame::{
    validate_source_id, Frame, FrameDecoder, FrameError, RecordMsg, Role, StreamMeta, MAX_SOURCE_ID,
};
pub use hub::{HubMsg, RecordHub, Subscription};
pub use queue::{ChunkQueue, OverflowPolicy, PushOutcome, TryPushError};
pub use server::{NetStatsSnapshot, Pipeline, Server, ServerConfig, ServerHandle};
