//! The `RFDN` framed wire protocol.
//!
//! Everything rfd-net puts on a TCP stream is a *frame*: a fixed 20-byte
//! header followed by a typed payload. The framing is deliberately dumb —
//! length-prefixed, versioned, CRC-protected — so both ends can validate
//! every byte before acting on it and a malformed stream is rejected with a
//! structured error instead of a panic or an unbounded allocation.
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "RFDN"
//!      4     1  version      1
//!      5     1  frame type   (Hello .. Throttle, see below)
//!      6     2  flags        reserved, must be zero (LE u16)
//!      8     4  seq          per-direction frame sequence number (LE u32)
//!     12     4  payload_len  LE u32, <= MAX_PAYLOAD
//!     16     4  crc32        CRC-32/IEEE over the payload bytes (LE u32)
//!     20     …  payload      payload_len bytes, layout per frame type
//! ```
//!
//! All multi-byte integers are little-endian, matching the `.rfdt` trace
//! format. The `seq` field increments by one per frame *per direction*; a
//! receiver counts gaps for loss accounting (TCP itself never loses frames,
//! but a relay with a drop-oldest policy may legitimately skip sequence
//! numbers, and the counters make that visible end to end).
//!
//! Payload layouts:
//!
//! * **Hello** — `role: u8` (0 producer, 1 subscriber).
//! * **StreamMeta** — `sample_rate: f64, center_hz: f64, scale: f32`;
//!   validated exactly like a `.rfdt` header.
//! * **SampleChunk** — `start_sample: u64, n: u32`, then `n` interleaved
//!   `i16` I/Q pairs. Samples stay in the USRP's native quantized form on
//!   the wire; the receiving end applies `scale` from the stream meta, so a
//!   relayed trace decodes bit-identically to a locally read one.
//! * **Record** — `start_us: f64, end_us: f64, line_len: u16`, then the
//!   UTF-8 rendered record line.
//! * **Stats** — a UTF-8 JSON document (server-side session summary).
//! * **Heartbeat** / **Bye** — empty.
//! * **Throttle** — `depth: u32, cap: u32`: the server's ingest queue
//!   occupancy, sent to a producer as an explicit backpressure advisory.
//! * **Ack** — `session: u64, position: u64`: the server's durable
//!   high-water mark. For a producer, `position` is the contiguous sample
//!   count ingested for `session`; a reconnecting sender resumes from there.
//!   For a subscriber, acknowledgements are implicit in the stream position.
//! * **Resume** — `session: u64, position: u64`: sent by a reconnecting
//!   client right after Hello. A producer resumes session `session` (its
//!   `position` is advisory — the server replies with the authoritative Ack);
//!   a subscriber uses `session = 0` and `position` = the count of stream
//!   messages already seen (`u64::MAX` means live-only, no replay).
//! * **SourceHello** — `id_len: u8`, the source id bytes, then the
//!   StreamMeta layout. A fleet sender's handshake: declares the stable
//!   source id this connection streams for, plus the stream metadata. The
//!   id is 1..=[`MAX_SOURCE_ID`] bytes of `[A-Za-z0-9._-]` — validated
//!   before any allocation beyond the frame payload itself. Also sent
//!   server → subscriber to announce a source joining the merged stream.
//! * **SourceRecord** — `id_len: u8`, the source id bytes, then the Record
//!   layout: a decoded record tagged with the source it came from (fleet
//!   server → subscriber).
//! * **SourceBye** — `id_len: u8`, the source id bytes: one source's stream
//!   ended (fleet server → subscriber); other sources keep flowing.

use rfd_dsp::coding::Crc;
use std::fmt;

/// Magic bytes opening every frame.
pub const MAGIC: &[u8; 4] = b"RFDN";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 20;
/// Upper bound on a frame payload; anything larger is rejected before any
/// allocation happens.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Samples per [`Frame::SampleChunk`] the clients send by default (16 KiB
/// of I/Q per frame — small enough to interleave Throttle round-trips,
/// large enough to amortize the header).
pub const DEFAULT_CHUNK_SAMPLES: usize = 4096;
/// Upper bound on a fleet source id, in bytes. Small enough that tagging
/// every record with the full id stays cheap on the wire.
pub const MAX_SOURCE_ID: usize = 64;

/// Validates a fleet source id: 1..=[`MAX_SOURCE_ID`] bytes drawn from
/// `[A-Za-z0-9._-]`. The charset keeps ids safe to embed in metric names,
/// file names and record-line prefixes without quoting.
pub fn validate_source_id(id: &str) -> Result<(), FrameError> {
    if id.is_empty() {
        return Err(FrameError::BadPayload("empty source id"));
    }
    if id.len() > MAX_SOURCE_ID {
        return Err(FrameError::BadPayload("source id too long"));
    }
    if !id
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(FrameError::BadPayload("source id has invalid characters"));
    }
    Ok(())
}

/// CRC-32/IEEE over `data`, as stored in the frame header.
pub fn payload_crc(data: &[u8]) -> u32 {
    Crc::crc32_ieee().compute(data) as u32
}

/// Who a connection speaks for, declared in its Hello frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Pushes a sample stream into the server.
    Producer,
    /// Receives the decoded record stream.
    Subscriber,
}

impl Role {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Role::Producer),
            1 => Some(Role::Subscriber),
            _ => None,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Role::Producer => 0,
            Role::Subscriber => 1,
        }
    }
}

/// Stream metadata a producer announces before its first sample chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeta {
    /// Complex sample rate, Hz.
    pub sample_rate: f64,
    /// Band center relative to the 2.4 GHz band start, Hz.
    pub center_hz: f64,
    /// Amplitude scale applied to the wire's i16 I/Q values.
    pub scale: f32,
}

impl StreamMeta {
    /// Validates the fields the way `rfd_ether::trace::decode_trace` does.
    pub fn validate(&self) -> Result<(), FrameError> {
        if !self.sample_rate.is_finite() || self.sample_rate <= 0.0 {
            return Err(FrameError::BadPayload("non-positive sample rate"));
        }
        if !self.center_hz.is_finite() {
            return Err(FrameError::BadPayload("non-finite center frequency"));
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(FrameError::BadPayload("non-positive scale"));
        }
        Ok(())
    }
}

/// A decoded record line as carried by a Record frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMsg {
    /// Transmission start, µs from stream start.
    pub start_us: f64,
    /// Transmission end, µs.
    pub end_us: f64,
    /// The rendered (tcpdump-style) record line.
    pub line: String,
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Connection opener declaring the peer's role.
    Hello(Role),
    /// Sample-stream metadata (producer → server, server → subscriber).
    StreamMeta(StreamMeta),
    /// A run of quantized I/Q samples.
    SampleChunk {
        /// Index of the first sample in the stream.
        start_sample: u64,
        /// Interleaved i16 I/Q pairs.
        iq: Vec<(i16, i16)>,
    },
    /// One decoded packet record.
    Record(RecordMsg),
    /// Server session statistics, as a JSON document.
    Stats(String),
    /// Keep-alive on an otherwise idle direction.
    Heartbeat,
    /// Clean end of stream.
    Bye,
    /// Backpressure advisory: ingest queue at `depth` of `cap`.
    Throttle {
        /// Current ingest queue depth.
        depth: u32,
        /// Ingest queue capacity.
        cap: u32,
    },
    /// Durable-progress acknowledgement (server → client).
    Ack {
        /// The server-assigned session id.
        session: u64,
        /// Contiguous progress: samples ingested (producer sessions) or
        /// stream messages delivered (subscriber sessions).
        position: u64,
    },
    /// Reconnect request (client → server, right after Hello).
    Resume {
        /// The session to resume (producers; 0 for subscribers).
        session: u64,
        /// The client's last known position (see [`Frame::Ack`]).
        position: u64,
    },
    /// Fleet source handshake: a stable source id plus the stream metadata
    /// (sender → fleet server), also used server → subscriber to announce a
    /// source joining the merged stream.
    SourceHello {
        /// The stable source id (see [`validate_source_id`]).
        source: String,
        /// The source's stream metadata.
        meta: StreamMeta,
    },
    /// A decoded record tagged with the source it came from (fleet server →
    /// subscriber).
    SourceRecord {
        /// The source the record belongs to.
        source: String,
        /// The record itself.
        record: RecordMsg,
    },
    /// One source's stream ended; the merged stream continues (fleet server
    /// → subscriber).
    SourceBye {
        /// The source that finished.
        source: String,
    },
}

impl Frame {
    /// The wire type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello(_) => 0,
            Frame::StreamMeta(_) => 1,
            Frame::SampleChunk { .. } => 2,
            Frame::Record(_) => 3,
            Frame::Stats(_) => 4,
            Frame::Heartbeat => 5,
            Frame::Bye => 6,
            Frame::Throttle { .. } => 7,
            Frame::Ack { .. } => 8,
            Frame::Resume { .. } => 9,
            Frame::SourceHello { .. } => 10,
            Frame::SourceRecord { .. } => 11,
            Frame::SourceBye { .. } => 12,
        }
    }

    /// Short human name for counters and errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "hello",
            Frame::StreamMeta(_) => "stream-meta",
            Frame::SampleChunk { .. } => "sample-chunk",
            Frame::Record(_) => "record",
            Frame::Stats(_) => "stats",
            Frame::Heartbeat => "heartbeat",
            Frame::Bye => "bye",
            Frame::Throttle { .. } => "throttle",
            Frame::Ack { .. } => "ack",
            Frame::Resume { .. } => "resume",
            Frame::SourceHello { .. } => "source-hello",
            Frame::SourceRecord { .. } => "source-record",
            Frame::SourceBye { .. } => "source-bye",
        }
    }
}

/// Why a byte stream was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes of a frame were not `RFDN`.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    BadType(u8),
    /// Reserved flag bits were set.
    BadFlags(u16),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload CRC did not match the header.
    BadCrc {
        /// CRC stored in the frame header.
        want: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
    /// The payload did not parse as its declared frame type.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (expected RFDN)"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadType(t) => write!(f, "unknown frame type {t}"),
            FrameError::BadFlags(x) => write!(f, "reserved flags set ({x:#06x})"),
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds maximum {MAX_PAYLOAD}")
            }
            FrameError::BadCrc { want, got } => {
                write!(
                    f,
                    "payload crc mismatch (header {want:08x}, computed {got:08x})"
                )
            }
            FrameError::BadPayload(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for std::io::Error {
    fn from(e: FrameError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn payload_bytes(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Hello(role) => vec![role.as_u8()],
        Frame::StreamMeta(m) => {
            let mut p = Vec::with_capacity(20);
            p.extend_from_slice(&m.sample_rate.to_le_bytes());
            p.extend_from_slice(&m.center_hz.to_le_bytes());
            p.extend_from_slice(&m.scale.to_le_bytes());
            p
        }
        Frame::SampleChunk { start_sample, iq } => {
            let mut p = Vec::with_capacity(12 + iq.len() * 4);
            p.extend_from_slice(&start_sample.to_le_bytes());
            p.extend_from_slice(&(iq.len() as u32).to_le_bytes());
            for &(i, q) in iq {
                p.extend_from_slice(&i.to_le_bytes());
                p.extend_from_slice(&q.to_le_bytes());
            }
            p
        }
        Frame::Record(r) => {
            let line = r.line.as_bytes();
            let mut p = Vec::with_capacity(18 + line.len());
            p.extend_from_slice(&r.start_us.to_le_bytes());
            p.extend_from_slice(&r.end_us.to_le_bytes());
            p.extend_from_slice(&(line.len() as u16).to_le_bytes());
            p.extend_from_slice(line);
            p
        }
        Frame::Stats(json) => json.as_bytes().to_vec(),
        Frame::Heartbeat | Frame::Bye => Vec::new(),
        Frame::Throttle { depth, cap } => {
            let mut p = Vec::with_capacity(8);
            p.extend_from_slice(&depth.to_le_bytes());
            p.extend_from_slice(&cap.to_le_bytes());
            p
        }
        Frame::Ack { session, position } | Frame::Resume { session, position } => {
            let mut p = Vec::with_capacity(16);
            p.extend_from_slice(&session.to_le_bytes());
            p.extend_from_slice(&position.to_le_bytes());
            p
        }
        Frame::SourceHello { source, meta } => {
            let id = source.as_bytes();
            let mut p = Vec::with_capacity(1 + id.len() + 20);
            p.push(id.len() as u8);
            p.extend_from_slice(id);
            p.extend_from_slice(&meta.sample_rate.to_le_bytes());
            p.extend_from_slice(&meta.center_hz.to_le_bytes());
            p.extend_from_slice(&meta.scale.to_le_bytes());
            p
        }
        Frame::SourceRecord { source, record } => {
            let id = source.as_bytes();
            let line = record.line.as_bytes();
            let mut p = Vec::with_capacity(1 + id.len() + 18 + line.len());
            p.push(id.len() as u8);
            p.extend_from_slice(id);
            p.extend_from_slice(&record.start_us.to_le_bytes());
            p.extend_from_slice(&record.end_us.to_le_bytes());
            p.extend_from_slice(&(line.len() as u16).to_le_bytes());
            p.extend_from_slice(line);
            p
        }
        Frame::SourceBye { source } => {
            let id = source.as_bytes();
            let mut p = Vec::with_capacity(1 + id.len());
            p.push(id.len() as u8);
            p.extend_from_slice(id);
            p
        }
    }
}

/// Serializes `frame` with the given per-direction sequence number.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PAYLOAD`] (a Record line or sample
/// chunk that large is a caller bug, not wire input).
pub fn encode_frame(frame: &Frame, seq: u32) -> Vec<u8> {
    let payload = payload_bytes(frame);
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "{} payload of {} bytes exceeds MAX_PAYLOAD",
        frame.type_name(),
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(frame.type_byte());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload_crc(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        if self.remaining() < N {
            return Err(FrameError::BadPayload("payload truncated"));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn i16(&mut self) -> Result<i16, FrameError> {
        Ok(i16::from_le_bytes(self.take()?))
    }

    fn f32(&mut self) -> Result<f32, FrameError> {
        Ok(f32::from_le_bytes(self.take()?))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_le_bytes(self.take()?))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::BadPayload("payload truncated"));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// A length-prefixed fleet source id: `u8` length, then that many bytes,
    /// charset-checked before the `String` is built.
    fn source_id(&mut self) -> Result<String, FrameError> {
        let len = self.u8()? as usize;
        let raw = self.bytes(len)?;
        let id = std::str::from_utf8(raw)
            .map_err(|_| FrameError::BadPayload("source id is not UTF-8"))?;
        validate_source_id(id)?;
        Ok(id.to_string())
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::BadPayload("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn decode_payload(ty: u8, payload: &[u8]) -> Result<Frame, FrameError> {
    let mut r = Reader::new(payload);
    let frame = match ty {
        0 => {
            let role = Role::from_u8(r.u8()?).ok_or(FrameError::BadPayload("unknown role"))?;
            Frame::Hello(role)
        }
        1 => {
            let meta = StreamMeta {
                sample_rate: r.f64()?,
                center_hz: r.f64()?,
                scale: r.f32()?,
            };
            meta.validate()?;
            Frame::StreamMeta(meta)
        }
        2 => {
            let start_sample = r.u64()?;
            let n = r.u32()? as usize;
            if r.remaining() != n * 4 {
                return Err(FrameError::BadPayload("sample count disagrees with length"));
            }
            let mut iq = Vec::with_capacity(n);
            for _ in 0..n {
                iq.push((r.i16()?, r.i16()?));
            }
            Frame::SampleChunk { start_sample, iq }
        }
        3 => {
            let start_us = r.f64()?;
            let end_us = r.f64()?;
            if !start_us.is_finite() || !end_us.is_finite() {
                return Err(FrameError::BadPayload("non-finite record times"));
            }
            let len = r.u16()? as usize;
            if r.remaining() != len {
                return Err(FrameError::BadPayload("line length disagrees with payload"));
            }
            let line = std::str::from_utf8(&payload[r.pos..])
                .map_err(|_| FrameError::BadPayload("record line is not UTF-8"))?
                .to_string();
            return Ok(Frame::Record(RecordMsg {
                start_us,
                end_us,
                line,
            }));
        }
        4 => {
            let json = std::str::from_utf8(payload)
                .map_err(|_| FrameError::BadPayload("stats document is not UTF-8"))?
                .to_string();
            return Ok(Frame::Stats(json));
        }
        5 => Frame::Heartbeat,
        6 => Frame::Bye,
        7 => Frame::Throttle {
            depth: r.u32()?,
            cap: r.u32()?,
        },
        8 => Frame::Ack {
            session: r.u64()?,
            position: r.u64()?,
        },
        9 => Frame::Resume {
            session: r.u64()?,
            position: r.u64()?,
        },
        10 => {
            let source = r.source_id()?;
            let meta = StreamMeta {
                sample_rate: r.f64()?,
                center_hz: r.f64()?,
                scale: r.f32()?,
            };
            meta.validate()?;
            Frame::SourceHello { source, meta }
        }
        11 => {
            let source = r.source_id()?;
            let start_us = r.f64()?;
            let end_us = r.f64()?;
            if !start_us.is_finite() || !end_us.is_finite() {
                return Err(FrameError::BadPayload("non-finite record times"));
            }
            let len = r.u16()? as usize;
            if r.remaining() != len {
                return Err(FrameError::BadPayload("line length disagrees with payload"));
            }
            let line = std::str::from_utf8(&payload[r.pos..])
                .map_err(|_| FrameError::BadPayload("record line is not UTF-8"))?
                .to_string();
            return Ok(Frame::SourceRecord {
                source,
                record: RecordMsg {
                    start_us,
                    end_us,
                    line,
                },
            });
        }
        12 => Frame::SourceBye {
            source: r.source_id()?,
        },
        other => return Err(FrameError::BadType(other)),
    };
    r.done()?;
    Ok(frame)
}

/// A frame together with its header sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqFrame {
    /// The header's per-direction sequence number.
    pub seq: u32,
    /// The decoded frame.
    pub frame: Frame,
}

/// Incremental frame decoder: feed raw socket bytes in, pop whole frames
/// out.
///
/// The decoder is strict — the first malformed byte poisons the stream and
/// every later call returns the same error, mirroring how a connection
/// handler should treat hostile input (drop the peer, don't resync).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted opportunistically).
    consumed: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the peer.
    pub fn push(&mut self, data: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(data);
        }
    }

    /// Bytes buffered but not yet decoded into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Tries to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(_))` for a
    /// valid frame, and `Err(_)` once the stream is malformed (sticky).
    pub fn next_frame(&mut self) -> Result<Option<SeqFrame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_decode() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = Some(e.clone());
                self.buf = Vec::new();
                self.consumed = 0;
                Err(e)
            }
        }
    }

    fn try_decode(&mut self) -> Result<Option<SeqFrame>, FrameError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        // Header validation happens before waiting for the payload so a
        // hostile length field is rejected without buffering MAX_PAYLOAD
        // bytes first.
        if &avail[0..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if avail[4] != VERSION {
            return Err(FrameError::BadVersion(avail[4]));
        }
        let ty = avail[5];
        if ty > 12 {
            return Err(FrameError::BadType(ty));
        }
        let flags = u16::from_le_bytes([avail[6], avail[7]]);
        if flags != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        let seq = u32::from_le_bytes([avail[8], avail[9], avail[10], avail[11]]);
        let len = u32::from_le_bytes([avail[12], avail[13], avail[14], avail[15]]);
        if len as usize > MAX_PAYLOAD {
            return Err(FrameError::Oversized(len));
        }
        let want_crc = u32::from_le_bytes([avail[16], avail[17], avail[18], avail[19]]);
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        let got_crc = payload_crc(payload);
        if got_crc != want_crc {
            return Err(FrameError::BadCrc {
                want: want_crc,
                got: got_crc,
            });
        }
        let frame = decode_payload(ty, payload)?;
        self.consumed += total;
        // Compact once the dead prefix dominates, keeping the buffer small
        // on long-lived connections.
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(SeqFrame { seq, frame }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello(Role::Producer),
            Frame::Hello(Role::Subscriber),
            Frame::StreamMeta(StreamMeta {
                sample_rate: 8e6,
                center_hz: 4e6,
                scale: 0.73,
            }),
            Frame::SampleChunk {
                start_sample: 12345,
                iq: vec![(0, 1), (-2, 3), (i16::MIN, i16::MAX)],
            },
            Frame::Record(RecordMsg {
                start_us: 1.5,
                end_us: 2.5,
                line: "    0.000001 802.11     snr  20.0 dB  ...".into(),
            }),
            Frame::Stats("{\"schema\":\"rfd-stats\"}".into()),
            Frame::Heartbeat,
            Frame::Bye,
            Frame::Throttle { depth: 60, cap: 64 },
            Frame::Ack {
                session: 3,
                position: 1 << 40,
            },
            Frame::Resume {
                session: 3,
                position: u64::MAX,
            },
            Frame::SourceHello {
                source: "usrp-roof.2".into(),
                meta: StreamMeta {
                    sample_rate: 8e6,
                    center_hz: 4e6,
                    scale: 0.5,
                },
            },
            Frame::SourceRecord {
                source: "usrp-roof.2".into(),
                record: RecordMsg {
                    start_us: 10.0,
                    end_us: 20.0,
                    line: "    0.000010 bluetooth  ...".into(),
                },
            },
            Frame::SourceBye {
                source: "a".repeat(MAX_SOURCE_ID),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        let mut dec = FrameDecoder::new();
        for (i, f) in all_frames().into_iter().enumerate() {
            let bytes = encode_frame(&f, i as u32);
            dec.push(&bytes);
            let got = dec.next_frame().unwrap().expect("complete frame");
            assert_eq!(got.seq, i as u32);
            assert_eq!(got.frame, f);
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_feeding_works() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            wire.extend_from_slice(&encode_frame(f, i as u32));
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in wire {
            dec.push(&[b]);
            while let Some(sf) = dec.next_frame().unwrap() {
                got.push(sf.frame);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn corrupt_crc_is_rejected_and_sticky() {
        let mut bytes = encode_frame(&Frame::Heartbeat, 0);
        // Heartbeat has no payload, so corrupt the stored CRC itself.
        bytes[16] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
        // Poisoned: even valid follow-up bytes are refused.
        dec.push(&encode_frame(&Frame::Bye, 1));
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn flipped_payload_byte_fails_the_crc() {
        let mut bytes = encode_frame(&Frame::Stats("{\"k\":1}".into()), 7);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut bytes = encode_frame(&Frame::Heartbeat, 0);
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..HEADER_LEN]);
        assert!(matches!(dec.next_frame(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn bad_version_type_flags_magic_are_rejected() {
        let base = encode_frame(&Frame::Heartbeat, 0);
        for (at, val, check) in [
            (0usize, b'X', "magic"),
            (4, 9, "version"),
            (5, 99, "type"),
            (6, 1, "flags"),
        ] {
            let mut b = base.clone();
            b[at] = val;
            let mut dec = FrameDecoder::new();
            dec.push(&b);
            assert!(dec.next_frame().is_err(), "{check} should be rejected");
        }
    }

    #[test]
    fn meta_validation_rejects_hostile_fields() {
        for meta in [
            StreamMeta {
                sample_rate: f64::NAN,
                center_hz: 0.0,
                scale: 1.0,
            },
            StreamMeta {
                sample_rate: -8e6,
                center_hz: 0.0,
                scale: 1.0,
            },
            StreamMeta {
                sample_rate: 8e6,
                center_hz: f64::INFINITY,
                scale: 1.0,
            },
            StreamMeta {
                sample_rate: 8e6,
                center_hz: 0.0,
                scale: 0.0,
            },
        ] {
            assert!(meta.validate().is_err(), "{meta:?} should fail validation");
        }
    }

    #[test]
    fn source_ids_are_validated() {
        assert!(validate_source_id("usrp-roof.2").is_ok());
        assert!(validate_source_id(&"x".repeat(MAX_SOURCE_ID)).is_ok());
        for bad in [
            "",
            " ",
            "a b",
            "café",
            "x\0",
            &"x".repeat(MAX_SOURCE_ID + 1),
        ] {
            assert!(
                validate_source_id(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn malformed_source_hello_is_rejected() {
        // A SourceHello whose id length points past the payload end.
        let good = encode_frame(
            &Frame::SourceHello {
                source: "s1".into(),
                meta: StreamMeta {
                    sample_rate: 8e6,
                    center_hz: 0.0,
                    scale: 1.0,
                },
            },
            0,
        );
        let mut bytes = good.clone();
        bytes[HEADER_LEN] = 200; // id_len > remaining payload
        let crc = payload_crc(&bytes[HEADER_LEN..]);
        bytes[16..20].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadPayload(_))));

        // An id with a forbidden byte.
        let mut bytes = good;
        bytes[HEADER_LEN + 1] = b' ';
        let crc = payload_crc(&bytes[HEADER_LEN..]);
        bytes[16..20].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadPayload(_))));
    }

    #[test]
    fn chunk_sample_count_must_match_length() {
        let f = Frame::SampleChunk {
            start_sample: 0,
            iq: vec![(1, 2), (3, 4)],
        };
        let mut bytes = encode_frame(&f, 0);
        // Claim 3 samples while carrying 2; fix the CRC so only the inner
        // validation can catch it.
        bytes[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&3u32.to_le_bytes());
        let crc = payload_crc(&bytes[HEADER_LEN..]);
        bytes[16..20].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadPayload(_))));
    }
}
