//! The bounded ingest queue between a producer connection and the analysis
//! stage, with an explicit, configurable overflow policy.
//!
//! Real-time ingest must answer one question decisively: *what happens when
//! samples arrive faster than they are consumed?* This queue makes the two
//! defensible answers first-class:
//!
//! * [`OverflowPolicy::Block`] — the pushing thread waits for room. Over a
//!   TCP connection this propagates as transport backpressure (the socket
//!   buffer fills, the producer's writes stall), so nothing is ever lost;
//!   the stream simply falls behind real time.
//! * [`OverflowPolicy::DropOldest`] — the oldest queued item is discarded
//!   to make room and a dropped counter ticks. The stream stays real-time
//!   at the cost of holes, the same trade a hardware ring buffer makes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What `push` does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the pusher until the consumer makes room (lossless).
    #[default]
    Block,
    /// Discard the oldest queued item to admit the new one (lossy).
    DropOldest,
}

impl OverflowPolicy {
    /// Parses the CLI spelling (`block` / `drop-oldest`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(OverflowPolicy::Block),
            "drop-oldest" => Some(OverflowPolicy::DropOldest),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// What a `push` did, so the caller can react (e.g. send a Throttle frame
/// the first time the queue saturates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued without hitting the bound.
    Queued,
    /// The queue was full: the push blocked until room appeared.
    QueuedAfterBlock,
    /// The queue was full: the oldest item was dropped to make room.
    QueuedDroppingOldest,
}

/// Why a [`ChunkQueue::try_push`] returned the item instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity under [`OverflowPolicy::Block`]; retry when
    /// the consumer makes room.
    Full(T),
    /// The queue is closed; the item can never be enqueued.
    Closed(T),
}

struct QueueState<T> {
    q: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<QueueState<T>>,
    room: Condvar,
    items: Condvar,
    cap: usize,
    policy: OverflowPolicy,
    dropped: AtomicU64,
}

/// A bounded SPSC/MPSC queue with a chosen [`OverflowPolicy`].
pub struct ChunkQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for ChunkQueue<T> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> ChunkQueue<T> {
    /// A queue holding at most `cap` items (≥ 1).
    pub fn new(cap: usize, policy: OverflowPolicy) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState {
                    q: VecDeque::with_capacity(cap.max(1)),
                    closed: false,
                }),
                room: Condvar::new(),
                items: Condvar::new(),
                cap: cap.max(1),
                policy,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Enqueues `item` under the queue's overflow policy. Returns what
    /// happened, or `Err(item)` if the queue is closed.
    pub fn push(&self, item: T) -> Result<PushOutcome, T> {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(item);
        }
        let mut outcome = PushOutcome::Queued;
        while st.q.len() >= sh.cap {
            match sh.policy {
                OverflowPolicy::DropOldest => {
                    st.q.pop_front();
                    sh.dropped.fetch_add(1, Ordering::Relaxed);
                    outcome = PushOutcome::QueuedDroppingOldest;
                    break;
                }
                OverflowPolicy::Block => {
                    outcome = PushOutcome::QueuedAfterBlock;
                    st = sh.room.wait(st).unwrap_or_else(|e| e.into_inner());
                    if st.closed {
                        return Err(item);
                    }
                }
            }
        }
        st.q.push_back(item);
        drop(st);
        sh.items.notify_one();
        Ok(outcome)
    }

    /// Nonblocking [`push`]: never waits, so a readiness loop can offer an
    /// item and keep servicing other connections when the queue is full.
    /// Under [`OverflowPolicy::Block`] a full queue returns
    /// [`TryPushError::Full`] (the loop's backpressure signal); under
    /// [`OverflowPolicy::DropOldest`] it behaves exactly like `push`.
    ///
    /// [`push`]: ChunkQueue::push
    pub fn try_push(&self, item: T) -> Result<PushOutcome, TryPushError<T>> {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(TryPushError::Closed(item));
        }
        let mut outcome = PushOutcome::Queued;
        if st.q.len() >= sh.cap {
            match sh.policy {
                OverflowPolicy::DropOldest => {
                    st.q.pop_front();
                    sh.dropped.fetch_add(1, Ordering::Relaxed);
                    outcome = PushOutcome::QueuedDroppingOldest;
                }
                OverflowPolicy::Block => return Err(TryPushError::Full(item)),
            }
        }
        st.q.push_back(item);
        drop(st);
        sh.items.notify_one();
        Ok(outcome)
    }

    /// Discards the oldest queued item to make room, regardless of policy.
    /// This is the fleet shed ladder's drop-oldest rung: a queue built with
    /// [`OverflowPolicy::Block`] (lossless by default) can still be forced
    /// to trade its oldest chunk for latency when a source is being shed.
    /// Returns whether anything was dropped; the drop counts toward
    /// [`dropped`](Self::dropped).
    pub fn drop_oldest(&self) -> bool {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.q.pop_front().is_some() {
            sh.dropped.fetch_add(1, Ordering::Relaxed);
            drop(st);
            sh.room.notify_one();
            true
        } else {
            false
        }
    }

    /// Blocks for the next item; `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(it) = st.q.pop_front() {
                drop(st);
                sh.room.notify_one();
                return Some(it);
            }
            if st.closed {
                return None;
            }
            st = sh.items.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending items remain poppable, further pushes
    /// fail, blocked pushers and poppers wake.
    pub fn close(&self) {
        let sh = &self.shared;
        sh.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        sh.items.notify_all();
        sh.room.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .q
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.shared.cap
    }

    /// Items discarded by the drop-oldest policy so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_and_close_semantics() {
        let q = ChunkQueue::new(4, OverflowPolicy::Block);
        assert_eq!(q.push(1), Ok(PushOutcome::Queued));
        assert_eq!(q.push(2), Ok(PushOutcome::Queued));
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn block_policy_waits_for_room() {
        let q = ChunkQueue::new(1, OverflowPolicy::Block);
        q.push(10).unwrap();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.push(20).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 1, "pusher must be blocked");
        assert_eq!(q.pop(), Some(10));
        assert_eq!(t.join().unwrap(), PushOutcome::QueuedAfterBlock);
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.dropped(), 0);
    }

    #[test]
    fn drop_oldest_policy_counts_losses() {
        let q = ChunkQueue::new(2, OverflowPolicy::DropOldest);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Ok(PushOutcome::QueuedDroppingOldest));
        assert_eq!(q.push(4), Ok(PushOutcome::QueuedDroppingOldest));
        assert_eq!(q.dropped(), 2);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn try_push_never_blocks() {
        let q = ChunkQueue::new(1, OverflowPolicy::Block);
        assert_eq!(q.try_push(1), Ok(PushOutcome::Queued));
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(2), Ok(PushOutcome::Queued));
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed(3)));

        let lossy = ChunkQueue::new(1, OverflowPolicy::DropOldest);
        lossy.try_push(1).unwrap();
        assert_eq!(lossy.try_push(2), Ok(PushOutcome::QueuedDroppingOldest));
        assert_eq!(lossy.dropped(), 1);
        assert_eq!(lossy.pop(), Some(2));
    }

    #[test]
    fn drop_oldest_helper_forces_room_under_block_policy() {
        let q = ChunkQueue::new(2, OverflowPolicy::Block);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert!(q.drop_oldest());
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.try_push(3), Ok(PushOutcome::Queued));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(!q.drop_oldest(), "empty queue has nothing to drop");
        assert_eq!(q.dropped(), 1);
    }

    #[test]
    fn close_unblocks_a_blocked_pusher() {
        let q = ChunkQueue::new(1, OverflowPolicy::Block);
        q.push(1).unwrap();
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), Err(2));
    }

    #[test]
    fn policy_parse_round_trips() {
        for p in [OverflowPolicy::Block, OverflowPolicy::DropOldest] {
            assert_eq!(OverflowPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(OverflowPolicy::parse("nope"), None);
    }
}
