#!/usr/bin/env bash
# CI gate for the rfdump workspace. Runs entirely offline:
#   1. formatting and lints (rustfmt, clippy -D warnings)
#   2. tier-1: release build + full test suite, single-threaded
#      (RFD_WORKERS=0) and again on the work-stealing analysis pool
#      (RFD_WORKERS=4) — the pipeline must be deterministic across both
#   3. a smoke run of the rfdump CLI over a tiny generated .rfdt trace,
#      checking that --stats-json emits a document the in-repo parser and
#      schema checks accept, and that --workers 0 and --workers 4 print a
#      byte-identical record stream.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + test (RFD_WORKERS=0) =="
cargo build --release
RFD_WORKERS=0 cargo test -q

echo "== tier-1: test again on the analysis pool (RFD_WORKERS=4) =="
RFD_WORKERS=4 cargo test -q

echo "== smoke: rfdump --stats-json on a generated trace =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
# trace_record_replay writes rfdump-example.rfdt into $TMPDIR; RFD_KEEP_TRACE
# stops it from cleaning the file up so the CLI can replay it.
TMPDIR="$work" RFD_KEEP_TRACE=1 \
    cargo run --release -q -p rfd-examples --bin trace_record_replay >/dev/null
trace="$work/rfdump-example.rfdt"
[ -f "$trace" ] || { echo "trace file not generated"; exit 1; }

./target/release/rfdump -r "$trace" -q -s \
    --stats-json "$work/stats.json" --trace-out "$work/spans.json"
[ -s "$work/stats.json" ] || { echo "stats json empty"; exit 1; }
[ -s "$work/spans.json" ] || { echo "span trace empty"; exit 1; }

# stats_inspect parses the document with the in-repo codec and asserts the
# rfd-stats schema/version before printing; a malformed document fails here.
cargo run --release -q -p rfd-examples --bin stats_inspect "$work/stats.json" >/dev/null

echo "== determinism: --workers 0 vs --workers 4 =="
./target/release/rfdump -r "$trace" --workers 0 > "$work/records-w0.txt"
./target/release/rfdump -r "$trace" --workers 4 > "$work/records-w4.txt"
if ! diff -u "$work/records-w0.txt" "$work/records-w4.txt"; then
    echo "nondeterministic output: record stream differs between worker counts"
    exit 1
fi

echo "ci: all checks passed"
