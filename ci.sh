#!/usr/bin/env bash
# CI gate for the rfdump workspace. Runs entirely offline:
#   1. formatting and lints (rustfmt, clippy -D warnings)
#   2. tier-1: release build + full test suite, single-threaded
#      (RFD_WORKERS=0) and again on the work-stealing analysis pool
#      (RFD_WORKERS=4) — the pipeline must be deterministic across both —
#      and a third pass pinned to the scalar reference kernels
#      (RFD_KERNEL=scalar); the default legs run whatever SIMD backend
#      the host resolves, so together they cover the kernel matrix
#   3. a smoke run of the rfdump CLI over a tiny generated .rfdt trace,
#      checking that --stats-json emits a document the in-repo parser and
#      schema checks accept, that --workers 0 and --workers 4 print a
#      byte-identical record stream, and that every DSP kernel backend
#      the host supports (rfdump kernel) prints that same stream —
#      failing if auto resolves to scalar on a SIMD-capable host.
#   4. chaos smokes: the suite again under an ambient output-preserving
#      RFD_FAULTS plan, a serve/send loopback with injected producer
#      disconnects diffed against offline output, and a SIGINT shutdown
#      that must flush --stats-json and exit 0.
#   5. observability smokes: the record stream must be byte-identical
#      with and without a --metrics-addr endpoint attached, and a live
#      serve endpoint must answer /metrics with parseable Prometheus
#      0.0.4 text carrying the expected metric families.
#   6. fleet smoke: a --fleet server ingests three concurrent --source
#      senders; each per-source `watch --source` stream is diffed
#      byte-for-byte against the offline run, at --workers 0 and 4.
#   7. fleet survivability smokes: a churn leg that aborts one of three
#      fleet senders mid-stream and restarts it with `send --source
#      --retries` — the restarted process re-handshakes with its source id,
#      the server resumes the parked session, and every per-source stream
#      must stay byte-identical to the offline run — and a quarantine leg
#      where a garbage-flooding sender is quarantined by the health machine
#      while the clean sources drain unharmed.
#   8. bounded-latency smokes: an offline run under a generous
#      --latency-budget (with the --chunk-min/--chunk-max bounds plumbed)
#      must print a record stream byte-identical to the no-budget run at
#      --workers 0 and 4 with zero violations booked, and a --fleet server
#      under an injected per-source cpu fault must book budget violations
#      and shed only the starved source — budget_violated/source_shed
#      events in stats-json — while the clean source's stream still diffs
#      byte-identical to the offline run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + test (RFD_WORKERS=0) =="
cargo build --release
RFD_WORKERS=0 cargo test -q

echo "== tier-1: test again on the analysis pool (RFD_WORKERS=4) =="
RFD_WORKERS=4 cargo test -q

echo "== tier-1: test again on the scalar reference kernels (RFD_KERNEL=scalar) =="
# The two legs above ran under RFD_KERNEL=auto (the host's best SIMD
# backend); this one pins the scalar reference so a vectorized-kernel bug
# can never hide behind the backend both legs happened to pick.
RFD_KERNEL=scalar RFD_WORKERS=0 cargo test -q

echo "== smoke: rfdump --stats-json on a generated trace =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
# trace_record_replay writes rfdump-example.rfdt into $TMPDIR; RFD_KEEP_TRACE
# stops it from cleaning the file up so the CLI can replay it.
TMPDIR="$work" RFD_KEEP_TRACE=1 \
    cargo run --release -q -p rfd-examples --bin trace_record_replay >/dev/null
trace="$work/rfdump-example.rfdt"
[ -f "$trace" ] || { echo "trace file not generated"; exit 1; }

./target/release/rfdump -r "$trace" -q -s \
    --stats-json "$work/stats.json" --trace-out "$work/spans.json"
[ -s "$work/stats.json" ] || { echo "stats json empty"; exit 1; }
[ -s "$work/spans.json" ] || { echo "span trace empty"; exit 1; }

# stats_inspect parses the document with the in-repo codec and asserts the
# rfd-stats schema/version before printing; a malformed document fails here.
cargo run --release -q -p rfd-examples --bin stats_inspect "$work/stats.json" >/dev/null

echo "== determinism: --workers 0 vs --workers 4 =="
./target/release/rfdump -r "$trace" --workers 0 > "$work/records-w0.txt"
./target/release/rfdump -r "$trace" --workers 4 > "$work/records-w4.txt"
if ! diff -u "$work/records-w0.txt" "$work/records-w4.txt"; then
    echo "nondeterministic output: record stream differs between worker counts"
    exit 1
fi

echo "== kernel matrix: record stream identical across DSP backends =="
# `rfdump kernel` reports what RFD_KERNEL=auto resolves to and which
# backends the CPU supports. Auto must pick the best vectorized backend —
# a silent fallback to scalar on a SIMD-capable host is a build/dispatch
# regression, not a preference.
./target/release/rfdump kernel | tee "$work/kernel.txt"
backend="$(awk '/^backend:/ {print $2}' "$work/kernel.txt")"
available="$(awk '/^available:/ {$1=""; print}' "$work/kernel.txt")"
case " $available " in
    *" avx2 "*)
        [ "$backend" = avx2 ] \
            || { echo "auto resolved to $backend on an AVX2-capable host"; exit 1; } ;;
    *" sse2 "*)
        [ "$backend" = sse2 ] \
            || { echo "auto resolved to $backend on an SSE2-capable host"; exit 1; } ;;
esac
# Every supported backend must print a record stream byte-identical to the
# default (auto) run above — the bit-exactness contract, end to end.
for b in $available; do
    RFD_KERNEL=$b ./target/release/rfdump -r "$trace" --workers 0 \
        > "$work/records-k$b.txt"
    if ! diff -u "$work/records-w0.txt" "$work/records-k$b.txt"; then
        echo "record stream diverged under RFD_KERNEL=$b"
        exit 1
    fi
done
# The stats document must report which backend ran.
RFD_KERNEL=scalar ./target/release/rfdump -r "$trace" -q \
    --stats-json "$work/stats-scalar.json"
grep -q '"backend":"scalar"' "$work/stats-scalar.json" \
    || { echo "stats json did not report the scalar kernel backend"; exit 1; }

echo "== observability: records byte-identical with a live metrics endpoint =="
# Attaching a scrape endpoint (and the ingest stamping it turns on) must
# never perturb the record stream, sequential or pooled.
for w in 0 4; do
    ./target/release/rfdump -r "$trace" --workers "$w" \
        --metrics-addr 127.0.0.1:0 > "$work/records-obs-w$w.txt" 2>/dev/null
    if ! diff -u "$work/records-w0.txt" "$work/records-obs-w$w.txt"; then
        echo "record stream changed under --metrics-addr (workers $w)"
        exit 1
    fi
done

echo "== smoke: crash + --resume recovers a byte-identical stream =="
# A journaled run is killed mid-flight by an injected abort; the --resume
# run must replay the journal and print exactly the uninterrupted stream.
for w in 0 4; do
    jdir="$work/journal-w$w"
    if ./target/release/rfdump -r "$trace" --workers "$w" --journal "$jdir" \
        --chaos "kill=detect#12" > /dev/null 2>&1; then
        echo "kill fault did not abort the journaled run (workers $w)"
        exit 1
    fi
    ./target/release/rfdump -r "$trace" --workers "$w" --journal "$jdir" \
        --resume --stats-json "$work/resume-stats.json" \
        > "$work/records-resumed.txt" 2> "$work/resume-log.txt"
    if ! diff -u "$work/records-w0.txt" "$work/records-resumed.txt"; then
        cat "$work/resume-log.txt" >&2 || true
        echo "resumed record stream differs from the uninterrupted run (workers $w)"
        exit 1
    fi
done
grep -q "resumed from journal" "$work/resume-log.txt" \
    || { echo "resume did not report recovery"; exit 1; }
# The v5 stats document carries a recovery section; the inspector must
# accept and render it. (Render to a file: `| grep -q` would close the
# pipe at the first match and break the inspector's remaining output.)
cargo run --release -q -p rfd-examples --bin stats_inspect "$work/resume-stats.json" \
    > "$work/resume-inspect.txt"
grep -q "recovery:" "$work/resume-inspect.txt" \
    || { echo "stats_inspect did not render recovery"; exit 1; }

echo "== smoke: localhost serve/send loopback =="
# A once-mode server replays the same trace over TCP; its record stream
# (stdout) must be byte-identical to the offline run above.
port=17099
./target/release/rfdump serve --listen "127.0.0.1:$port" --once --workers 0 \
    > "$work/records-net.txt" 2> "$work/serve-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-log.txt" >&2 || true
    echo "server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
./target/release/rfdump send --connect "127.0.0.1:$port" --rate max "$trace"
# --once: the server exits on its own after the producer session.
down=0
for _ in $(seq 1 300); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then down=1; break; fi
    sleep 0.1
done
if [ "$down" != 1 ]; then
    kill "$serve_pid" 2>/dev/null || true
    echo "server did not shut down within 30s of the session ending"
    exit 1
fi
wait "$serve_pid"
if ! diff -u "$work/records-w0.txt" "$work/records-net.txt"; then
    echo "live loopback record stream differs from the offline run"
    exit 1
fi

echo "== fleet smoke: 3 concurrent senders, per-source streams byte-identical =="
# A --fleet server shards three concurrent sources onto private pipeline
# instances; each source's filtered `watch --source` stream must be
# byte-identical to the offline run of the same trace — sequential and on
# the analysis pool.
fleet_port=17103
for w in 0 4; do
    port=$fleet_port
    fleet_port=$((fleet_port + 1))
    ./target/release/rfdump serve --listen "127.0.0.1:$port" --fleet --expect 3 \
        --workers "$w" -q \
        > /dev/null 2> "$work/serve-fleet-log-w$w.txt" < /dev/null &
    serve_pid=$!
    up=0
    for _ in $(seq 1 100); do
        if grep -q "serving on" "$work/serve-fleet-log-w$w.txt" 2>/dev/null; then up=1; break; fi
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        cat "$work/serve-fleet-log-w$w.txt" >&2 || true
        echo "fleet server never came up on port $port (workers $w)"
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    # Filtered watchers first, so every subscription is live before any
    # source starts streaming.
    watch_pids=""
    for s in alpha beta gamma; do
        ./target/release/rfdump watch --connect "127.0.0.1:$port" --source "$s" \
            > "$work/fleet-$s-w$w.txt" 2> "$work/fleet-$s-log-w$w.txt" &
        watch_pids="$watch_pids $!"
    done
    sleep 0.5
    send_pids=""
    for s in alpha beta gamma; do
        ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
            --source "$s" "$trace" 2>/dev/null &
        send_pids="$send_pids $!"
    done
    for pid in $send_pids; do
        wait "$pid" || { echo "fleet sender failed (workers $w)"; exit 1; }
    done
    # --expect 3: the server exits on its own once all sources are done.
    wait "$serve_pid" || {
        cat "$work/serve-fleet-log-w$w.txt" >&2 || true
        echo "fleet server exited nonzero (workers $w)"
        exit 1
    }
    for pid in $watch_pids; do
        wait "$pid" || { echo "fleet watch exited nonzero (workers $w)"; exit 1; }
    done
    for s in alpha beta gamma; do
        if ! diff -u "$work/records-w0.txt" "$work/fleet-$s-w$w.txt"; then
            echo "fleet source $s stream differs from the offline run (workers $w)"
            exit 1
        fi
    done
done
# A watch for a source that never joins must drain the stream and fail
# with a clean nonzero exit.
./target/release/rfdump serve --listen "127.0.0.1:$fleet_port" --fleet --expect 1 \
    --workers 0 -q > /dev/null 2> "$work/serve-fleet-absent-log.txt" < /dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "serving on" "$work/serve-fleet-absent-log.txt" 2>/dev/null && break
    sleep 0.1
done
./target/release/rfdump watch --connect "127.0.0.1:$fleet_port" --source ghost \
    > /dev/null 2> "$work/fleet-ghost-log.txt" &
watch_pid=$!
sleep 0.5
./target/release/rfdump send --connect "127.0.0.1:$fleet_port" --rate max \
    --source real "$trace" 2>/dev/null
wait "$serve_pid"
rc=0
wait "$watch_pid" || rc=$?
if [ "$rc" = 0 ]; then
    echo "watch --source ghost should have exited nonzero"
    exit 1
fi
grep -q "never appeared" "$work/fleet-ghost-log.txt" \
    || { echo "absent-source watch did not explain itself"; exit 1; }

echo "== fleet churn smoke: kill one sender mid-stream, restart with --retries =="
# One of three fleet sources is aborted by an injected kill fault, then
# restarted as a fresh process with `send --source --retries`: the restart
# re-handshakes with the same source id, the server resumes the parked
# session from its committed sample, and every per-source stream must
# still be byte-identical to the offline run — sequential and pooled.
churn_port=17110
for w in 0 4; do
    port=$churn_port
    churn_port=$((churn_port + 1))
    ./target/release/rfdump serve --listen "127.0.0.1:$port" --fleet --expect 3 \
        --resume-grace 10 --workers "$w" -q \
        --stats-json "$work/churn-stats-w$w.json" \
        > /dev/null 2> "$work/serve-churn-log-w$w.txt" < /dev/null &
    serve_pid=$!
    up=0
    for _ in $(seq 1 100); do
        if grep -q "serving on" "$work/serve-churn-log-w$w.txt" 2>/dev/null; then up=1; break; fi
        kill -0 "$serve_pid" 2>/dev/null || break
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        cat "$work/serve-churn-log-w$w.txt" >&2 || true
        echo "churn server never came up on port $port (workers $w)"
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    watch_pids=""
    for s in alpha beta gamma; do
        ./target/release/rfdump watch --connect "127.0.0.1:$port" --source "$s" \
            --wait-source 30 \
            > "$work/churn-$s-w$w.txt" 2> "$work/churn-$s-log-w$w.txt" &
        watch_pids="$watch_pids $!"
    done
    sleep 0.5
    send_pids=""
    for s in alpha beta; do
        ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
            --source "$s" "$trace" 2>/dev/null &
        send_pids="$send_pids $!"
    done
    # The gamma sender is aborted outright on its 4th chunk — a process
    # death, not a recoverable socket error, so --retries cannot save it...
    if ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
        --source gamma --retries 5 --chunk 1024 \
        --chaos "seed=3;kill=net.send.chunk#4" "$trace" 2>/dev/null; then
        echo "kill fault did not abort the gamma sender (workers $w)"
        exit 1
    fi
    # ...and restarted within the grace window: the fresh process carries no
    # session state, only the source id, and must resume where gamma died.
    ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
        --source gamma --retries 5 --chunk 1024 "$trace" 2>/dev/null \
        || { echo "restarted gamma sender failed (workers $w)"; exit 1; }
    for pid in $send_pids; do
        wait "$pid" || { echo "steady fleet sender failed (workers $w)"; exit 1; }
    done
    # --expect 3: the server exits on its own once all sources finalize.
    wait "$serve_pid" || {
        cat "$work/serve-churn-log-w$w.txt" >&2 || true
        echo "churn server exited nonzero (workers $w)"
        exit 1
    }
    for pid in $watch_pids; do
        wait "$pid" || { echo "churn watch exited nonzero (workers $w)"; exit 1; }
    done
    for s in alpha beta gamma; do
        if ! diff -u "$work/records-w0.txt" "$work/churn-$s-w$w.txt"; then
            echo "churn source $s stream differs from the offline run (workers $w)"
            exit 1
        fi
    done
    # The stats document must account for the resume.
    grep -q '"resumes":1' "$work/churn-stats-w$w.json" \
        || { echo "stats json did not report the gamma resume (workers $w)"; exit 1; }
done

echo "== fleet quarantine smoke: garbage-flooding sender is quarantined =="
# A sender whose every chunk is corrupted on the wire racks up per-source
# decode errors until the health machine quarantines its source id; its
# re-handshakes are then refused and the sender must give up with a clean
# nonzero exit, while the clean sources drain byte-identically.
port=17112
./target/release/rfdump serve --listen "127.0.0.1:$port" --fleet --expect 3 \
    --workers 0 -q --stats-json "$work/quarantine-stats.json" \
    > /dev/null 2> "$work/serve-quarantine-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-quarantine-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-quarantine-log.txt" >&2 || true
    echo "quarantine server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
watch_pids=""
for s in alpha beta; do
    ./target/release/rfdump watch --connect "127.0.0.1:$port" --source "$s" \
        --wait-source 30 \
        > "$work/quarantine-$s.txt" 2> /dev/null &
    watch_pids="$watch_pids $!"
done
sleep 0.5
rc=0
./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
    --source noisy --retries 6 --chunk 1024 \
    --chaos "seed=2;corrupt=net.send.chunk@1" "$trace" 2>/dev/null || rc=$?
if [ "$rc" = 0 ]; then
    echo "garbage-flooding sender should have exited nonzero"
    exit 1
fi
for s in alpha beta; do
    ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
        --source "$s" "$trace" 2>/dev/null \
        || { echo "clean fleet sender $s failed beside the quarantine"; exit 1; }
done
# --expect 3: quarantine finalizes the noisy source with whatever landed
# before the cutoff, so it still counts as done and the bounded run
# terminates once the two clean sources drain.
wait "$serve_pid" || {
    cat "$work/serve-quarantine-log.txt" >&2 || true
    echo "quarantine server exited nonzero"
    exit 1
}
for pid in $watch_pids; do
    wait "$pid" || { echo "quarantine watch exited nonzero"; exit 1; }
done
for s in alpha beta; do
    if ! diff -u "$work/records-w0.txt" "$work/quarantine-$s.txt"; then
        echo "clean source $s stream differs beside a quarantined sender"
        exit 1
    fi
done
grep -q '"health":"quarantined"' "$work/quarantine-stats.json" \
    || { echo "stats json did not report the quarantined source"; exit 1; }

echo "== latency smoke: a generous --latency-budget is record-invisible =="
# Bounded-latency mode with a budget the pipeline never violates must be
# free in record terms: the stream stays byte-identical to the no-budget
# run, sequential and pooled, with the adaptive-chunk bounds plumbed
# through. The stats document carries the armed-but-idle latency_mode
# section (zero violations) and the inspector must render it.
for w in 0 4; do
    ./target/release/rfdump -r "$trace" --workers "$w" --latency-budget 60000 \
        --chunk-min 64 --chunk-max 4096 \
        --stats-json "$work/latency-stats-w$w.json" \
        > "$work/records-lat-w$w.txt"
    if ! diff -u "$work/records-w0.txt" "$work/records-lat-w$w.txt"; then
        echo "record stream changed under an unviolated --latency-budget (workers $w)"
        exit 1
    fi
    grep -q '"violations":0' "$work/latency-stats-w$w.json" \
        || { echo "generous budget booked violations (workers $w)"; exit 1; }
done
cargo run --release -q -p rfd-examples --bin stats_inspect \
    "$work/latency-stats-w0.json" > "$work/latency-inspect.txt"
grep -q "latency mode:" "$work/latency-inspect.txt" \
    || { echo "stats_inspect did not render latency mode"; exit 1; }

echo "== fleet overload smoke: cpu chaos on one source, the clean one diffs clean =="
# One source's private analysis consumer spins 10 ms on every chunk it
# pops (an injected cpu fault at its fleet analysis site), blowing the
# 100 ms deadline budget sweep after sweep. The overload ladder must book
# budget violations and shed only the starved source — budget_violated and
# source_shed events land in the stats document — while the unfaulted
# source stays under budget and its watch stream diffs byte-identical to
# the offline run.
port=17113
./target/release/rfdump serve --listen "127.0.0.1:$port" --fleet --expect 2 \
    --latency-budget 100 --queue-cap 32 --workers 0 -q \
    --chaos "seed=11;cpu=net.fleet.analysis.laggy/10ms" \
    --stats-json "$work/overload-stats.json" \
    > /dev/null 2> "$work/serve-overload-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-overload-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-overload-log.txt" >&2 || true
    echo "overload server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Watch the clean source only — the starved one's stream is legitimately
# degraded by drop-oldest shedding, and that visibility is the point.
./target/release/rfdump watch --connect "127.0.0.1:$port" --source quick \
    --wait-source 30 \
    > "$work/overload-quick.txt" 2> "$work/overload-quick-log.txt" &
watch_pid=$!
sleep 0.5
send_pids=""
for s in laggy quick; do
    ./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
        --source "$s" --chunk 1024 "$trace" 2>/dev/null &
    send_pids="$send_pids $!"
done
for pid in $send_pids; do
    wait "$pid" || { echo "overload fleet sender failed"; exit 1; }
done
# --expect 2: the server exits on its own once both sources finalize.
wait "$serve_pid" || {
    cat "$work/serve-overload-log.txt" >&2 || true
    echo "overload server exited nonzero"
    exit 1
}
wait "$watch_pid" || { echo "overload watch exited nonzero"; exit 1; }
if ! diff -u "$work/records-w0.txt" "$work/overload-quick.txt"; then
    echo "clean source stream differs beside a cpu-starved source"
    exit 1
fi
grep -q '"kind":"budget_violated"' "$work/overload-stats.json" \
    || { echo "stats json carries no budget_violated event"; exit 1; }
grep -q '"kind":"source_shed"' "$work/overload-stats.json" \
    || { echo "stats json carries no source_shed event"; exit 1; }

echo "== chaos smoke: full test suite under an output-preserving fault plan =="
# Latency-only faults (slow analyzers, CPU pressure at the detection stage)
# may change timing but never the record stream, so the whole suite —
# including the golden and differential tests — must still pass unchanged.
RFD_FAULTS="seed=7;slow=analyze@0.02/100us;cpu=detect@0.01/100us" \
    RFD_WORKERS=2 cargo test -q

echo "== chaos smoke: loopback with injected producer disconnects =="
port=17100
./target/release/rfdump serve --listen "127.0.0.1:$port" --once --workers 0 \
    --resume-grace 10 \
    > "$work/records-chaos.txt" 2> "$work/serve-chaos-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-chaos-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-chaos-log.txt" >&2 || true
    echo "chaos server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# The sender's connection is dropped on every 7th chunk, three times; it
# must reconnect, resume from the acknowledged sample, and the delivered
# record stream must still be byte-identical to the offline run.
./target/release/rfdump send --connect "127.0.0.1:$port" --rate max \
    --chaos "seed=3;disconnect=net.send.chunk%7x3" "$trace"
wait "$serve_pid"
if ! diff -u "$work/records-w0.txt" "$work/records-chaos.txt"; then
    echo "chaos loopback record stream differs from the offline run"
    exit 1
fi

echo "== clean shutdown: SIGINT flushes --stats-json and exits 0 =="
port=17101
./target/release/rfdump serve --listen "127.0.0.1:$port" --workers 0 -q \
    --stats-json "$work/serve-stats.json" \
    > /dev/null 2> "$work/serve-int-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-int-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-int-log.txt" >&2 || true
    echo "shutdown-test server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
./target/release/rfdump send --connect "127.0.0.1:$port" --rate max "$trace"
# Give the session a moment to finalize, then interrupt the server.
sleep 1
kill -INT "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" != 0 ]; then
    cat "$work/serve-int-log.txt" >&2 || true
    echo "serve exited with $rc after SIGINT (want 0)"
    exit 1
fi
[ -s "$work/serve-stats.json" ] || { echo "stats json not flushed on SIGINT"; exit 1; }
cargo run --release -q -p rfd-examples --bin stats_inspect "$work/serve-stats.json" >/dev/null

echo "== observability smoke: live /metrics scrape off a serving endpoint =="
# A server with --metrics-addr ingests one session; the endpoint must then
# answer /metrics with strictly parseable 0.0.4 text (scrape_check runs the
# in-repo validator) carrying the volume counters, the event-log counters
# and the per-stage latency waterfall. rfdump top must render it too.
port=17102
./target/release/rfdump serve --listen "127.0.0.1:$port" --workers 0 -q \
    --metrics-addr 127.0.0.1:0 \
    > /dev/null 2> "$work/serve-obs-log.txt" < /dev/null &
serve_pid=$!
up=0
for _ in $(seq 1 100); do
    if grep -q "serving on" "$work/serve-obs-log.txt" 2>/dev/null \
        && grep -q "metrics on" "$work/serve-obs-log.txt" 2>/dev/null; then up=1; break; fi
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if [ "$up" != 1 ]; then
    cat "$work/serve-obs-log.txt" >&2 || true
    echo "metrics-smoke server never came up on port $port"
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
mport="$(sed -n 's/^rfdump: metrics on //p' "$work/serve-obs-log.txt" | head -n1)"
[ -n "$mport" ] || { echo "could not discover metrics address"; kill "$serve_pid"; exit 1; }
./target/release/rfdump send --connect "127.0.0.1:$port" --rate max "$trace"
sleep 1
cargo run --release -q -p rfd-examples --bin scrape_check -- "$mport" > "$work/scrape.txt" \
    || { echo "scrape failed or payload not parseable"; kill "$serve_pid"; exit 1; }
for family in rfd_net_samples_in rfd_net_records_published rfd_events_emitted \
    rfd_peaks_detected rfd_latency_detect_us rfd_latency_analyze_us \
    rfd_latency_e2e_us rfd_latency_net_fanout_us; do
    grep -q "^# TYPE $family " "$work/scrape.txt" \
        || { echo "metric family $family missing from scrape"; kill "$serve_pid"; exit 1; }
done
./target/release/rfdump top --connect "$mport" --once > "$work/top.txt" \
    || { echo "rfdump top --once failed"; kill "$serve_pid"; exit 1; }
grep -q "stage latency" "$work/top.txt" \
    || { echo "rfdump top did not render the latency table"; kill "$serve_pid"; exit 1; }
kill -INT "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
if [ "$rc" != 0 ]; then
    cat "$work/serve-obs-log.txt" >&2 || true
    echo "metrics-smoke serve exited with $rc after SIGINT (want 0)"
    exit 1
fi

echo "ci: all checks passed"
