//! Randomized property tests for the work-stealing pool's primitives
//! (`rfd_flowgraph::pool`): the steal deque must neither lose nor
//! duplicate items under concurrent stealing, and the bounded channel
//! must stay FIFO per producer and never deadlock under backpressure.

use rfd_flowgraph::pool::{bounded, RecvTimeout, StealDeque};
use rfd_integration::seeded_cases;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Every item pushed to a steal deque comes out exactly once, across the
/// owner's pops and any number of concurrent thieves.
#[test]
fn steal_deque_neither_loses_nor_duplicates() {
    seeded_cases(0x5DEC_0001, 30, |rng| {
        let n_items = 200 + rng.next_range(800);
        let n_thieves = 1 + rng.next_range(3) as usize;
        let deque = Arc::new(StealDeque::new());
        let done = Arc::new(AtomicBool::new(false));

        let thieves: Vec<_> = (0..n_thieves)
            .map(|_| {
                let deque = Arc::clone(&deque);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut got: Vec<u64> = Vec::new();
                    // Keep stealing until the owner says the deque is dead
                    // *and* a final sweep comes back empty.
                    loop {
                        let batch = deque.steal_half();
                        if batch.is_empty() {
                            if done.load(Ordering::Acquire) && deque.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        } else {
                            got.extend(batch);
                        }
                    }
                    got
                })
            })
            .collect();

        // The owner interleaves pushes (sometimes in batches) with pops.
        let mut owner_got: Vec<u64> = Vec::new();
        let mut next = 0u64;
        while next < n_items {
            let burst = 1 + rng.next_range(16);
            let burst = burst.min(n_items - next);
            if rng.next_range(2) == 0 {
                deque.push_batch((next..next + burst).collect());
            } else {
                for v in next..next + burst {
                    deque.push(v);
                }
            }
            next += burst;
            for _ in 0..rng.next_range(8) {
                if let Some(v) = deque.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = deque.pop() {
            owner_got.push(v);
        }
        done.store(true, Ordering::Release);

        let mut all = owner_got;
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..n_items).collect();
        assert_eq!(
            all, expect,
            "items lost or duplicated ({} items, {} thieves)",
            n_items, n_thieves
        );
    });
}

/// The owner sees its own pushes oldest-first; thieves take the *newest*
/// half (so the owner keeps the items it is about to reach), and a stolen
/// batch preserves its internal order.
#[test]
fn steal_deque_owner_pops_fifo_when_uncontended() {
    let deque: StealDeque<u32> = StealDeque::new();
    for v in 0..100 {
        deque.push(v);
    }
    let stolen = deque.steal_half();
    assert_eq!(stolen, (50..100).collect::<Vec<u32>>());
    // The owner continues oldest-first over everything that's left.
    let mut got = Vec::new();
    while let Some(v) = deque.pop() {
        got.push(v);
    }
    assert_eq!(got, (0..50).collect::<Vec<u32>>());
}

/// Bounded-channel backpressure: many producers flooding a tiny channel
/// complete without deadlock, nothing is lost or duplicated, and each
/// producer's items arrive in the order it sent them.
#[test]
fn bounded_channel_is_fifo_per_producer_under_backpressure() {
    seeded_cases(0x5DEC_0002, 20, |rng| {
        let n_producers = 1 + rng.next_range(4) as usize;
        let per_producer = 100 + rng.next_range(400);
        let cap = 1 + rng.next_range(8) as usize;
        let (tx, rx) = bounded::<(usize, u64)>(cap);

        let producers: Vec<_> = (0..n_producers)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        tx.send((p, i)).expect("receiver alive");
                    }
                })
            })
            .collect();
        drop(tx); // the clones keep the channel open until producers finish

        let mut next_from: HashMap<usize, u64> = HashMap::new();
        let mut total = 0u64;
        while let Some((p, i)) = rx.recv() {
            let expect = next_from.entry(p).or_insert(0);
            assert_eq!(i, *expect, "producer {p} reordered: got {i}");
            *expect += 1;
            total += 1;
        }
        assert_eq!(total, n_producers as u64 * per_producer, "items lost");
        for t in producers {
            t.join().unwrap();
        }
    });
}

/// `recv` returns `None` — not a hang — once every sender is gone and the
/// queue has drained; `recv_timeout` distinguishes "empty now" from
/// "closed forever".
#[test]
fn bounded_channel_close_semantics() {
    let (tx, rx) = bounded::<u32>(4);
    tx.send(1).unwrap();
    tx.send(2).unwrap();
    drop(tx);
    assert_eq!(rx.recv(), Some(1));
    match rx.recv_timeout(Duration::from_millis(1)) {
        RecvTimeout::Item(v) => assert_eq!(v, 2),
        other => panic!("expected the last item, got {other:?}"),
    }
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(1)),
        RecvTimeout::Closed
    ));
    assert_eq!(rx.recv(), None);

    // And the reverse: sending into a world with no receivers errors
    // instead of blocking forever.
    let (tx, rx) = bounded::<u32>(1);
    drop(rx);
    assert!(tx.send(7).is_err());
}
