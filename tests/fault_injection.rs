//! Chaos scenarios: seeded fault injection through the full pipeline.
//!
//! Three contracts, one per layer of the recovery machinery:
//!
//! 1. **Supervision / quarantine** — a deterministically panicking analyzer
//!    is quarantined after [`QUARANTINE_STRIKES`] strikes; the run finishes
//!    and every *other* protocol's records are byte-identical to the
//!    fault-free run, at any worker count.
//! 2. **Output-preserving faults** — injected latency (`slow`, `cpu`) can
//!    never change the record stream, only its timing.
//! 3. **Wire resilience** — a producer whose connection is dropped
//!    mid-stream by injected `disconnect` faults reconnects, resumes from
//!    the server's acknowledged position, and the subscriber still sees a
//!    stream byte-identical to offline analysis; raw garbage floods never
//!    take the server down.

use rfd_fault::FaultPlan;
use rfd_integration::{mixed_trace, piconet, random_bytes, seeded_cases};
use rfd_net::{RecordSubscriber, ResilientSender, SendRate, Server, ServerConfig, SubEvent};
use rfdump::arch::{run_architecture, ArchConfig, ArchOutput};
use rfdump::dispatch::QUARANTINE_STRIKES;
use rfdump::live::LivePipeline;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn run(workers: usize, faults: Option<Arc<FaultPlan>>) -> ArchOutput {
    let trace = mixed_trace(4, 8, 30.0, 99);
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = trace.band;
    cfg.noise_floor = Some(trace.noise_power);
    cfg.telemetry = false;
    cfg.workers = workers;
    cfg.faults = faults;
    run_architecture(&cfg, &trace.samples, trace.band.sample_rate)
}

fn lines_except_wifi(out: &ArchOutput) -> Vec<String> {
    out.records
        .iter()
        .filter(|r| r.protocol != rfd_phy::Protocol::Wifi)
        .map(|r| r.format_line())
        .collect()
}

#[test]
fn panicking_wifi_analyzer_is_quarantined_and_the_rest_is_untouched() {
    let clean = run(0, None);
    let wifi_records = clean
        .records
        .iter()
        .filter(|r| r.protocol == rfd_phy::Protocol::Wifi)
        .count();
    assert!(
        wifi_records as u64 >= QUARANTINE_STRIKES + 2,
        "scene must carry enough Wi-Fi traffic to trip quarantine ({wifi_records} records)"
    );
    assert_eq!(clean.panics, 0);
    assert!(clean.quarantined.is_empty());

    for workers in [0usize, 2] {
        let plan = Arc::new(FaultPlan::parse("seed=1;panic=analyze:wifi").unwrap());
        let faulted = run(workers, Some(plan));
        assert_eq!(
            faulted.quarantined,
            vec!["analyze:wifi-demod".to_string()],
            "workers={workers}"
        );
        assert!(
            faulted.panics >= QUARANTINE_STRIKES,
            "workers={workers}: {} panic(s) survived",
            faulted.panics
        );
        assert_eq!(
            lines_except_wifi(&faulted),
            lines_except_wifi(&clean),
            "workers={workers}: non-Wi-Fi records must be byte-identical"
        );
        let fs = faulted.faults.expect("fault stats must be reported");
        assert!(fs.rules[0].fired >= QUARANTINE_STRIKES);
    }
}

#[test]
fn latency_faults_never_change_the_record_stream() {
    let clean: Vec<String> = run(0, None)
        .records
        .iter()
        .map(|r| r.format_line())
        .collect();
    assert!(!clean.is_empty());
    for workers in [0usize, 2] {
        let plan = Arc::new(
            FaultPlan::parse("seed=7;slow=analyze@0.3/200us;cpu=detect@0.2/100us").unwrap(),
        );
        let out = run(workers, Some(plan));
        let lines: Vec<String> = out.records.iter().map(|r| r.format_line()).collect();
        assert_eq!(lines, clean, "workers={workers}");
        let fs = out.faults.expect("fault stats must be reported");
        assert!(
            fs.rules.iter().any(|r| r.calls > 0),
            "workers={workers}: injection sites were never consulted"
        );
        assert_eq!(out.panics, 0);
        assert!(out.quarantined.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Wire-layer chaos.
// ---------------------------------------------------------------------------

fn trace_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(3, 8, 28.0, 4242);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

fn offline_lines(path: &std::path::Path) -> Vec<String> {
    let (header, samples) = rfd_ether::trace::read_trace(path).unwrap();
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = rfd_ether::Band {
        sample_rate: header.sample_rate,
        center_hz: header.center_hz,
    };
    cfg.telemetry = false;
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    out.records.iter().map(|r| r.format_line()).collect()
}

#[test]
fn injected_disconnects_resume_without_loss_duplication_or_reorder() {
    let path = trace_file("chaos-resume.rfdt");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            resume_grace: Duration::from_secs(10),
            ..Default::default()
        },
        Box::new(LivePipeline::new({
            let mut c = ArchConfig::rfdump(vec![piconet()]);
            c.telemetry = false;
            c
        })),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let plan = Arc::new(FaultPlan::parse("seed=5;disconnect=net.send.chunk%9x3").unwrap());
    let tx = ResilientSender::new(addr.to_string()).with_faults(Some(plan));
    let report = tx
        .send_trace_file(&path, SendRate::Max, 1000)
        .expect("resilient send must survive injected disconnects");
    assert!(
        report.reconnects >= 1,
        "the disconnect faults must actually have fired"
    );

    let mut lines = Vec::new();
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(r) => lines.push(r.line),
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let stats = run.join().unwrap();
    assert_eq!(stats.sessions, 1, "resume must not fork a second session");
    assert_eq!(
        lines,
        offline_lines(&path),
        "stream after reconnects must be byte-identical to offline"
    );
}

#[test]
fn garbage_floods_never_take_the_server_down() {
    let path = trace_file("chaos-flood.rfdt");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig::default(),
        Box::new(LivePipeline::new({
            let mut c = ArchConfig::rfdump(vec![piconet()]);
            c.telemetry = false;
            c
        })),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());

    // Seeded garbage floods: raw bytes, valid-looking prefixes, and abrupt
    // closes. The server must reject each without dying.
    seeded_cases(0xF100D, 8, |rng| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let junk = random_bytes(rng, 1, 8192);
        let _ = s.write_all(&junk);
        let _ = s.flush();
    });
    // Wait until the floods have been seen and at least one was rejected as
    // malformed (tiny floods may close before a full frame header arrives).
    let t0 = std::time::Instant::now();
    while (handle.stats().connections < 8 || handle.stats().decode_errors == 0)
        && t0.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        handle.stats().decode_errors >= 1,
        "garbage must be rejected, not silently accepted"
    );

    // A good session afterwards must still work end to end.
    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let tx = ResilientSender::new(addr.to_string());
    let report = tx.send_trace_file(&path, SendRate::Max, 2000).unwrap();
    assert!(report.samples > 0);
    let mut records = 0u64;
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(_) => records += 1,
            SubEvent::Stats(_) => break, // end-of-session stats frame
            SubEvent::Bye => break,
            _ => {}
        }
    }
    assert_eq!(records as usize, offline_lines(&path).len());
    handle.shutdown();
    run.join().unwrap();
}

// ---------------------------------------------------------------------------
// Fleet chaos: kill one of three senders mid-stream and let it reconnect.
// ---------------------------------------------------------------------------

/// A distinct seeded scene per source, so cross-source contamination after
/// a resume would show up in the diffs.
fn fleet_trace_file(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(3, 8, 28.0, seed);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

fn fleet_offline_lines(path: &std::path::Path, workers: usize) -> Vec<String> {
    let (header, samples) = rfd_ether::trace::read_trace(path).unwrap();
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = rfd_ether::Band {
        sample_rate: header.sample_rate,
        center_hz: header.center_hz,
    };
    cfg.telemetry = false;
    cfg.workers = workers;
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    out.records.iter().map(|r| r.format_line()).collect()
}

/// The fleet survivability contract: three concurrent sources, one sender
/// repeatedly killed by injected disconnects. The resilient sender
/// re-handshakes with its source id, the server resumes the parked
/// session, and every source's record stream — the killed one included —
/// is byte-identical to offline analysis of its trace.
fn fleet_sender_kill_restart_matches_offline(workers: usize) {
    use std::collections::BTreeMap;
    let names = ["roof", "lab-3", "van.2"];
    let paths: Vec<PathBuf> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            fleet_trace_file(&format!("chaos-fleet-{n}-w{workers}.rfdt"), 7000 + i as u64)
        })
        .collect();
    let offline: Vec<Vec<String>> = paths
        .iter()
        .map(|p| fleet_offline_lines(p, workers))
        .collect();
    assert!(
        offline.iter().all(|l| !l.is_empty()),
        "every scene must produce records for the diff to mean anything"
    );

    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.telemetry = false;
    cfg.workers = workers;
    let slot = Arc::new(std::sync::Mutex::new(None));
    let factory = rfdump::fleet::pipeline_factory(cfg, None, slot);
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig {
            expect: Some(names.len() as u64),
            resume_grace: Duration::from_secs(10),
            ..Default::default()
        },
        factory,
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());
    let mut net_sub = RecordSubscriber::connect(addr).unwrap();

    // Two healthy senders, plus one whose connection is repeatedly dropped
    // by injected faults (the same plan the single-stream resume test
    // proves fires at this trace size and chunking).
    let healthy: Vec<_> = names[..2]
        .iter()
        .zip(paths[..2].iter())
        .map(|(name, path)| {
            let name = name.to_string();
            let path = path.clone();
            std::thread::spawn(move || {
                let mut tx = rfd_net::TraceSender::connect_source(addr, &name).unwrap();
                tx.send_trace_file(&path, SendRate::Max, 1000).unwrap();
                tx.finish().unwrap();
            })
        })
        .collect();
    let chaotic = {
        let path = paths[2].clone();
        let plan = Arc::new(FaultPlan::parse("seed=5;disconnect=net.send.chunk%9x3").unwrap());
        std::thread::spawn(move || {
            let tx = ResilientSender::new(addr.to_string())
                .with_source("van.2")
                .with_faults(Some(plan));
            tx.send_trace_file(&path, SendRate::Max, 1000)
                .expect("fleet resilient send must survive injected disconnects")
        })
    };
    for t in healthy {
        t.join().unwrap();
    }
    let report = chaotic.join().unwrap();
    assert!(
        report.reconnects >= 1,
        "the disconnect faults must actually have fired (w={workers})"
    );

    // Partition the merged tagged stream by source.
    let mut by_tag: BTreeMap<String, Vec<String>> = BTreeMap::new();
    loop {
        match net_sub.next_event().unwrap() {
            SubEvent::SourceRecord { source, record } => {
                by_tag.entry(source).or_default().push(record.line)
            }
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let snap = run.join().unwrap();
    assert_eq!(snap.sources_done, names.len() as u64, "w={workers}");
    assert!(
        snap.resumes >= 1,
        "the fleet must have resumed the killed source (w={workers})"
    );
    let van = snap
        .per_source
        .iter()
        .find(|s| s.source == "van.2")
        .unwrap();
    assert!(
        van.resumes >= 1 && van.disconnects >= 1,
        "per-source resume accounting must reflect the kills (w={workers})"
    );
    for (name, offline) in names.iter().zip(offline.iter()) {
        assert_eq!(
            by_tag.get(*name),
            Some(offline),
            "stream for '{name}' must be byte-identical to offline after kill/restart (w={workers})"
        );
    }
}

/// The bounded-latency overload contract: one source's consumer is
/// cpu-starved by injected faults, blowing its deadline budget sweep after
/// sweep. The shed ladder must engage (budget violations booked, throttle
/// advisories sent, drop-oldest forcing room), while the unfaulted source
/// stays under budget and its record stream stays byte-identical to
/// offline analysis.
#[test]
fn fleet_cpu_chaos_sheds_the_starved_source_and_keeps_the_clean_one_byte_identical() {
    use std::collections::BTreeMap;
    let laggy_path = fleet_trace_file("chaos-overload-laggy.rfdt", 7100);
    let quick_path = fleet_trace_file("chaos-overload-quick.rfdt", 7101);
    let quick_offline = fleet_offline_lines(&quick_path, 0);
    assert!(!quick_offline.is_empty());

    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.telemetry = false;
    cfg.workers = 0;
    let slot = Arc::new(std::sync::Mutex::new(None));
    let factory = rfdump::fleet::pipeline_factory(cfg, None, slot);
    let reg = Arc::new(rfd_telemetry::Registry::new());
    // Spin 10 ms on every chunk popped for "laggy" only: its queue waits
    // pile up to queue_cap × 10 ms ≫ the 100 ms budget, while "quick"'s
    // consumer (its own thread) is untouched.
    let plan = Arc::new(FaultPlan::parse("seed=11;cpu=net.fleet.analysis.laggy/10ms").unwrap());
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig {
            expect: Some(2),
            queue_cap: 32,
            latency_budget: Some(Duration::from_millis(100)),
            faults: Some(plan),
            ..Default::default()
        },
        factory,
        Some(reg.clone()),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());
    let mut net_sub = RecordSubscriber::connect(addr).unwrap();

    let senders: Vec<_> = [("laggy", &laggy_path), ("quick", &quick_path)]
        .into_iter()
        .map(|(name, path)| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut tx = rfd_net::TraceSender::connect_source(addr, name).unwrap();
                tx.send_trace_file(&path, SendRate::Max, 1000).unwrap();
                tx.finish().unwrap();
            })
        })
        .collect();
    for t in senders {
        t.join().unwrap();
    }

    let mut by_tag: BTreeMap<String, Vec<String>> = BTreeMap::new();
    loop {
        match net_sub.next_event().unwrap() {
            SubEvent::SourceRecord { source, record } => {
                by_tag.entry(source).or_default().push(record.line)
            }
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let snap = run.join().unwrap();
    let lat = snap.latency.expect("budget run must carry latency stats");
    assert!(
        lat.violations >= 2,
        "the starved source must violate across sweeps, got {}",
        lat.violations
    );
    assert!(
        lat.shed_throttle >= 1,
        "the throttle rung must have fired an advisory"
    );
    assert!(
        reg.counter("events.budget_violated").get() >= 1,
        "budget_violated events must reach the registry"
    );
    assert!(
        reg.counter("events.source_shed").get() >= 1,
        "source_shed events must reach the registry"
    );
    let row = |name: &str| snap.per_source.iter().find(|s| s.source == name).unwrap();
    assert!(
        row("laggy").deadline_p99_us > 100_000.0,
        "the starved source's deadline p99 must be over budget, got {}",
        row("laggy").deadline_p99_us
    );
    assert!(
        row("quick").deadline_p99_us < 100_000.0,
        "the clean source must stay under budget, got {}",
        row("quick").deadline_p99_us
    );
    assert_eq!(row("quick").shed, "none", "only the offender is shed");
    assert!(
        snap.per_source
            .iter()
            .all(|s| s.health == rfd_net::SourceHealth::Healthy),
        "shedding must never escalate the health machine"
    );
    assert_eq!(
        by_tag.get("quick"),
        Some(&quick_offline),
        "the unfaulted source's stream must be byte-identical to offline"
    );
    assert!(
        !by_tag.get("laggy").is_none_or(Vec::is_empty),
        "the shed source still publishes what survived"
    );
}

#[test]
fn fleet_sender_killed_and_restarted_is_byte_identical_single_threaded() {
    fleet_sender_kill_restart_matches_offline(0);
}

#[test]
fn fleet_sender_killed_and_restarted_is_byte_identical_with_workers() {
    fleet_sender_kill_restart_matches_offline(4);
}
