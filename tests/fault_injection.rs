//! Chaos scenarios: seeded fault injection through the full pipeline.
//!
//! Three contracts, one per layer of the recovery machinery:
//!
//! 1. **Supervision / quarantine** — a deterministically panicking analyzer
//!    is quarantined after [`QUARANTINE_STRIKES`] strikes; the run finishes
//!    and every *other* protocol's records are byte-identical to the
//!    fault-free run, at any worker count.
//! 2. **Output-preserving faults** — injected latency (`slow`, `cpu`) can
//!    never change the record stream, only its timing.
//! 3. **Wire resilience** — a producer whose connection is dropped
//!    mid-stream by injected `disconnect` faults reconnects, resumes from
//!    the server's acknowledged position, and the subscriber still sees a
//!    stream byte-identical to offline analysis; raw garbage floods never
//!    take the server down.

use rfd_fault::FaultPlan;
use rfd_integration::{mixed_trace, piconet, random_bytes, seeded_cases};
use rfd_net::{RecordSubscriber, ResilientSender, SendRate, Server, ServerConfig, SubEvent};
use rfdump::arch::{run_architecture, ArchConfig, ArchOutput};
use rfdump::dispatch::QUARANTINE_STRIKES;
use rfdump::live::LivePipeline;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn run(workers: usize, faults: Option<Arc<FaultPlan>>) -> ArchOutput {
    let trace = mixed_trace(4, 8, 30.0, 99);
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = trace.band;
    cfg.noise_floor = Some(trace.noise_power);
    cfg.telemetry = false;
    cfg.workers = workers;
    cfg.faults = faults;
    run_architecture(&cfg, &trace.samples, trace.band.sample_rate)
}

fn lines_except_wifi(out: &ArchOutput) -> Vec<String> {
    out.records
        .iter()
        .filter(|r| r.protocol != rfd_phy::Protocol::Wifi)
        .map(|r| r.format_line())
        .collect()
}

#[test]
fn panicking_wifi_analyzer_is_quarantined_and_the_rest_is_untouched() {
    let clean = run(0, None);
    let wifi_records = clean
        .records
        .iter()
        .filter(|r| r.protocol == rfd_phy::Protocol::Wifi)
        .count();
    assert!(
        wifi_records as u64 >= QUARANTINE_STRIKES + 2,
        "scene must carry enough Wi-Fi traffic to trip quarantine ({wifi_records} records)"
    );
    assert_eq!(clean.panics, 0);
    assert!(clean.quarantined.is_empty());

    for workers in [0usize, 2] {
        let plan = Arc::new(FaultPlan::parse("seed=1;panic=analyze:wifi").unwrap());
        let faulted = run(workers, Some(plan));
        assert_eq!(
            faulted.quarantined,
            vec!["analyze:wifi-demod".to_string()],
            "workers={workers}"
        );
        assert!(
            faulted.panics >= QUARANTINE_STRIKES,
            "workers={workers}: {} panic(s) survived",
            faulted.panics
        );
        assert_eq!(
            lines_except_wifi(&faulted),
            lines_except_wifi(&clean),
            "workers={workers}: non-Wi-Fi records must be byte-identical"
        );
        let fs = faulted.faults.expect("fault stats must be reported");
        assert!(fs.rules[0].fired >= QUARANTINE_STRIKES);
    }
}

#[test]
fn latency_faults_never_change_the_record_stream() {
    let clean: Vec<String> = run(0, None)
        .records
        .iter()
        .map(|r| r.format_line())
        .collect();
    assert!(!clean.is_empty());
    for workers in [0usize, 2] {
        let plan = Arc::new(
            FaultPlan::parse("seed=7;slow=analyze@0.3/200us;cpu=detect@0.2/100us").unwrap(),
        );
        let out = run(workers, Some(plan));
        let lines: Vec<String> = out.records.iter().map(|r| r.format_line()).collect();
        assert_eq!(lines, clean, "workers={workers}");
        let fs = out.faults.expect("fault stats must be reported");
        assert!(
            fs.rules.iter().any(|r| r.calls > 0),
            "workers={workers}: injection sites were never consulted"
        );
        assert_eq!(out.panics, 0);
        assert!(out.quarantined.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Wire-layer chaos.
// ---------------------------------------------------------------------------

fn trace_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-fault-injection");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(3, 8, 28.0, 4242);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

fn offline_lines(path: &std::path::Path) -> Vec<String> {
    let (header, samples) = rfd_ether::trace::read_trace(path).unwrap();
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = rfd_ether::Band {
        sample_rate: header.sample_rate,
        center_hz: header.center_hz,
    };
    cfg.telemetry = false;
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    out.records.iter().map(|r| r.format_line()).collect()
}

#[test]
fn injected_disconnects_resume_without_loss_duplication_or_reorder() {
    let path = trace_file("chaos-resume.rfdt");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            resume_grace: Duration::from_secs(10),
            ..Default::default()
        },
        Box::new(LivePipeline::new({
            let mut c = ArchConfig::rfdump(vec![piconet()]);
            c.telemetry = false;
            c
        })),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let plan = Arc::new(FaultPlan::parse("seed=5;disconnect=net.send.chunk%9x3").unwrap());
    let tx = ResilientSender::new(addr.to_string()).with_faults(Some(plan));
    let report = tx
        .send_trace_file(&path, SendRate::Max, 1000)
        .expect("resilient send must survive injected disconnects");
    assert!(
        report.reconnects >= 1,
        "the disconnect faults must actually have fired"
    );

    let mut lines = Vec::new();
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(r) => lines.push(r.line),
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let stats = run.join().unwrap();
    assert_eq!(stats.sessions, 1, "resume must not fork a second session");
    assert_eq!(
        lines,
        offline_lines(&path),
        "stream after reconnects must be byte-identical to offline"
    );
}

#[test]
fn garbage_floods_never_take_the_server_down() {
    let path = trace_file("chaos-flood.rfdt");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig::default(),
        Box::new(LivePipeline::new({
            let mut c = ArchConfig::rfdump(vec![piconet()]);
            c.telemetry = false;
            c
        })),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());

    // Seeded garbage floods: raw bytes, valid-looking prefixes, and abrupt
    // closes. The server must reject each without dying.
    seeded_cases(0xF100D, 8, |rng| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let junk = random_bytes(rng, 1, 8192);
        let _ = s.write_all(&junk);
        let _ = s.flush();
    });
    // Wait until the floods have been seen and at least one was rejected as
    // malformed (tiny floods may close before a full frame header arrives).
    let t0 = std::time::Instant::now();
    while (handle.stats().connections < 8 || handle.stats().decode_errors == 0)
        && t0.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        handle.stats().decode_errors >= 1,
        "garbage must be rejected, not silently accepted"
    );

    // A good session afterwards must still work end to end.
    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let tx = ResilientSender::new(addr.to_string());
    let report = tx.send_trace_file(&path, SendRate::Max, 2000).unwrap();
    assert!(report.samples > 0);
    let mut records = 0u64;
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(_) => records += 1,
            SubEvent::Stats(_) => break, // end-of-session stats frame
            SubEvent::Bye => break,
            _ => {}
        }
    }
    assert_eq!(records as usize, offline_lines(&path).len());
    handle.shutdown();
    run.join().unwrap();
}
