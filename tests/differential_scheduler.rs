//! Differential harness for the work-stealing analysis pool: the full
//! RFDump pipeline over Wi-Fi, Bluetooth, and ZigBee traffic (and the
//! synthesized campus trace) must produce a byte-identical record stream
//! whether analysis runs inline on the scheduler thread (`workers: 0`) or
//! on a pool of 1, 2, or 8 worker threads.
//!
//! This is the determinism contract the pool's reorder stage guarantees:
//! parallelism changes *when* a record is computed, never *what* is
//! reported or *in which order*.

use rfd_integration::{mixed_trace, piconet};
use rfd_mac::{
    merge_schedules, DcfConfig, L2PingConfig, L2PingSim, WifiDcfSim, ZigbeeConfig, ZigbeeSim,
};
use rfdump::arch::{run_architecture, ArchConfig, ArchKind, ArchOutput, DetectorSet};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs a config at a worker count over a trace.
fn run(cfg: &ArchConfig, samples: &[rfd_dsp::Complex32], fs: f64, workers: usize) -> ArchOutput {
    let cfg = ArchConfig {
        workers,
        ..cfg.clone()
    };
    run_architecture(&cfg, samples, fs)
}

/// The serialized record stream: exactly what `rfdump -r` prints.
fn serialized(out: &ArchOutput) -> String {
    out.records
        .iter()
        .map(|r| r.format_line())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Per-protocol packet counts as reported in the `--stats-json` document's
/// `records` section.
fn stats_json_counts(out: &ArchOutput) -> Vec<(String, f64, f64)> {
    let doc = rfdump::stats::stats_json(out);
    let records = doc.get("records").expect("records section");
    let per = records
        .get("per_protocol")
        .expect("per_protocol")
        .as_obj()
        .expect("object");
    per.iter()
        .map(|(proto, entry)| {
            (
                proto.clone(),
                entry.get("total").unwrap().as_f64().unwrap(),
                entry.get("decoded").unwrap().as_f64().unwrap(),
            )
        })
        .collect()
}

/// Asserts single-threaded and pooled runs agree at every worker count.
fn assert_differential(label: &str, cfg: &ArchConfig, samples: &[rfd_dsp::Complex32], fs: f64) {
    let baseline = run(cfg, samples, fs, 0);
    let want = serialized(&baseline);
    let want_counts = stats_json_counts(&baseline);
    assert!(
        !baseline.records.is_empty(),
        "{label}: baseline produced no records — the differential is vacuous"
    );
    for &w in &WORKER_COUNTS {
        let pooled = run(cfg, samples, fs, w);
        assert_eq!(
            serialized(&pooled),
            want,
            "{label}: record stream diverged at {w} workers"
        );
        assert_eq!(
            stats_json_counts(&pooled),
            want_counts,
            "{label}: stats-json record counts diverged at {w} workers"
        );
        let ps = pooled.pool_stats.expect("pooled run reports pool stats");
        assert_eq!(ps.workers.len(), w, "{label}: wrong worker count");
        assert!(
            ps.executed() > 0,
            "{label}: pool at {w} workers executed nothing"
        );
    }
    assert!(
        baseline.pool_stats.is_none(),
        "{label}: single-threaded run must not report pool stats"
    );
}

#[test]
fn wifi_and_bluetooth_trace_is_scheduler_independent() {
    let trace = mixed_trace(4, 12, 28.0, 101);
    let cfg = ArchConfig {
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        ..ArchConfig::rfdump(vec![piconet()])
    };
    assert_differential("wifi+bt", &cfg, &trace.samples, trace.band.sample_rate);
}

/// Wi-Fi pings + Bluetooth l2pings + ZigBee sensor reports in one ether.
fn three_protocol_trace() -> (rfd_ether::scene::EtherTrace, ArchConfig) {
    let mut wifi = WifiDcfSim::new(DcfConfig {
        seed: 202,
        ..Default::default()
    });
    wifi.queue_ping_flow(1, 2, 3, 300, 11_000.0, 0.0);
    let mut bt = L2PingSim::new(L2PingConfig {
        count: 8,
        ..Default::default()
    });
    let mut zb = ZigbeeSim::new(ZigbeeConfig {
        count: 6,
        ..Default::default()
    });
    let events = merge_schedules(vec![wifi.run(), bt.run(), zb.run()]);
    let horizon = events.iter().map(|e| e.end_us()).fold(0.0, f64::max) + 1_000.0;
    let mut scene = rfd_ether::scene::Scene::new(1e-4, 202);
    let gain = 28.0 + rfd_dsp::energy::power_to_db(1e-4);
    for node in 0..24 {
        scene.set_node(node, gain, (node as f64 - 6.0) * 300.0);
    }
    let trace = scene.render(&events, horizon);
    let cfg = ArchConfig {
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        zigbee: true,
        ..ArchConfig::rfdump(vec![piconet()])
    };
    (trace, cfg)
}

/// The paper's §5.3 real-world shape, scaled down to test size.
fn campus() -> (rfd_ether::scene::EtherTrace, ArchConfig) {
    let (trace, _) = rfd_ether::campus::campus_trace(&rfd_ether::campus::CampusConfig {
        duration_us: 120_000.0,
        n_r1: 2,
        r1_payload: 700,
        n_r2: 3,
        n_r55: 3,
        n_r11: 3,
        ..Default::default()
    });
    let cfg = ArchConfig {
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        ..ArchConfig::rfdump(vec![])
    };
    (trace, cfg)
}

#[test]
fn three_protocol_trace_is_scheduler_independent() {
    let (trace, cfg) = three_protocol_trace();
    assert_differential(
        "wifi+bt+zigbee",
        &cfg,
        &trace.samples,
        trace.band.sample_rate,
    );
}

#[test]
fn campus_trace_is_scheduler_independent() {
    let (trace, cfg) = campus();
    assert_differential("campus", &cfg, &trace.samples, trace.band.sample_rate);
}

/// Kernel-backend differential: the record stream must be byte-identical
/// whichever vectorized DSP backend runs, single-threaded and pooled.
/// Combined with the scheduler differential above, this covers the whole
/// matrix the determinism contract promises: records depend on neither the
/// worker count nor the SIMD width of the kernels that computed them.
fn assert_kernel_differential(
    label: &str,
    cfg: &ArchConfig,
    samples: &[rfd_dsp::Complex32],
    fs: f64,
) {
    use rfd_dsp::kernels::{self, Backend};
    // Backend selection is process-global: serialize the two kernel-matrix
    // tests so neither flips the backend out from under the other's run.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for &w in &[0usize, 4] {
        kernels::set_backend(Backend::Scalar).unwrap();
        let baseline = run(cfg, samples, fs, w);
        let want = serialized(&baseline);
        assert!(
            !baseline.records.is_empty(),
            "{label}: scalar baseline at {w} workers produced no records"
        );
        for &backend in kernels::available() {
            kernels::set_backend(backend).unwrap();
            let pooled = run(cfg, samples, fs, w);
            assert_eq!(
                serialized(&pooled),
                want,
                "{label}: record stream diverged between scalar and {backend} kernels \
                 at {w} workers"
            );
        }
    }
    kernels::set_backend(Backend::Scalar).unwrap();
}

#[test]
fn three_protocol_trace_is_kernel_backend_independent() {
    let (trace, cfg) = three_protocol_trace();
    assert_kernel_differential(
        "wifi+bt+zigbee",
        &cfg,
        &trace.samples,
        trace.band.sample_rate,
    );
}

#[test]
fn campus_trace_is_kernel_backend_independent() {
    let (trace, cfg) = campus();
    assert_kernel_differential("campus", &cfg, &trace.samples, trace.band.sample_rate);
}

/// Chunk-size differential: the record stream must be byte-identical at
/// any ingest chunk size, at any worker count, budget or no budget. This
/// is the adaptive-chunking contract behind `--latency-budget`: the peak
/// detector re-blocks internally at a fixed block size, so chunk size is a
/// pure latency/throughput knob the governor may resize mid-run without
/// ever touching what is reported.
fn assert_chunk_differential(
    label: &str,
    cfg: &ArchConfig,
    samples: &[rfd_dsp::Complex32],
    fs: f64,
) {
    let baseline = run(cfg, samples, fs, 0);
    let want = serialized(&baseline);
    assert!(
        !baseline.records.is_empty(),
        "{label}: baseline produced no records — the differential is vacuous"
    );
    for &w in &[0usize, 4] {
        for chunk in [64usize, 100, 200, 512, 1024] {
            let sized = ArchConfig {
                chunk_samples: chunk,
                workers: w,
                ..cfg.clone()
            };
            let out = run_architecture(&sized, samples, fs);
            assert_eq!(
                serialized(&out),
                want,
                "{label}: record stream diverged at chunk {chunk}, {w} workers"
            );
        }
        // An unviolated (generous) budget must also change nothing: the
        // governor arms its latency machinery but never walks the ladder.
        let budgeted = ArchConfig {
            workers: w,
            governor: Some(rfdump::governor::GovernorConfig {
                latency_budget_us: Some(60_000_000.0),
                ..Default::default()
            }),
            ..cfg.clone()
        };
        let out = run_architecture(&budgeted, samples, fs);
        assert_eq!(
            serialized(&out),
            want,
            "{label}: an unviolated budget changed the record stream at {w} workers"
        );
        let report = out.latency.expect("budget run must carry a latency report");
        assert_eq!(
            report.violations, 0,
            "{label}: a 60 s budget must never be violated in a test run"
        );
        assert_eq!(
            report.chunk_size, report.chunk_base,
            "{label}: chunk size must be untouched under an unviolated budget"
        );
    }
}

#[test]
fn three_protocol_trace_is_chunk_size_independent() {
    let (trace, cfg) = three_protocol_trace();
    assert_chunk_differential(
        "wifi+bt+zigbee",
        &cfg,
        &trace.samples,
        trace.band.sample_rate,
    );
}

#[test]
fn campus_trace_is_chunk_size_independent() {
    let (trace, cfg) = campus();
    assert_chunk_differential("campus", &cfg, &trace.samples, trace.band.sample_rate);
}

#[test]
fn online_noise_floor_is_chunk_size_independent() {
    // No pre-computed floor: the online estimator sees the same fixed
    // detector blocks whatever the ingest chunk size, so even the
    // data-derived floor cannot smuggle chunking into the records.
    let trace = mixed_trace(3, 8, 28.0, 404);
    let cfg = ArchConfig {
        band: trace.band,
        noise_floor: None,
        ..ArchConfig::rfdump(vec![piconet()])
    };
    assert_chunk_differential("online-floor", &cfg, &trace.samples, trace.band.sample_rate);
}

#[test]
fn detection_only_mode_is_scheduler_independent() {
    // `-n` (no demodulation): pooled analysis still emits tentative
    // detection-only records, and they too must be order-identical.
    let trace = mixed_trace(3, 6, 28.0, 303);
    let cfg = ArchConfig {
        demodulate: false,
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        kind: ArchKind::RfDump(DetectorSet::TimingAndPhase),
        ..ArchConfig::rfdump(vec![piconet()])
    };
    assert_differential(
        "detection-only",
        &cfg,
        &trace.samples,
        trace.band.sample_rate,
    );
}
