//! Shared helpers for the cross-crate integration tests.

use rfd_dsp::rng::Xoshiro256;
use rfd_ether::scene::{EtherTrace, Scene};
use rfd_mac::{merge_schedules, DcfConfig, L2PingConfig, L2PingSim, WifiDcfSim};
use rfd_phy::bluetooth::demod::PiconetId;

/// The piconet used across integration tests.
pub const LAP: u32 = 0x9E8B33;
/// Its UAP.
pub const UAP: u8 = 0x47;

/// The test piconet id.
pub fn piconet() -> PiconetId {
    PiconetId { lap: LAP, uap: UAP }
}

/// Renders a mixed Wi-Fi + Bluetooth trace at the given SNR.
pub fn mixed_trace(n_pings: usize, n_l2pings: usize, snr_db: f32, seed: u64) -> EtherTrace {
    let mut wifi = WifiDcfSim::new(DcfConfig {
        seed,
        ..Default::default()
    });
    wifi.queue_ping_flow(1, 2, n_pings, 300, 11_000.0, 0.0);
    let mut bt = L2PingSim::new(L2PingConfig {
        count: n_l2pings,
        ..Default::default()
    });
    let events = merge_schedules(vec![wifi.run(), bt.run()]);
    let horizon = events.iter().map(|e| e.end_us()).fold(0.0, f64::max) + 1_000.0;
    let mut scene = Scene::new(1e-4, seed);
    let gain = snr_db + rfd_dsp::energy::power_to_db(1e-4);
    for node in 0..16 {
        scene.set_node(node, gain, (node as f64 - 4.0) * 400.0);
    }
    scene.render(&events, horizon)
}

/// Deterministic randomized-case harness: runs `f` for `cases` iterations,
/// each with a freshly seeded [`Xoshiro256`], and re-raises any panic with
/// the failing case number so a failure reproduces exactly.
pub fn seeded_cases(base_seed: u64, cases: u64, mut f: impl FnMut(&mut Xoshiro256)) {
    for case in 0..cases {
        let seed = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Xoshiro256::new(seed);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(e) = r {
            eprintln!("seeded_cases: case {case} (base_seed {base_seed}, seed {seed}) failed");
            std::panic::resume_unwind(e);
        }
    }
}

/// A random byte vector with length in `[min_len, max_len)`.
pub fn random_bytes(rng: &mut Xoshiro256, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = min_len + rng.next_range((max_len - min_len) as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}
