//! Fuzz tests for the `rfd-journal` decoder: recovery must never panic and
//! must never replay corrupt data, whatever a crash (or bit rot) leaves on
//! disk. Mirrors the adversarial style of `net_robustness.rs`.

use rfd_integration::{random_bytes, seeded_cases};
use rfd_journal::{
    read_checkpoint, recover, write_checkpoint, Entry, JournalWriter, ENTRY_HEADER_LEN,
    SEGMENT_HEADER_LEN,
};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("rfd-journal-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Writes a reference journal of `n` entries and returns them.
fn write_reference(dir: &Path, n: usize) -> Vec<Entry> {
    let mut w = JournalWriter::create(dir).unwrap();
    let mut entries = Vec::new();
    for i in 0..n {
        let payload = vec![i as u8; 1 + (i * 7) % 64];
        let kind = 1 + (i % 3) as u16;
        let seq = w.append(kind, &payload).unwrap();
        entries.push(Entry { kind, seq, payload });
    }
    w.sync().unwrap();
    entries
}

/// The recovered entries must be an exact prefix of what was written: a
/// decoder that invents, reorders, or mutates entries fails here.
fn assert_prefix(recovered: &[Entry], reference: &[Entry]) {
    assert!(
        recovered.len() <= reference.len(),
        "recovered {} entries from a journal of {}",
        recovered.len(),
        reference.len()
    );
    for (got, want) in recovered.iter().zip(reference) {
        assert_eq!(got.kind, want.kind);
        assert_eq!(got.seq, want.seq);
        assert_eq!(got.payload, want.payload);
    }
}

#[test]
fn truncation_at_every_boundary_recovers_a_prefix() {
    let dir = temp_dir("truncate");
    let reference = write_reference(&dir, 40);
    let seg = dir.join("seg-000000.rfdj");
    let full = std::fs::read(&seg).unwrap();
    // Every truncation point (byte granularity for the first few entries,
    // then strided to keep the test fast) must yield a clean prefix.
    let mut cut = 0;
    while cut <= full.len() {
        std::fs::write(&seg, &full[..cut]).unwrap();
        let rec = recover(&dir).unwrap();
        assert_prefix(&rec.entries, &reference);
        cut += if cut < 200 { 1 } else { 131 };
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn random_bit_flips_never_panic_and_never_replay_corrupt_entries() {
    let dir = temp_dir("bitflip");
    let reference = write_reference(&dir, 30);
    let seg = dir.join("seg-000000.rfdj");
    let full = std::fs::read(&seg).unwrap();
    seeded_cases(0xB17_F11B, 200, |rng| {
        let mut bytes = full.clone();
        let flips = 1 + rng.next_range(4) as usize;
        for _ in 0..flips {
            let pos = rng.next_range(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << rng.next_range(8);
        }
        std::fs::write(&seg, &bytes).unwrap();
        let rec = recover(&dir).unwrap();
        // CRC framing means a flipped entry (or header) ends the valid
        // prefix; everything recovered must match the original bytes.
        assert_prefix(&rec.entries, &reference);
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn random_garbage_segments_never_panic() {
    let dir = temp_dir("garbage");
    seeded_cases(0x6A2_BA6E, 200, |rng| {
        let bytes = random_bytes(rng, 0, 4096);
        std::fs::write(dir.join("seg-000000.rfdj"), &bytes).unwrap();
        // Whatever the bytes, recovery returns cleanly.
        let rec = recover(&dir).unwrap();
        assert!(rec.entries.len() <= bytes.len() / ENTRY_HEADER_LEN.max(1));
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_entry_is_dropped_entries_before_it_survive() {
    let dir = temp_dir("torn");
    let mut w = JournalWriter::create(&dir).unwrap();
    for i in 0..10u8 {
        w.append(2, &[i; 16]).unwrap();
    }
    // A half-written entry: exactly what a kill mid-append leaves behind.
    w.append_torn(3, &[0xEE; 32]).unwrap();
    w.sync().unwrap();
    drop(w);
    let rec = recover(&dir).unwrap();
    assert_eq!(rec.entries.len(), 10);
    assert!(rec.truncated, "torn tail must be reported");
    for (i, e) in rec.entries.iter().enumerate() {
        assert_eq!(e.payload, vec![i as u8; 16]);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_and_single_entry_journals_round_trip() {
    let dir = temp_dir("tiny");
    // Empty: just a segment header.
    let w = JournalWriter::create(&dir).unwrap();
    drop(w);
    let rec = recover(&dir).unwrap();
    assert!(rec.entries.is_empty());
    assert!(!rec.truncated);
    // Single entry.
    let mut w = JournalWriter::create(&dir).unwrap();
    w.append(7, b"lonely").unwrap();
    w.sync().unwrap();
    drop(w);
    let rec = recover(&dir).unwrap();
    assert_eq!(rec.entries.len(), 1);
    assert_eq!(rec.entries[0].payload, b"lonely");
    // A header-only truncation below SEGMENT_HEADER_LEN is still clean.
    let seg = dir.join("seg-000000.rfdj");
    let full = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &full[..SEGMENT_HEADER_LEN - 3]).unwrap();
    assert!(recover(&dir).unwrap().entries.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_corruption_reads_as_absent_never_as_garbage() {
    let dir = temp_dir("ckpt");
    let path = dir.join("checkpoint.rfdc");
    let payload = b"state-of-the-run".to_vec();
    write_checkpoint(&path, &payload).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), Some(payload.clone()));
    let full = std::fs::read(&path).unwrap();
    seeded_cases(0xC4EC_4001, 200, |rng| {
        let mut bytes = full.clone();
        match rng.next_range(3) {
            0 => {
                let cut = rng.next_range(bytes.len() as u64) as usize;
                bytes.truncate(cut);
            }
            1 => {
                let pos = rng.next_range(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << rng.next_range(8);
            }
            _ => bytes = random_bytes(rng, 0, 256),
        }
        std::fs::write(&path, &bytes).unwrap();
        // Either the original payload survives verbatim (flip in slack or
        // an identity flip is impossible — CRC covers payload and length),
        // or the checkpoint reads as absent. Corrupt-but-accepted is the
        // one outcome that must never happen.
        if let Some(p) = read_checkpoint(&path).unwrap() {
            assert_eq!(p, payload, "checkpoint CRC accepted corrupt data");
        }
    });
    std::fs::remove_dir_all(&dir).unwrap();
}
