//! Differential tests for the vectorized DSP kernel layer.
//!
//! The scalar kernels in `rfd_dsp::kernels` are the reference semantics: the
//! SSE2 and AVX2 backends must reproduce them **bit-for-bit**, not merely to
//! within a tolerance. These tests force each backend this CPU supports via
//! [`rfd_dsp::kernels::set_backend`] and compare every kernel's output to the
//! scalar result with `to_bits()` equality, across:
//!
//! - sizes straddling every lane-width boundary (1, lane-1, lane, lane+1,
//!   odd primes, and large non-round sizes) so remainder loops are hit;
//! - denormal inputs (~1e-41) that exercise flush-to-zero differences, which
//!   Rust/LLVM must not introduce on either path;
//! - NaN/inf-free random IQ with mixed magnitudes and signs.
//!
//! Backend selection is process-global, so every test serializes on a lock
//! while it flips backends; the comparisons are only meaningful when the
//! intended backend is actually the one that ran.

use rfd_dsp::kernels::{self, Backend};
use rfd_dsp::rng::Xoshiro256;
use rfd_dsp::Complex32;
use rfd_integration::seeded_cases;
use std::sync::Mutex;

/// Serializes backend flips across the (multi-threaded) test harness.
static LOCK: Mutex<()> = Mutex::new(());

/// Sizes that straddle the 4-lane (SSE2) and 8-lane (AVX2) boundaries plus
/// the striping width (8 for real reductions, 4 complex for conj_dot).
const SIZES: &[usize] = &[
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 255, 256, 257, 1031,
];

/// A finite random f32 with mixed magnitudes: mostly O(1), some exact zeros,
/// some denormals, some large-but-safe values. Never NaN or inf.
fn rand_f32(rng: &mut Xoshiro256) -> f32 {
    let v = rng.next_f32() * 2.0 - 1.0;
    match rng.next_range(8) {
        0 => 0.0,
        1 => v * 1e-41, // denormal territory
        2 => v * 1e3,
        _ => v,
    }
}

fn rand_vec_f32(rng: &mut Xoshiro256, n: usize) -> Vec<f32> {
    (0..n).map(|_| rand_f32(rng)).collect()
}

fn rand_vec_c32(rng: &mut Xoshiro256, n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|_| Complex32::new(rand_f32(rng), rand_f32(rng)))
        .collect()
}

fn c_bits(z: Complex32) -> (u32, u32) {
    (z.re.to_bits(), z.im.to_bits())
}

/// Runs `compute` once under the scalar backend and once under every backend
/// this CPU supports, asserting each result is bit-identical to scalar.
/// `T` carries results already reduced to raw bit patterns.
fn differential<T: PartialEq + std::fmt::Debug>(label: &str, mut compute: impl FnMut() -> T) {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    kernels::set_backend(Backend::Scalar).expect("scalar is always available");
    let reference = compute();
    for &b in kernels::available() {
        kernels::set_backend(b).unwrap();
        let got = compute();
        assert_eq!(
            got, reference,
            "{label}: backend {b} diverges from scalar reference"
        );
    }
}

#[test]
fn scalar_is_always_available_and_settable() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(kernels::is_available(Backend::Scalar));
    assert!(kernels::available().contains(&Backend::Scalar));
    kernels::set_backend(Backend::Scalar).unwrap();
    assert_eq!(kernels::active(), Backend::Scalar);
    for &b in kernels::available() {
        kernels::set_backend(b).unwrap();
        assert_eq!(kernels::active(), b);
    }
}

#[test]
fn sum_sq_and_mean_power_match_scalar_bitwise() {
    seeded_cases(0xD1F0_0001, 40, |rng| {
        for &n in SIZES {
            let xs = rand_vec_f32(rng, n);
            let zs = rand_vec_c32(rng, n);
            differential(&format!("sum_sq_f32 n={n}"), || {
                kernels::sum_sq_f32(&xs).to_bits()
            });
            differential(&format!("mean_power n={n}"), || {
                kernels::mean_power(&zs).to_bits()
            });
        }
    });
}

#[test]
fn dot_f32_matches_scalar_bitwise() {
    seeded_cases(0xD1F0_0002, 40, |rng| {
        for &n in SIZES {
            let a = rand_vec_f32(rng, n);
            let b = rand_vec_f32(rng, n);
            differential(&format!("dot_f32 n={n}"), || {
                kernels::dot_f32(&a, &b).to_bits()
            });
        }
    });
}

#[test]
fn power_into_matches_scalar_bitwise() {
    seeded_cases(0xD1F0_0003, 40, |rng| {
        for &n in SIZES {
            let zs = rand_vec_c32(rng, n);
            differential(&format!("power_into n={n}"), || {
                let mut out = Vec::new();
                kernels::power_into(&zs, &mut out);
                out.iter().map(|p| p.to_bits()).collect::<Vec<u32>>()
            });
        }
    });
}

#[test]
fn fir_dot_matches_scalar_bitwise() {
    // Tap counts around the 4-complex (8-float) vector step, plus real
    // filter sizes used by the decimators.
    for taps in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 16, 41, 63, 64] {
        seeded_cases(0xD1F0_0004 ^ taps as u64, 10, |rng| {
            let window = rand_vec_f32(rng, 2 * taps);
            let taps2 = rand_vec_f32(rng, 2 * taps);
            differential(&format!("fir_dot taps={taps}"), || {
                c_bits(kernels::fir_dot(&window, &taps2))
            });
        });
    }
}

#[test]
fn conj_dot_matches_scalar_bitwise() {
    seeded_cases(0xD1F0_0005, 40, |rng| {
        for &n in SIZES {
            let sig = rand_vec_c32(rng, n);
            let pat = rand_vec_c32(rng, n);
            differential(&format!("conj_dot n={n}"), || {
                c_bits(kernels::conj_dot(&sig, &pat))
            });
        }
    });
}

#[test]
fn conj_mul_adjacent_matches_scalar_bitwise() {
    seeded_cases(0xD1F0_0006, 40, |rng| {
        for &n in SIZES {
            let zs = rand_vec_c32(rng, n);
            differential(&format!("conj_mul_adjacent n={n}"), || {
                let mut out = vec![Complex32::ZERO; zs.len().saturating_sub(1)];
                kernels::conj_mul_adjacent(&zs, &mut out);
                out.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
            });
        }
    });
}

#[test]
fn fft_stage_and_full_fft_match_scalar_bitwise() {
    seeded_cases(0xD1F0_0007, 12, |rng| {
        // Raw butterfly stages at every half width the planner produces.
        for half in [1usize, 2, 3, 4, 5, 8, 16] {
            let blocks = 1 + rng.next_range(4) as usize;
            let mut buf = rand_vec_c32(rng, blocks * 2 * half);
            let tw = rand_vec_c32(rng, half);
            for inverse in [false, true] {
                let orig = buf.clone();
                differential(&format!("fft_stage half={half} inv={inverse}"), || {
                    buf.copy_from_slice(&orig);
                    kernels::fft_stage(&mut buf, half, &tw, inverse);
                    buf.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
                });
            }
        }
        // Whole planned transforms, forward and inverse.
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let fft = rfd_dsp::fft::Fft::new(n);
            let sig = rand_vec_c32(rng, n);
            differential(&format!("fft forward n={n}"), || {
                let mut buf = sig.clone();
                fft.forward(&mut buf);
                buf.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
            });
            differential(&format!("fft inverse n={n}"), || {
                let mut buf = sig.clone();
                fft.inverse(&mut buf);
                buf.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
            });
        }
    });
}

#[test]
fn fir_filter_and_decimator_match_scalar_bitwise() {
    use rfd_dsp::fir::Fir;
    seeded_cases(0xD1F0_0008, 10, |rng| {
        for taps_n in [1usize, 3, 7, 8, 9, 33] {
            let taps = rand_vec_f32(rng, taps_n);
            let input_len = 200 + rng.next_range(100) as usize;
            let input = rand_vec_c32(rng, input_len);
            differential(&format!("Fir::process taps={taps_n}"), || {
                let mut fir = Fir::new(taps.clone());
                let mut out = Vec::new();
                fir.process(&input, &mut out);
                out.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
            });
            differential(&format!("Fir::process_decimate taps={taps_n}"), || {
                let mut fir = Fir::new(taps.clone());
                let mut out = Vec::new();
                let mut phase = 0;
                fir.process_decimate(&input, 3, &mut phase, &mut out);
                out.iter().map(|&z| c_bits(z)).collect::<Vec<_>>()
            });
        }
    });
}

#[test]
fn phase_pipeline_matches_scalar_bitwise() {
    use rfd_dsp::phase::{phase_deriv_stats, phase_diff_abs_into, phase_diff_into};
    seeded_cases(0xD1F0_0009, 10, |rng| {
        // Sizes around the 256-sample conjugate-product block boundary.
        for &n in &[0usize, 1, 2, 3, 255, 256, 257, 511, 513, 1000] {
            let zs = rand_vec_c32(rng, n);
            differential(&format!("phase_diff n={n}"), || {
                let mut out = Vec::new();
                phase_diff_into(&zs, &mut out);
                out.iter().map(|p| p.to_bits()).collect::<Vec<u32>>()
            });
            differential(&format!("phase_diff_abs n={n}"), || {
                let mut out = Vec::new();
                phase_diff_abs_into(&zs, &mut out);
                out.iter().map(|p| p.to_bits()).collect::<Vec<u32>>()
            });
            differential(&format!("phase_deriv_stats n={n}"), || {
                let s = phase_deriv_stats(&zs);
                (s.sum_d1.to_bits(), s.sum_abs_d2.to_bits(), s.count_d2)
            });
            differential(&format!("fm_discriminator n={n}"), || {
                let mut disc = rfd_dsp::phase::FmDiscriminator::new(1.0);
                let mut out = Vec::new();
                // Feed in two chunks to exercise the cross-chunk seam.
                let mid = n / 2;
                disc.process(&zs[..mid], &mut out);
                disc.process(&zs[mid..], &mut out);
                out.iter().map(|p| p.to_bits()).collect::<Vec<u32>>()
            });
        }
    });
}

#[test]
fn xcorr_matches_scalar_bitwise() {
    use rfd_dsp::corr::{normalized_xcorr_real, xcorr_complex};
    seeded_cases(0xD1F0_000A, 10, |rng| {
        for (sig_n, pat_n) in [(40usize, 7usize), (64, 8), (65, 9), (200, 33)] {
            let sig_c = rand_vec_c32(rng, sig_n);
            let pat_c = rand_vec_c32(rng, pat_n);
            differential(&format!("xcorr_complex {sig_n}/{pat_n}"), || {
                xcorr_complex(&sig_c, &pat_c)
                    .iter()
                    .map(|&z| c_bits(z))
                    .collect::<Vec<_>>()
            });
            let sig_r = rand_vec_f32(rng, sig_n);
            let pat_r = rand_vec_f32(rng, pat_n);
            differential(&format!("normalized_xcorr_real {sig_n}/{pat_n}"), || {
                normalized_xcorr_real(&sig_r, &pat_r)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<u32>>()
            });
        }
    });
}

#[test]
fn pure_denormal_slices_are_bit_exact() {
    // A slice that is *entirely* denormal is the harshest flush-to-zero
    // probe: any backend that flushes loses every bit of the result.
    seeded_cases(0xD1F0_000B, 20, |rng| {
        for &n in &[1usize, 7, 8, 9, 31, 33, 257] {
            let xs: Vec<f32> = (0..n)
                .map(|_| (rng.next_f32() * 2.0 - 1.0) * 1e-41)
                .collect();
            let zs: Vec<Complex32> = (0..n)
                .map(|_| {
                    Complex32::new(
                        (rng.next_f32() * 2.0 - 1.0) * 1e-41,
                        (rng.next_f32() * 2.0 - 1.0) * 1e-41,
                    )
                })
                .collect();
            differential(&format!("denormal sum_sq n={n}"), || {
                kernels::sum_sq_f32(&xs).to_bits()
            });
            differential(&format!("denormal conj_dot n={n}"), || {
                c_bits(kernels::conj_dot(&zs, &zs))
            });
            differential(&format!("denormal power n={n}"), || {
                let mut out = Vec::new();
                kernels::power_into(&zs, &mut out);
                out.iter().map(|p| p.to_bits()).collect::<Vec<u32>>()
            });
        }
    });
}
