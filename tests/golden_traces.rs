//! Golden-trace snapshots: three small deterministic i16 I/Q traces
//! committed under `tests/golden/` together with the exact record stream
//! the pipeline must report for each.
//!
//! The `.rfdt` file is the source of truth — the pipeline's input is its
//! decoded (i16-quantized) samples, so the expected output is a property
//! of the committed bytes, not of the simulator that once produced them.
//! Any intentional analysis change regenerates the `.expected` files:
//!
//! ```text
//! RFD_REGEN_GOLDEN=1 cargo test -p rfd-integration --test golden_traces
//! ```
//!
//! (documented in EXPERIMENTS.md; regenerated files show up in `git diff`
//! for review). Missing `.rfdt` files are rendered from fixed seeds on the
//! same regeneration path.

use rfd_mac::{
    merge_schedules, DcfConfig, L2PingConfig, L2PingSim, WifiDcfSim, ZigbeeConfig, ZigbeeSim,
};
use rfdump::arch::{run_architecture, ArchConfig};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden")
}

fn regen() -> bool {
    std::env::var("RFD_REGEN_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Renders one of the three golden scenes. Only used when the `.rfdt`
/// does not exist yet (first generation or deliberate regeneration after
/// deleting it) — a checked-out repo never re-renders.
fn render(name: &str) -> rfd_ether::scene::EtherTrace {
    let events = match name {
        "wifi" => {
            let mut sim = WifiDcfSim::new(DcfConfig {
                seed: 71,
                ..Default::default()
            });
            sim.queue_ping_flow(1, 2, 2, 300, 2_500.0, 0.0);
            sim.run()
        }
        "bluetooth" => {
            // start_clock chosen so 4 of the 6 hops land inside the 8 MHz
            // monitored band (channels 32-39) and the trace stays short.
            let mut sim = L2PingSim::new(L2PingConfig {
                count: 3,
                start_clock: 3824,
                ..Default::default()
            });
            sim.run()
        }
        "zigbee" => {
            let mut sim = ZigbeeSim::new(ZigbeeConfig {
                count: 3,
                interval_us: 2_000.0,
                seed: 73,
                ..Default::default()
            });
            sim.run()
        }
        other => panic!("unknown golden scene {other}"),
    };
    let mut events = merge_schedules(vec![events]);
    // Drop leading silence (a nonzero Bluetooth start_clock schedules its
    // first slot deep into the trace) while preserving 1250 µs slot-pair
    // alignment, which the Bluetooth slot-timing detector keys on.
    let lead = events.iter().map(|e| e.start_us).fold(f64::MAX, f64::min);
    let shift = (lead / 1250.0).floor().max(0.0) * 1250.0;
    for e in &mut events {
        e.start_us -= shift;
    }
    let horizon = events.iter().map(|e| e.end_us()).fold(0.0, f64::max) + 500.0;
    let mut scene = rfd_ether::scene::Scene::new(1e-4, 70);
    let gain = 30.0 + rfd_dsp::energy::power_to_db(1e-4);
    for node in 0..24 {
        scene.set_node(node, gain, (node as f64 - 6.0) * 300.0);
    }
    scene.render(&events, horizon)
}

fn config(name: &str, band: rfd_ether::Band) -> ArchConfig {
    ArchConfig {
        band,
        zigbee: name == "zigbee",
        ..ArchConfig::rfdump(vec![rfd_integration::piconet()])
    }
}

fn check_golden(name: &str) {
    let dir = golden_dir();
    let trace_path = dir.join(format!("{name}.rfdt"));
    let expected_path = dir.join(format!("{name}.expected"));

    if !trace_path.exists() {
        assert!(
            regen(),
            "{} missing — run with RFD_REGEN_GOLDEN=1 to create it",
            trace_path.display()
        );
        std::fs::create_dir_all(&dir).unwrap();
        let t = render(name);
        rfd_ether::trace::write_trace(
            &trace_path,
            t.band.sample_rate,
            t.band.center_hz,
            &t.samples,
        )
        .unwrap();
    }

    let (header, samples) = rfd_ether::trace::read_trace(&trace_path).unwrap();
    let cfg = config(
        name,
        rfd_ether::Band {
            sample_rate: header.sample_rate,
            center_hz: header.center_hz,
        },
    );
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    assert!(
        !out.records.is_empty(),
        "{name}: golden trace produced no records"
    );
    let mut got = out
        .records
        .iter()
        .map(|r| r.format_line())
        .collect::<Vec<_>>()
        .join("\n");
    got.push('\n');

    if regen() {
        // Atomic replace: a Ctrl-C mid-regen must not leave a half-written
        // golden that silently passes (or fails) future comparisons.
        rfd_journal::atomic_write(&expected_path, got.as_bytes()).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}) — run with RFD_REGEN_GOLDEN=1 to create it",
            expected_path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name}: record stream diverged from the golden snapshot; if the\n\
         change is intentional, regenerate with RFD_REGEN_GOLDEN=1 and\n\
         review the diff"
    );
}

#[test]
fn golden_wifi_trace_matches_snapshot() {
    check_golden("wifi");
}

/// Kernel-backend matrix: the committed golden record streams must be
/// byte-identical whichever vectorized DSP backend runs. This pins the
/// bit-exactness contract of `rfd_dsp::kernels` to the full pipeline, not
/// just to the kernel unit tests: scalar is the reference, and SSE2/AVX2
/// (whichever this CPU supports) must reproduce the exact same records.
#[test]
fn golden_record_streams_identical_across_kernel_backends() {
    use rfd_dsp::kernels::{self, Backend};
    if regen() {
        // Regeneration runs concurrently in the snapshot tests; comparing
        // against files mid-rewrite would race.
        return;
    }
    for name in ["wifi", "bluetooth", "zigbee"] {
        let dir = golden_dir();
        let trace_path = dir.join(format!("{name}.rfdt"));
        let expected_path = dir.join(format!("{name}.expected"));
        assert!(
            trace_path.exists(),
            "{} missing — regenerate the goldens first",
            trace_path.display()
        );
        let (header, samples) = rfd_ether::trace::read_trace(&trace_path).unwrap();
        let cfg = config(
            name,
            rfd_ether::Band {
                sample_rate: header.sample_rate,
                center_hz: header.center_hz,
            },
        );
        let want = std::fs::read_to_string(&expected_path).unwrap();
        for &backend in kernels::available() {
            kernels::set_backend(backend).unwrap();
            let out = run_architecture(&cfg, &samples, header.sample_rate);
            let mut got = out
                .records
                .iter()
                .map(|r| r.format_line())
                .collect::<Vec<_>>()
                .join("\n");
            got.push('\n');
            assert_eq!(
                got, want,
                "{name}: {backend} kernels diverged from the golden snapshot"
            );
        }
        // Leave the process on the scalar reference so the snapshot tests
        // (which share this process) keep their historical baseline backend.
        kernels::set_backend(Backend::Scalar).unwrap();
    }
}

#[test]
fn golden_bluetooth_trace_matches_snapshot() {
    check_golden("bluetooth");
}

#[test]
fn golden_zigbee_trace_matches_snapshot() {
    check_golden("zigbee");
}
