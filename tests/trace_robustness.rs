//! Fuzz-style robustness tests for the `.rfdt` trace reader: hostile
//! inputs — truncations at every boundary, odd lengths, bit flips, random
//! bytes, absurd header fields — must produce a structured `io::Error`,
//! never a panic or an unbounded allocation.

use rfd_dsp::Complex32;
use rfd_ether::trace::{decode_trace, encode_trace, read_trace, TraceHeader, MAGIC};
use rfd_integration::{random_bytes, seeded_cases};

fn valid_trace(n: usize) -> Vec<u8> {
    let samples: Vec<Complex32> = (0..n)
        .map(|i| Complex32::new((i as f32 * 0.1).sin(), (i as f32 * 0.07).cos()))
        .collect();
    let header = TraceHeader {
        sample_rate: 8e6,
        center_hz: 4e6,
        n_samples: n as u64,
        scale: 1.0,
    };
    encode_trace(&header, &samples)
}

/// Decoding must return `Ok` or `Err` — any panic unwinds through this
/// and fails the test with the offending input's provenance.
fn must_not_panic(data: &[u8]) -> bool {
    decode_trace(data).is_ok()
}

#[test]
fn truncation_at_every_boundary_is_an_error_not_a_panic() {
    let bytes = valid_trace(64);
    for len in 0..bytes.len() {
        let r = decode_trace(&bytes[..len]);
        assert!(
            r.is_err(),
            "decode of {len}-byte prefix (of {}) should fail",
            bytes.len()
        );
        assert_eq!(r.unwrap_err().kind(), std::io::ErrorKind::InvalidData);
    }
    assert!(decode_trace(&bytes).is_ok());
}

#[test]
fn odd_length_tails_are_rejected_cleanly() {
    // Payloads that are not a multiple of one i16 I/Q pair: a reader that
    // trusts `n_samples` over the byte count must notice, not over-read.
    let bytes = valid_trace(16);
    for cut in 1..8 {
        let r = decode_trace(&bytes[..bytes.len() - cut]);
        assert!(r.is_err(), "short-by-{cut} trace should fail");
    }
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    seeded_cases(0xF022_0001, 300, |rng| {
        let data = random_bytes(rng, 0, 4096);
        must_not_panic(&data);
    });
}

#[test]
fn random_mutations_of_a_valid_trace_never_panic() {
    seeded_cases(0xF022_0002, 300, |rng| {
        let mut bytes = valid_trace(128);
        // Flip a handful of random bytes — headers included.
        for _ in 0..1 + rng.next_range(8) {
            let pos = rng.next_range(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << rng.next_range(8);
        }
        if let Ok((h, s)) = decode_trace(&bytes) {
            // If it still decodes, the result must be self-consistent.
            assert_eq!(h.n_samples as usize, s.len());
            assert!(h.sample_rate.is_finite() && h.sample_rate > 0.0);
            assert!(h.center_hz.is_finite());
            assert!(h.scale.is_finite() && h.scale > 0.0);
        }
    });
}

#[test]
fn random_bytes_behind_a_valid_magic_never_panic() {
    // Force the decoder past the magic check so the header/payload
    // validation paths get fuzzed too.
    seeded_cases(0xF022_0003, 300, |rng| {
        let mut data = MAGIC.to_vec();
        data.extend(random_bytes(rng, 0, 2048));
        if let Ok((h, s)) = decode_trace(&data) {
            assert_eq!(h.n_samples as usize, s.len());
        }
    });
}

#[test]
fn hostile_header_fields_are_rejected() {
    let samples = [Complex32::new(0.5, -0.5); 8];
    let ok = TraceHeader {
        sample_rate: 8e6,
        center_hz: 4e6,
        n_samples: 8,
        scale: 1.0,
    };
    let baseline = encode_trace(&ok, &samples);

    // Patch one header field at a time: [4..8) version, [8..16) rate,
    // [16..24) center, [24..32) n_samples, [32..36) scale.
    let patch = |at: usize, with: &[u8]| {
        let mut b = baseline.clone();
        b[at..at + with.len()].copy_from_slice(with);
        b
    };
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("version 0", patch(4, &0u32.to_le_bytes())),
        ("version 99", patch(4, &99u32.to_le_bytes())),
        ("NaN rate", patch(8, &f64::NAN.to_le_bytes())),
        ("zero rate", patch(8, &0f64.to_le_bytes())),
        ("negative rate", patch(8, &(-8e6f64).to_le_bytes())),
        ("inf center", patch(16, &f64::INFINITY.to_le_bytes())),
        ("NaN center", patch(16, &f64::NAN.to_le_bytes())),
        // A sample count far beyond the payload must fail the length check
        // without attempting a giant allocation.
        ("huge n_samples", patch(24, &u64::MAX.to_le_bytes())),
        ("n_samples + 1", patch(24, &9u64.to_le_bytes())),
        ("NaN scale", patch(32, &f32::NAN.to_le_bytes())),
        ("zero scale", patch(32, &0f32.to_le_bytes())),
    ];
    for (what, bytes) in cases {
        let r = decode_trace(&bytes);
        assert!(r.is_err(), "{what}: decode should fail");
        assert_eq!(
            r.unwrap_err().kind(),
            std::io::ErrorKind::InvalidData,
            "{what}: wrong error kind"
        );
    }
    assert!(decode_trace(&baseline).is_ok(), "baseline must stay valid");
}

#[test]
fn read_trace_reports_missing_files_as_io_errors() {
    let r = read_trace(std::path::Path::new(
        "/nonexistent/definitely/not/here.rfdt",
    ));
    assert!(r.is_err());
    assert_eq!(r.unwrap_err().kind(), std::io::ErrorKind::NotFound);
}
