//! End-to-end tests of the telemetry layer over real pipeline runs: CPU
//! accounting sanity, scheduler-independence of the metrics, histogram
//! quantile ordering, and the `--stats-json` document round-tripping
//! through the in-repo parser.

use rfd_integration::{mixed_trace, piconet};
use rfd_telemetry::Histogram;
use rfdump::arch::{run_architecture, ArchConfig, ArchOutput};
use rfdump::stats::{stats_json, STATS_SCHEMA, STATS_VERSION};

fn run(threaded: bool) -> ArchOutput {
    run_with_workers(threaded, rfdump::arch::default_workers())
}

fn run_with_workers(threaded: bool, workers: usize) -> ArchOutput {
    let trace = mixed_trace(2, 2, 25.0, 42);
    let cfg = ArchConfig {
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        threaded,
        workers,
        ..ArchConfig::rfdump(vec![piconet()])
    };
    run_architecture(&cfg, &trace.samples, trace.band.sample_rate)
}

/// On one thread, summed per-block CPU can never exceed the wall clock.
/// (Pinned to `workers: 0` — with an analysis pool the run is not single
/// threaded, and summed worker CPU may legitimately exceed the wall.)
#[test]
fn single_threaded_cpu_fits_in_wall() {
    let out = run_with_workers(false, 0);
    let cpu = out.stats.total_cpu();
    assert!(
        cpu <= out.stats.wall,
        "total cpu {cpu:?} > wall {:?} on a single thread",
        out.stats.wall
    );
    assert!(cpu.as_nanos() > 0, "pipeline did no accounted work");
}

/// The telemetry counters describe the *signal*, not the scheduler: a
/// threaded run must produce exactly the same counter totals as a
/// single-threaded run of the same trace. (CPU-time counters and the
/// work-stealing pool's per-worker counters are the exceptions — they
/// measure the run itself, and which worker executed or stole a task is
/// timing-dependent by design.)
#[test]
fn counters_are_scheduler_independent() {
    let single = run(false);
    let multi = run(true);
    let s = single.registry.as_ref().unwrap().snapshot();
    let m = multi.registry.as_ref().unwrap().snapshot();
    assert!(
        s.counters.get("peaks.detected").copied().unwrap_or(0) > 0,
        "no peaks detected — trace too quiet for the test to mean anything"
    );
    for (name, &v) in &s.counters {
        if name.ends_with(".cpu_us") || name.starts_with("pool.") {
            continue;
        }
        assert_eq!(
            m.counters.get(name).copied(),
            Some(v),
            "counter {name} differs between schedulers"
        );
    }
    assert_eq!(
        s.counters.keys().collect::<Vec<_>>(),
        m.counters.keys().collect::<Vec<_>>(),
        "counter sets differ between schedulers"
    );
}

/// Quantiles of any recorded histogram are monotone in q.
#[test]
fn histogram_quantiles_are_monotone() {
    // Directly, over an adversarial recording pattern...
    let h = Histogram::exponential(1.0, 1e6, 24);
    for i in 0..1000u64 {
        h.record(((i * 7919) % 999_983) as f64);
    }
    let qs = [0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
    for w in qs.windows(2) {
        assert!(
            h.quantile(w[0]) <= h.quantile(w[1]),
            "q{} > q{}",
            w[0],
            w[1]
        );
    }
    // ...and for every histogram a real pipeline run recorded.
    let out = run(false);
    let snap = out.registry.as_ref().unwrap().snapshot();
    assert!(!snap.histograms.is_empty(), "run recorded no histograms");
    for (name, h) in &snap.histograms {
        assert!(
            h.p50 <= h.p95 && h.p95 <= h.p99,
            "{name}: p50 {} p95 {} p99 {} not monotone",
            h.p50,
            h.p95,
            h.p99
        );
    }
}

/// The stats document survives serialize → parse with its schema, per-block
/// accounting, per-stage ratios, and dispatcher fractions intact.
#[test]
fn stats_json_round_trips_through_parser() {
    let out = run(false);
    let text = stats_json(&out).to_json();
    let doc = rfd_telemetry::json::parse(&text).expect("stats json must parse");

    assert_eq!(doc.get("schema").unwrap().as_str(), Some(STATS_SCHEMA));
    assert_eq!(
        doc.get("version").unwrap().as_f64(),
        Some(STATS_VERSION as f64)
    );

    let trace = doc.get("trace").unwrap();
    assert_eq!(
        trace.get("sample_rate").unwrap().as_f64(),
        Some(out.sample_rate)
    );

    // Per-block rows match the in-memory RunStats.
    let blocks = doc.get("blocks").unwrap().as_arr().unwrap();
    assert_eq!(blocks.len(), out.stats.blocks.len());
    for (row, b) in blocks.iter().zip(&out.stats.blocks) {
        assert_eq!(row.get("name").unwrap().as_str(), Some(b.name.as_str()));
        assert_eq!(
            row.get("items_in").unwrap().as_f64(),
            Some(b.items_in as f64)
        );
    }

    // Every stage named by a block appears in the stages section.
    let stages = doc.get("stages").unwrap();
    for b in &out.stats.blocks {
        let stage = b.name.split(':').next().unwrap();
        assert!(
            stages.get(stage).is_some(),
            "stage {stage} missing from stats"
        );
        let ratio = stages
            .get(stage)
            .unwrap()
            .get("cpu_over_realtime")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(ratio.is_finite() && ratio >= 0.0);
    }

    // RFDump runs carry dispatcher forwarding fractions in [0, 1].
    let dispatch = doc.get("dispatch").unwrap();
    let per_proto = dispatch.get("per_protocol").unwrap().as_obj().unwrap();
    assert!(!per_proto.is_empty(), "dispatcher forwarded nothing");
    for (proto, entry) in per_proto {
        let frac = entry.get("forwarded_fraction").unwrap().as_f64().unwrap();
        assert!(
            (0.0..=1.0).contains(&frac),
            "{proto} forwarded fraction {frac} out of range"
        );
    }

    // The registry sections made it through.
    assert!(doc.get("counters").unwrap().get("peaks.detected").is_some());
}
