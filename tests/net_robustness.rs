//! Fuzz-style robustness tests for the `RFDN` wire-frame codec, mirroring
//! `trace_robustness.rs`: truncations at every boundary, random bytes,
//! random bit flips, corrupt CRCs, bad versions — the decoder must return
//! a structured [`FrameError`] or wait for more bytes, never panic and
//! never allocate from a hostile length field.

use rfd_integration::{random_bytes, seeded_cases};
use rfd_net::frame::{
    encode_frame, payload_crc, Frame, FrameDecoder, FrameError, RecordMsg, Role, SeqFrame,
    StreamMeta, HEADER_LEN, MAX_PAYLOAD,
};

/// One of each frame type, with non-trivial payloads.
fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello(Role::Producer),
        Frame::Hello(Role::Subscriber),
        Frame::StreamMeta(StreamMeta {
            sample_rate: 8e6,
            center_hz: 37e6,
            scale: 1.25,
        }),
        Frame::SampleChunk {
            start_sample: 123_456,
            iq: (0..257).map(|i| (i as i16, -(i as i16))).collect(),
        },
        Frame::Record(RecordMsg {
            start_us: 1.5,
            end_us: 99.25,
            line: "0001.500 802.11 ch 6 snr 21.0 seq 7".into(),
        }),
        Frame::Stats("{\"schema\":\"rfd-stats\"}".into()),
        Frame::Heartbeat,
        Frame::Throttle { depth: 64, cap: 64 },
        Frame::SourceHello {
            source: "usrp-roof.2".into(),
            meta: StreamMeta {
                sample_rate: 8e6,
                center_hz: 2.437e9,
                scale: 0.75,
            },
        },
        Frame::SourceRecord {
            source: "usrp-roof.2".into(),
            record: RecordMsg {
                start_us: 12.5,
                end_us: 640.0,
                line: "0012.500 bluetooth slot 3".into(),
            },
        },
        Frame::SourceBye {
            source: "usrp-roof.2".into(),
        },
        Frame::Bye,
    ]
}

/// A raw frame with an arbitrary (possibly malformed) payload behind a
/// valid header and CRC, so payload parsing itself gets exercised.
fn raw_frame(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(rfd_net::frame::MAGIC);
    bytes.push(rfd_net::frame::VERSION);
    bytes.push(ty);
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload_crc(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (seq, f) in frames.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(f, seq as u32));
    }
    bytes
}

fn decode_all(bytes: &[u8]) -> Result<Vec<SeqFrame>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    let mut out = Vec::new();
    while let Some(sf) = dec.next_frame()? {
        out.push(sf);
    }
    Ok(out)
}

#[test]
fn every_frame_type_round_trips_through_a_byte_stream() {
    let frames = sample_frames();
    let decoded = decode_all(&encode_stream(&frames)).unwrap();
    assert_eq!(decoded.len(), frames.len());
    for (i, (sf, f)) in decoded.iter().zip(frames.iter()).enumerate() {
        assert_eq!(sf.seq, i as u32);
        assert_eq!(&sf.frame, f, "frame {i}");
    }
}

#[test]
fn truncation_at_every_boundary_waits_never_panics() {
    // A streaming decoder treats a truncated tail as "not yet arrived":
    // every prefix must yield exactly the complete frames it contains and
    // then Ok(None), with no error and no panic.
    let frames = sample_frames();
    let bytes = encode_stream(&frames);
    // Frame boundaries, to know how many complete frames a prefix holds.
    let mut boundaries = vec![0usize];
    for f in &frames {
        boundaries.push(boundaries.last().unwrap() + encode_frame(f, 0).len());
    }
    for len in 0..bytes.len() {
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= len).count();
        let got = decode_all(&bytes[..len]).unwrap_or_else(|e| {
            panic!("{len}-byte prefix must not error (got {e})");
        });
        assert_eq!(got.len(), complete, "{len}-byte prefix");
    }
}

#[test]
fn byte_at_a_time_feeding_matches_bulk_decode() {
    let frames = sample_frames();
    let bytes = encode_stream(&frames);
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    for b in &bytes {
        dec.push(std::slice::from_ref(b));
        while let Some(sf) = dec.next_frame().unwrap() {
            got.push(sf.frame);
        }
    }
    assert_eq!(got, frames);
}

#[test]
fn corrupt_crc_is_a_sticky_error() {
    let f = Frame::Stats("hello".into());
    let mut bytes = encode_frame(&f, 0);
    *bytes.last_mut().unwrap() ^= 0x40; // flip a payload bit
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    // Poisoned: a following pristine frame must NOT decode — after CRC
    // failure resynchronization cannot be trusted.
    dec.push(&encode_frame(&Frame::Heartbeat, 1));
    assert!(dec.next_frame().is_err());
}

#[test]
fn bad_version_and_bad_magic_are_rejected() {
    let good = encode_frame(&Frame::Heartbeat, 0);
    let mut bad_ver = good.clone();
    bad_ver[4] = 99;
    assert!(matches!(
        decode_all(&bad_ver),
        Err(FrameError::BadVersion(99))
    ));
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(decode_all(&bad_magic), Err(FrameError::BadMagic)));
}

#[test]
fn hostile_length_field_is_rejected_before_allocation() {
    // Declare a payload far beyond MAX_PAYLOAD: the decoder must reject on
    // the header alone (buffered bytes stay tiny) instead of reserving
    // gigabytes for a payload that will never arrive.
    let mut bytes = encode_frame(&Frame::Heartbeat, 0);
    bytes[12..16].copy_from_slice(&(u32::MAX).to_le_bytes());
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::Oversized(n)) if n as usize > MAX_PAYLOAD
    ));
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    seeded_cases(0xF0AA_0001, 300, |rng| {
        let data = random_bytes(rng, 0, 4096);
        let _ = decode_all(&data);
    });
}

#[test]
fn random_mutations_of_a_valid_stream_never_panic() {
    seeded_cases(0xF0AA_0002, 300, |rng| {
        let mut bytes = encode_stream(&sample_frames());
        for _ in 0..1 + rng.next_range(8) {
            let pos = rng.next_range(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << rng.next_range(8);
        }
        if let Ok(frames) = decode_all(&bytes) {
            // Still decodable: every surviving frame must be well formed
            // (validated metas, consistent chunks).
            for sf in frames {
                if let Frame::StreamMeta(m) = &sf.frame {
                    assert!(m.validate().is_ok());
                }
            }
        }
    });
}

#[test]
fn random_bytes_behind_a_valid_header_prefix_never_panic() {
    // Force the decoder past the magic/version checks so payload parsing
    // gets fuzzed too: a valid header for a random-length payload, then
    // garbage (the CRC check catches essentially all of it; the point is
    // no panic on any path).
    seeded_cases(0xF0AA_0003, 300, |rng| {
        let payload = random_bytes(rng, 0, 2048);
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(rfd_net::frame::MAGIC);
        bytes.push(rfd_net::frame::VERSION);
        bytes.push(rng.next_range(16) as u8); // type, valid or not
        bytes.extend_from_slice(&0u16.to_le_bytes()); // flags
        bytes.extend_from_slice(&7u32.to_le_bytes()); // seq
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = if rng.next_range(2) == 0 {
            payload_crc(&payload) // valid CRC: exercise payload parsing
        } else {
            rng.next_range(u64::from(u32::MAX)) as u32
        };
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = decode_all(&bytes);
    });
}

#[test]
fn malformed_source_ids_never_decode_and_never_panic() {
    // Hostile id payloads for all three source-tagged frame types: empty,
    // zero-length id, id length past the payload end, invalid characters,
    // non-UTF-8 bytes, and an id longer than MAX_SOURCE_ID. Each must
    // yield a structured error (or, for a length pointing past the end,
    // at minimum not a bogus frame), never a panic and never an
    // allocation driven by the hostile length byte.
    let mut hostiles: Vec<Vec<u8>> = vec![
        vec![],
        vec![0],
        vec![5, b'a', b'b'],
        vec![3, b'a', b' ', b'b'],
        vec![4, 0xFF, 0xFE, 0xFF, 0xFE],
    ];
    let mut oversized = vec![(rfd_net::MAX_SOURCE_ID + 1) as u8];
    oversized.extend(std::iter::repeat_n(b'x', rfd_net::MAX_SOURCE_ID + 1));
    hostiles.push(oversized);
    // A valid id but nothing after it (SourceHello needs a meta too).
    hostiles.push(vec![4, b'r', b'o', b'o', b'f']);
    for ty in [10u8, 11, 12] {
        for payload in &hostiles {
            let bytes = raw_frame(ty, payload);
            // SourceBye with exactly a valid id is a valid frame; every
            // other hostile payload must be rejected.
            if let Ok(frames) = decode_all(&bytes) {
                for sf in frames {
                    match &sf.frame {
                        Frame::SourceHello { source, .. }
                        | Frame::SourceRecord { source, .. }
                        | Frame::SourceBye { source } => {
                            assert!(rfd_net::validate_source_id(source).is_ok())
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

#[test]
fn fuzzed_source_id_payloads_never_panic() {
    seeded_cases(0xF0AA_0004, 300, |rng| {
        let ty = 10 + rng.next_range(3) as u8;
        let mut payload = random_bytes(rng, 0, 512);
        if !payload.is_empty() && rng.next_range(2) == 0 {
            // Half the cases: make the declared id length wildly wrong.
            payload[0] = rng.next_range(256) as u8;
        }
        let _ = decode_all(&raw_frame(ty, &payload));
    });
}

/// A factory of trivial pipelines for server-level robustness tests.
fn stub_factory() -> rfd_net::PipelineFactory {
    Box::new(|_source: &str| {
        Box::new(|_meta: &StreamMeta, samples: Vec<rfd_dsp::Complex32>| {
            vec![RecordMsg {
                start_us: 0.0,
                end_us: 1.0,
                line: format!("session of {} samples", samples.len()),
            }]
        })
    })
}

/// Polls `cond` for up to 5 s; panics with `what` on timeout.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !cond() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

#[test]
fn duplicate_source_handshake_on_one_connection_is_dropped_not_fatal() {
    use std::io::Write;
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig {
            // Zero grace: the violating connection's source finalizes at
            // once instead of parking for a resume that never comes.
            resume_grace: std::time::Duration::ZERO,
            ..Default::default()
        },
        stub_factory(),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());

    let meta = StreamMeta {
        sample_rate: 8e6,
        center_hz: 0.0,
        scale: 1.0,
    };
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
        .unwrap();
    s.write_all(&encode_frame(
        &Frame::SourceHello {
            source: "twice".into(),
            meta,
        },
        1,
    ))
    .unwrap();
    // A second handshake on the same connection is a protocol violation:
    // the connection must be dropped, the server must keep running.
    s.write_all(&encode_frame(
        &Frame::SourceHello {
            source: "twice".into(),
            meta,
        },
        2,
    ))
    .unwrap();
    wait_for("duplicate handshake counted as a decode error", || {
        handle.stats().net.decode_errors >= 1
    });
    let snap = handle.stats();
    assert_eq!(snap.sources_joined, 1);
    // The server survives: a well-formed producer still completes.
    let mut tx = rfd_net::TraceSender::connect_source(addr, "after").unwrap();
    tx.send_samples(
        meta,
        &(0..256)
            .map(|i| rfd_dsp::Complex32::new(i as f32 * 1e-3, 0.0))
            .collect::<Vec<_>>(),
        rfd_net::SendRate::Max,
        128,
    )
    .unwrap();
    tx.finish().unwrap();
    wait_for("post-violation source completes", || {
        handle.stats().sources_done >= 2
    });
    handle.shutdown();
    let snap = run.join().unwrap();
    assert_eq!(snap.sources_joined, 2);
    assert!(snap.net.decode_errors >= 1);
}

#[test]
fn tagged_frames_without_a_handshake_are_dropped_not_fatal() {
    use std::io::Write;
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig::default(),
        stub_factory(),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());

    // A producer that skips SourceHello and fires a chunk, and another
    // that sends a record tagged with a source the server never saw: both
    // are protocol violations, both must be dropped without registering a
    // source and without panicking the readiness loop.
    let mut chunker = std::net::TcpStream::connect(addr).unwrap();
    chunker
        .write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
        .unwrap();
    chunker
        .write_all(&encode_frame(
            &Frame::SampleChunk {
                start_sample: 0,
                iq: vec![(1, -1); 64],
            },
            1,
        ))
        .unwrap();
    let mut tagger = std::net::TcpStream::connect(addr).unwrap();
    tagger
        .write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
        .unwrap();
    tagger
        .write_all(&encode_frame(
            &Frame::SourceRecord {
                source: "ghost".into(),
                record: RecordMsg {
                    start_us: 0.0,
                    end_us: 1.0,
                    line: "spoofed".into(),
                },
            },
            1,
        ))
        .unwrap();
    wait_for("both violations counted as decode errors", || {
        handle.stats().net.decode_errors >= 2
    });
    let snap = handle.stats();
    assert_eq!(snap.sources_joined, 0);
    assert_eq!(snap.per_source.len(), 0);
    handle.shutdown();
    run.join().unwrap();
}

#[test]
fn fuzzed_resume_handshakes_never_kill_the_fleet_server() {
    use std::io::Write;
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig {
            resume_grace: std::time::Duration::from_secs(30),
            ..Default::default()
        },
        stub_factory(),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());
    let meta = StreamMeta {
        sample_rate: 8e6,
        center_hz: 0.0,
        scale: 1.0,
    };

    // One source completes cleanly first, so fuzzed claims of its id also
    // exercise the "already done" refusal path.
    let samples: Vec<rfd_dsp::Complex32> = vec![rfd_dsp::Complex32::new(1e-3, 0.0); 256];
    let mut tx = rfd_net::TraceSender::connect_source(addr, "landed").unwrap();
    tx.send_samples(meta, &samples, rfd_net::SendRate::Max, 128)
        .unwrap();
    tx.finish().unwrap();
    wait_for("first source done", || handle.stats().sources_done >= 1);

    // Hostile resume handshakes: replayed hellos, garbage session ids,
    // advisory positions far beyond any stream end, connections that die
    // mid-handshake. None may panic or wedge the readiness loop.
    seeded_cases(0xF0AA_0005, 25, |rng| {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let mut seq = 0u32;
        let send = |s: &mut std::net::TcpStream, f: &Frame, seq: &mut u32| {
            let _ = s.write_all(&encode_frame(f, *seq));
            *seq += 1;
        };
        send(&mut s, &Frame::Hello(Role::Producer), &mut seq);
        let name = match rng.next_range(3) {
            0 => "landed",
            1 => "fuzz-a",
            _ => "fuzz-b",
        };
        send(
            &mut s,
            &Frame::SourceHello {
                source: name.into(),
                meta,
            },
            &mut seq,
        );
        if rng.next_bool(0.3) {
            // Replayed hello on the same connection (protocol violation).
            send(
                &mut s,
                &Frame::SourceHello {
                    source: name.into(),
                    meta,
                },
                &mut seq,
            );
        }
        for _ in 0..rng.next_range(3) {
            let position = match rng.next_range(3) {
                0 => u64::MAX,
                1 => rng.next_u64(),
                _ => 0,
            };
            send(
                &mut s,
                &Frame::Resume {
                    session: rng.next_u64(),
                    position,
                },
                &mut seq,
            );
        }
        if rng.next_bool(0.5) {
            send(
                &mut s,
                &Frame::SampleChunk {
                    start_sample: rng.next_range(1 << 20),
                    iq: vec![(1, -1); 64],
                },
                &mut seq,
            );
        }
        if rng.next_bool(0.5) {
            send(&mut s, &Frame::Bye, &mut seq);
        }
        drop(s);
    });

    // The loop survived the fuzz: a clean source still completes.
    let before = handle.stats().sources_done;
    let mut tx = rfd_net::TraceSender::connect_source(addr, "after-fuzz").unwrap();
    tx.send_samples(meta, &samples, rfd_net::SendRate::Max, 128)
        .unwrap();
    tx.finish().unwrap();
    wait_for("post-fuzz source completes", || {
        handle.stats().sources_done > before
    });
    handle.shutdown();
    run.join().unwrap();
}

#[test]
fn resume_position_beyond_stream_end_is_overridden_by_the_server_ack() {
    use std::io::{Read, Write};
    let server = rfd_net::FleetServer::bind(
        "127.0.0.1:0",
        rfd_net::FleetConfig {
            resume_grace: std::time::Duration::from_secs(30),
            ..Default::default()
        },
        stub_factory(),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run().unwrap());
    let meta = StreamMeta {
        sample_rate: 8e6,
        center_hz: 0.0,
        scale: 1.0,
    };

    // First incarnation: handshake, one 256-sample chunk, die without Bye.
    let mut a = std::net::TcpStream::connect(addr).unwrap();
    a.write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
        .unwrap();
    a.write_all(&encode_frame(
        &Frame::SourceHello {
            source: "det".into(),
            meta,
        },
        1,
    ))
    .unwrap();
    a.write_all(&encode_frame(
        &Frame::SampleChunk {
            start_sample: 0,
            iq: vec![(100, -100); 256],
        },
        2,
    ))
    .unwrap();
    wait_for("first chunk ingested", || {
        handle
            .stats()
            .per_source
            .iter()
            .any(|s| s.source == "det" && s.samples_in == 256)
    });
    drop(a);
    wait_for("source parked", || handle.stats().net.sessions_parked >= 1);

    // Second incarnation claims a position far beyond the stream end. The
    // server's ack is authoritative: it must answer with its own durable
    // position (256), not the client's fantasy.
    let mut b = std::net::TcpStream::connect(addr).unwrap();
    b.write_all(&encode_frame(&Frame::Hello(Role::Producer), 0))
        .unwrap();
    b.write_all(&encode_frame(
        &Frame::SourceHello {
            source: "det".into(),
            meta,
        },
        1,
    ))
    .unwrap();
    b.write_all(&encode_frame(
        &Frame::Resume {
            session: 424242,
            position: u64::MAX,
        },
        2,
    ))
    .unwrap();
    b.set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let acked = 'ack: loop {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for the resume ack"
        );
        match b.read(&mut buf) {
            Ok(0) => panic!("server closed the resumed connection"),
            Ok(n) => {
                dec.push(&buf[..n]);
                while let Some(sf) = dec.next_frame().unwrap() {
                    if let Frame::Ack { position, .. } = sf.frame {
                        break 'ack position;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read failed: {e}"),
        }
    };
    assert_eq!(acked, 256, "ack must carry the server's position");

    // Continue from the acked position and finish cleanly.
    b.write_all(&encode_frame(
        &Frame::SampleChunk {
            start_sample: 256,
            iq: vec![(100, -100); 256],
        },
        3,
    ))
    .unwrap();
    b.write_all(&encode_frame(&Frame::Bye, 4)).unwrap();
    wait_for("resumed source completes", || {
        handle.stats().sources_done >= 1
    });
    let snap = handle.stats();
    let det = snap.per_source.iter().find(|s| s.source == "det").unwrap();
    assert_eq!(det.samples_in, 512);
    assert_eq!(det.resumes, 1);
    handle.shutdown();
    run.join().unwrap();
}

#[test]
fn stream_meta_rejects_hostile_fields_end_to_end() {
    for meta in [
        StreamMeta {
            sample_rate: f64::NAN,
            center_hz: 0.0,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: -8e6,
            center_hz: 0.0,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: 8e6,
            center_hz: f64::INFINITY,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: 8e6,
            center_hz: 0.0,
            scale: 0.0,
        },
    ] {
        let bytes = encode_frame(&Frame::StreamMeta(meta), 0);
        assert!(
            decode_all(&bytes).is_err(),
            "hostile meta {meta:?} must not decode"
        );
    }
}
