//! Fuzz-style robustness tests for the `RFDN` wire-frame codec, mirroring
//! `trace_robustness.rs`: truncations at every boundary, random bytes,
//! random bit flips, corrupt CRCs, bad versions — the decoder must return
//! a structured [`FrameError`] or wait for more bytes, never panic and
//! never allocate from a hostile length field.

use rfd_integration::{random_bytes, seeded_cases};
use rfd_net::frame::{
    encode_frame, payload_crc, Frame, FrameDecoder, FrameError, RecordMsg, Role, SeqFrame,
    StreamMeta, HEADER_LEN, MAX_PAYLOAD,
};

/// One of each frame type, with non-trivial payloads.
fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello(Role::Producer),
        Frame::Hello(Role::Subscriber),
        Frame::StreamMeta(StreamMeta {
            sample_rate: 8e6,
            center_hz: 37e6,
            scale: 1.25,
        }),
        Frame::SampleChunk {
            start_sample: 123_456,
            iq: (0..257).map(|i| (i as i16, -(i as i16))).collect(),
        },
        Frame::Record(RecordMsg {
            start_us: 1.5,
            end_us: 99.25,
            line: "0001.500 802.11 ch 6 snr 21.0 seq 7".into(),
        }),
        Frame::Stats("{\"schema\":\"rfd-stats\"}".into()),
        Frame::Heartbeat,
        Frame::Throttle { depth: 64, cap: 64 },
        Frame::Bye,
    ]
}

fn encode_stream(frames: &[Frame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (seq, f) in frames.iter().enumerate() {
        bytes.extend_from_slice(&encode_frame(f, seq as u32));
    }
    bytes
}

fn decode_all(bytes: &[u8]) -> Result<Vec<SeqFrame>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.push(bytes);
    let mut out = Vec::new();
    while let Some(sf) = dec.next_frame()? {
        out.push(sf);
    }
    Ok(out)
}

#[test]
fn every_frame_type_round_trips_through_a_byte_stream() {
    let frames = sample_frames();
    let decoded = decode_all(&encode_stream(&frames)).unwrap();
    assert_eq!(decoded.len(), frames.len());
    for (i, (sf, f)) in decoded.iter().zip(frames.iter()).enumerate() {
        assert_eq!(sf.seq, i as u32);
        assert_eq!(&sf.frame, f, "frame {i}");
    }
}

#[test]
fn truncation_at_every_boundary_waits_never_panics() {
    // A streaming decoder treats a truncated tail as "not yet arrived":
    // every prefix must yield exactly the complete frames it contains and
    // then Ok(None), with no error and no panic.
    let frames = sample_frames();
    let bytes = encode_stream(&frames);
    // Frame boundaries, to know how many complete frames a prefix holds.
    let mut boundaries = vec![0usize];
    for f in &frames {
        boundaries.push(boundaries.last().unwrap() + encode_frame(f, 0).len());
    }
    for len in 0..bytes.len() {
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= len).count();
        let got = decode_all(&bytes[..len]).unwrap_or_else(|e| {
            panic!("{len}-byte prefix must not error (got {e})");
        });
        assert_eq!(got.len(), complete, "{len}-byte prefix");
    }
}

#[test]
fn byte_at_a_time_feeding_matches_bulk_decode() {
    let frames = sample_frames();
    let bytes = encode_stream(&frames);
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    for b in &bytes {
        dec.push(std::slice::from_ref(b));
        while let Some(sf) = dec.next_frame().unwrap() {
            got.push(sf.frame);
        }
    }
    assert_eq!(got, frames);
}

#[test]
fn corrupt_crc_is_a_sticky_error() {
    let f = Frame::Stats("hello".into());
    let mut bytes = encode_frame(&f, 0);
    *bytes.last_mut().unwrap() ^= 0x40; // flip a payload bit
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    // Poisoned: a following pristine frame must NOT decode — after CRC
    // failure resynchronization cannot be trusted.
    dec.push(&encode_frame(&Frame::Heartbeat, 1));
    assert!(dec.next_frame().is_err());
}

#[test]
fn bad_version_and_bad_magic_are_rejected() {
    let good = encode_frame(&Frame::Heartbeat, 0);
    let mut bad_ver = good.clone();
    bad_ver[4] = 99;
    assert!(matches!(
        decode_all(&bad_ver),
        Err(FrameError::BadVersion(99))
    ));
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(decode_all(&bad_magic), Err(FrameError::BadMagic)));
}

#[test]
fn hostile_length_field_is_rejected_before_allocation() {
    // Declare a payload far beyond MAX_PAYLOAD: the decoder must reject on
    // the header alone (buffered bytes stay tiny) instead of reserving
    // gigabytes for a payload that will never arrive.
    let mut bytes = encode_frame(&Frame::Heartbeat, 0);
    bytes[12..16].copy_from_slice(&(u32::MAX).to_le_bytes());
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::Oversized(n)) if n as usize > MAX_PAYLOAD
    ));
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    seeded_cases(0xF0AA_0001, 300, |rng| {
        let data = random_bytes(rng, 0, 4096);
        let _ = decode_all(&data);
    });
}

#[test]
fn random_mutations_of_a_valid_stream_never_panic() {
    seeded_cases(0xF0AA_0002, 300, |rng| {
        let mut bytes = encode_stream(&sample_frames());
        for _ in 0..1 + rng.next_range(8) {
            let pos = rng.next_range(bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << rng.next_range(8);
        }
        if let Ok(frames) = decode_all(&bytes) {
            // Still decodable: every surviving frame must be well formed
            // (validated metas, consistent chunks).
            for sf in frames {
                if let Frame::StreamMeta(m) = &sf.frame {
                    assert!(m.validate().is_ok());
                }
            }
        }
    });
}

#[test]
fn random_bytes_behind_a_valid_header_prefix_never_panic() {
    // Force the decoder past the magic/version checks so payload parsing
    // gets fuzzed too: a valid header for a random-length payload, then
    // garbage (the CRC check catches essentially all of it; the point is
    // no panic on any path).
    seeded_cases(0xF0AA_0003, 300, |rng| {
        let payload = random_bytes(rng, 0, 2048);
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(rfd_net::frame::MAGIC);
        bytes.push(rfd_net::frame::VERSION);
        bytes.push(rng.next_range(16) as u8); // type, valid or not
        bytes.extend_from_slice(&0u16.to_le_bytes()); // flags
        bytes.extend_from_slice(&7u32.to_le_bytes()); // seq
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = if rng.next_range(2) == 0 {
            payload_crc(&payload) // valid CRC: exercise payload parsing
        } else {
            rng.next_range(u64::from(u32::MAX)) as u32
        };
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let _ = decode_all(&bytes);
    });
}

#[test]
fn stream_meta_rejects_hostile_fields_end_to_end() {
    for meta in [
        StreamMeta {
            sample_rate: f64::NAN,
            center_hz: 0.0,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: -8e6,
            center_hz: 0.0,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: 8e6,
            center_hz: f64::INFINITY,
            scale: 1.0,
        },
        StreamMeta {
            sample_rate: 8e6,
            center_hz: 0.0,
            scale: 0.0,
        },
    ] {
        let bytes = encode_frame(&Frame::StreamMeta(meta), 0);
        assert!(
            decode_all(&bytes).is_err(),
            "hostile meta {meta:?} must not decode"
        );
    }
}
