//! Randomized-case tests of the monitoring pipeline's invariants: peak
//! detection geometry, dispatcher bookkeeping, trace-format round trips,
//! coding-layer guarantees. Each test sweeps deterministic seeded cases via
//! [`rfd_integration::seeded_cases`], so every failure reproduces exactly.

use rfd_dsp::coding::{
    bits_to_bytes_lsb, bytes_to_bits_lsb, hamming1510_decode, hamming1510_encode, repeat3_decode,
    repeat3_encode, Crc, Scrambler, Whitener,
};
use rfd_dsp::rng::GaussianGen;
use rfd_dsp::Complex32;
use rfd_integration::{random_bytes, seeded_cases};
use rfdump::peak::{detect_peaks, PeakDetectorConfig};

fn bursty(n: usize, bursts: &[(usize, usize)], noise: f32, seed: u64) -> Vec<Complex32> {
    let mut sig = vec![Complex32::ZERO; n];
    for &(s, l) in bursts {
        for (i, z) in sig.iter_mut().enumerate().take((s + l).min(n)).skip(s) {
            *z = Complex32::cis(i as f32 * 0.7);
        }
    }
    GaussianGen::new(seed).add_awgn(&mut sig, noise);
    sig
}

/// Peaks are ordered, non-overlapping, and cover every strong burst.
#[test]
fn peak_detector_invariants() {
    seeded_cases(0x5EED_0001, 32, |rng| {
        let n_bursts = 1 + rng.next_range(4) as usize;
        let lens: Vec<usize> = (0..5)
            .map(|_| 400 + rng.next_range(3_600) as usize)
            .collect();
        let mut bursts = Vec::new();
        let mut pos = 3_000usize;
        for i in 0..n_bursts {
            let gap = 2_000 + rng.next_range(18_000) as usize;
            bursts.push((pos, lens[i % lens.len()]));
            pos += lens[i % lens.len()] + gap;
        }
        let n = pos + 3_000;
        let sig = bursty(n, &bursts, 1e-4, rng.next_range(500));
        let peaks = detect_peaks(
            &sig,
            8e6,
            PeakDetectorConfig {
                noise_floor: Some(1e-4),
                ..Default::default()
            },
        );
        // One peak per burst.
        assert_eq!(peaks.len(), bursts.len());
        // Ordered and non-overlapping, ids increasing.
        for w in peaks.windows(2) {
            assert!(w[0].peak.end <= w[1].peak.start);
            assert!(w[0].peak.id < w[1].peak.id);
        }
        // Each burst covered with tight edges.
        for ((s, l), pb) in bursts.iter().zip(peaks.iter()) {
            let p = pb.peak;
            assert!(
                (p.start as i64 - *s as i64).abs() <= 30,
                "start {} vs {}",
                p.start,
                s
            );
            assert!(
                (p.end as i64 - (*s + *l) as i64).abs() <= 60,
                "end {} vs {}",
                p.end,
                s + l
            );
            // PeakBlock samples must match the original stream.
            let a = (p.start - pb.sample_start) as usize;
            for k in (0..(p.len() as usize)).step_by(97) {
                assert_eq!(pb.samples[a + k], sig[p.start as usize + k]);
            }
        }
    });
}

/// The fused energy→peak-gate pass must be a pure refactoring of the
/// unfused reference: identical peaks (indices, powers, samples — bit for
/// bit) for every chunking of the stream, including adversarial chunk sizes
/// of 1, lane−1, lane, lane+1 and full-size chunks, under every SIMD
/// backend this CPU supports. `push_chunk_unfused` is the pre-fusion
/// detector loop kept verbatim as the differential oracle.
#[test]
fn fused_peak_detector_matches_unfused_reference() {
    use rfd_dsp::kernels::{self, Backend};
    use rfdump::chunk::{PeakBlock, SampleChunk};
    use rfdump::peak::PeakDetector;
    use std::sync::Arc;

    // Chunk sizes straddling the 4- and 8-lane boundaries, plus big chunks
    // so the strided hot-scan path runs too.
    const CHUNK_SIZES: &[usize] = &[1, 3, 7, 8, 9, 15, 16, 17, 1024, 8192];

    fn run_detector(
        chunks: &[SampleChunk],
        cfg: PeakDetectorConfig,
        fused: bool,
    ) -> Vec<PeakBlock> {
        let mut det = PeakDetector::new(cfg, 8e6);
        let mut out = Vec::new();
        for c in chunks {
            if fused {
                det.push_chunk(c, &mut out);
            } else {
                det.push_chunk_unfused(c, &mut out);
            }
        }
        det.finish(&mut out);
        out
    }

    fn assert_same_peaks(label: &str, got: &[PeakBlock], want: &[PeakBlock]) {
        assert_eq!(got.len(), want.len(), "{label}: peak count diverged");
        for (a, b) in got.iter().zip(want.iter()) {
            assert_eq!(a.peak.id, b.peak.id, "{label}: id");
            assert_eq!(a.peak.start, b.peak.start, "{label}: start");
            assert_eq!(a.peak.end, b.peak.end, "{label}: end");
            assert_eq!(
                a.peak.mean_power.to_bits(),
                b.peak.mean_power.to_bits(),
                "{label}: mean_power {} vs {}",
                a.peak.mean_power,
                b.peak.mean_power
            );
            assert_eq!(
                a.peak.noise_floor.to_bits(),
                b.peak.noise_floor.to_bits(),
                "{label}: noise_floor"
            );
            assert_eq!(a.sample_start, b.sample_start, "{label}: sample_start");
            assert_eq!(
                a.samples.len(),
                b.samples.len(),
                "{label}: sample window length"
            );
            for (i, (x, y)) in a.samples.iter().zip(b.samples.iter()).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{label}: sample {i} diverged: {x} vs {y}"
                );
            }
        }
    }

    seeded_cases(0x5EED_0008, 12, |rng| {
        let n_bursts = 1 + rng.next_range(3) as usize;
        let mut bursts = Vec::new();
        let mut pos = 3_000usize;
        for _ in 0..n_bursts {
            let len = 300 + rng.next_range(2_500) as usize;
            bursts.push((pos, len));
            pos += len + 2_000 + rng.next_range(10_000) as usize;
        }
        let n = pos + 3_000;
        let sig = bursty(n, &bursts, 1e-4, rng.next_range(500));

        // Slice the stream into adversarially-sized contiguous chunks.
        let mut chunks = Vec::new();
        let (mut at, mut seq) = (0usize, 0u64);
        while at < n {
            let want = CHUNK_SIZES[rng.next_range(CHUNK_SIZES.len() as u64) as usize];
            let take = want.min(n - at);
            chunks.push(SampleChunk {
                seq,
                start: at as u64,
                samples: Arc::new(sig[at..at + take].to_vec()),
                sample_rate: 8e6,
                ingest: None,
            });
            seq += 1;
            at += take;
        }

        let cfg = PeakDetectorConfig {
            noise_floor: Some(1e-4),
            ..Default::default()
        };
        let reference = run_detector(&chunks, cfg, false);
        assert_eq!(
            reference.len(),
            bursts.len(),
            "unfused reference must see every burst"
        );
        for &backend in kernels::available() {
            kernels::set_backend(backend).unwrap();
            let fused = run_detector(&chunks, cfg, true);
            assert_same_peaks(&format!("fused[{backend}] vs unfused"), &fused, &reference);
        }
        kernels::set_backend(Backend::Scalar).unwrap();
    });
}

/// CRC engines detect every 1- and 2-bit error.
#[test]
fn crc_detects_small_errors() {
    seeded_cases(0x5EED_0002, 96, |rng| {
        let data = random_bytes(rng, 4, 64);
        let crc = [Crc::crc32_ieee(), Crc::crc16_x25(), Crc::crc16_802154()]
            [rng.next_range(3) as usize]
            .clone();
        let good = crc.compute(&data);
        let nbits = data.len() * 8;
        let b1 = rng.next_range(nbits as u64) as usize;
        let b2 = rng.next_range(nbits as u64) as usize;
        let mut bad = data.clone();
        bad[b1 / 8] ^= 1 << (b1 % 8);
        assert_ne!(crc.compute(&bad), good, "single-bit error missed");
        if b2 != b1 {
            bad[b2 / 8] ^= 1 << (b2 % 8);
            assert_ne!(crc.compute(&bad), good, "double-bit error missed");
        }
    });
}

/// Scrambler/descrambler and whitener are exact inverses; bit<->byte
/// packing round-trips.
#[test]
fn coding_round_trips() {
    seeded_cases(0x5EED_0003, 64, |rng| {
        let data = random_bytes(rng, 1, 128);
        let seed = (rng.next_range(0x80)) as u8;
        let clk = rng.next_range(64) as u32;

        let bits = bytes_to_bits_lsb(&data);
        assert_eq!(bits_to_bytes_lsb(&bits), data);

        let tx = Scrambler::new(seed).scramble(&bits);
        assert_eq!(Scrambler::new(seed).descramble(&tx), bits);

        let mut w = bits.clone();
        Whitener::for_bt_clock(clk).apply(&mut w);
        Whitener::for_bt_clock(clk).apply(&mut w);
        assert_eq!(w, bits);

        assert_eq!(repeat3_decode(&repeat3_encode(&bits)), bits);
    });
}

/// (15,10) FEC corrects any single error per block.
#[test]
fn hamming_corrects_any_single_error() {
    seeded_cases(0x5EED_0004, 64, |rng| {
        let blocks = 1 + rng.next_range(5) as usize;
        let data_seed = rng.next_u64();
        let nbits = blocks * 10;
        let data: Vec<bool> = (0..nbits)
            .map(|i| (data_seed >> (i % 64)) & 1 == 1)
            .collect();
        let mut coded = hamming1510_encode(&data);
        for blk in 0..blocks {
            let f = rng.next_range(15) as usize;
            coded[blk * 15 + f] = !coded[blk * 15 + f];
        }
        let (decoded, _) = hamming1510_decode(&coded);
        assert_eq!(decoded, data);
    });
}

/// Trace files round-trip arbitrary sample data within quantization.
#[test]
fn trace_format_round_trip() {
    seeded_cases(0x5EED_0005, 48, |rng| {
        let n = 1 + rng.next_range(499) as usize;
        let samples: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new((rng.next_f32() - 0.5) * 6.0, (rng.next_f32() - 0.5) * 6.0))
            .collect();
        let rate_mhz = 1 + rng.next_range(63) as u32;
        let header = rfd_ether::trace::TraceHeader {
            sample_rate: rate_mhz as f64 * 1e6,
            center_hz: 37e6,
            n_samples: samples.len() as u64,
            scale: rfd_ether::trace::auto_scale(&samples),
        };
        let bytes = rfd_ether::trace::encode_trace(&header, &samples);
        let (h2, s2) = rfd_ether::trace::decode_trace(&bytes).unwrap();
        assert_eq!(h2, header);
        assert_eq!(s2.len(), samples.len());
        let tol = header.scale * 2e-4;
        for (a, b) in samples.iter().zip(s2.iter()) {
            assert!((*a - *b).abs() <= tol, "{} vs {}", a, b);
        }
    });
}

/// PLCP headers round-trip for every rate/length combination.
#[test]
fn plcp_header_round_trip() {
    use rfd_phy::wifi::plcp::{PlcpHeader, WifiRate};
    seeded_cases(0x5EED_0006, 64, |rng| {
        let len = rng.next_range(2400) as usize;
        let rate =
            [WifiRate::R1, WifiRate::R2, WifiRate::R5_5, WifiRate::R11][rng.next_range(4) as usize];
        let h = PlcpHeader::for_psdu(len, rate);
        let parsed = PlcpHeader::from_bits(&h.to_bits()).unwrap();
        assert_eq!(parsed.psdu_len(), len);
        assert_eq!(parsed.rate, rate);
    });
}

/// MAC frames round-trip and corruption is always caught by the FCS.
#[test]
fn mac_frame_fcs_guarantees() {
    use rfd_phy::wifi::frame::{MacAddr, MacFrame};
    seeded_cases(0x5EED_0007, 64, |rng| {
        let body = random_bytes(rng, 0, 256);
        let seq = rng.next_range(4096) as u16;
        let f = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            seq,
            body,
        );
        let bytes = f.to_bytes();
        assert_eq!(MacFrame::from_bytes(&bytes).unwrap(), f);
        let mut bad = bytes.clone();
        let idx = rng.next_range(bad.len() as u64) as usize;
        bad[idx] ^= 1 << rng.next_range(8);
        assert!(
            MacFrame::from_bytes(&bad).is_none(),
            "corruption at byte {idx} accepted"
        );
    });
}

/// The dispatcher conserves peaks: every offered peak is either dispatched
/// (≥1 vote) or counted unclassified — no loss, no duplication.
#[test]
fn dispatcher_conserves_peaks() {
    use rfd_phy::Protocol;
    use rfdump::chunk::{Peak, PeakBlock};
    use rfdump::detect::Classification;
    use rfdump::dispatch::{DispatchConfig, Dispatcher};
    use std::sync::Arc;

    let mut rng = rfd_dsp::rng::Xoshiro256::new(99);
    let mut d = Dispatcher::new(DispatchConfig::default());
    let total = 200u64;
    let mut dispatched = 0u64;
    for id in 0..total {
        let pb = PeakBlock {
            peak: Peak {
                id,
                start: id * 5_000,
                end: id * 5_000 + 1_000,
                mean_power: 1.0,
                noise_floor: 1e-4,
            },
            samples: Arc::new(vec![]),
            sample_start: id * 5_000,
            sample_rate: 8e6,
            ingest: None,
        };
        let votes = if rng.next_bool(0.6) {
            vec![Classification {
                peak_id: id,
                protocol: if rng.next_bool(0.5) {
                    Protocol::Wifi
                } else {
                    Protocol::Bluetooth
                },
                confidence: 0.5 + rng.next_f32() * 0.5,
                channel: None,
                range: None,
            }]
        } else {
            vec![]
        };
        dispatched += d.on_peak(pb, votes).len() as u64;
    }
    dispatched += d.finish().len() as u64;
    let stats = d.stats();
    assert_eq!(stats.total_peaks, total);
    assert_eq!(dispatched + stats.unclassified_peaks, total);
}
