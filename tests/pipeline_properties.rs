//! Property-based tests of the monitoring pipeline's invariants: peak
//! detection geometry, dispatcher bookkeeping, trace-format round trips,
//! coding-layer guarantees.

use proptest::prelude::*;
use rfd_dsp::coding::{
    bits_to_bytes_lsb, bytes_to_bits_lsb, hamming1510_decode, hamming1510_encode,
    repeat3_decode, repeat3_encode, Crc, Scrambler, Whitener,
};
use rfd_dsp::rng::GaussianGen;
use rfd_dsp::Complex32;
use rfdump::peak::{detect_peaks, PeakDetectorConfig};

fn bursty(n: usize, bursts: &[(usize, usize)], noise: f32, seed: u64) -> Vec<Complex32> {
    let mut sig = vec![Complex32::ZERO; n];
    for &(s, l) in bursts {
        for i in s..(s + l).min(n) {
            sig[i] = Complex32::cis(i as f32 * 0.7);
        }
    }
    GaussianGen::new(seed).add_awgn(&mut sig, noise);
    sig
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]

    /// Peaks are ordered, non-overlapping, and cover every strong burst.
    #[test]
    fn peak_detector_invariants(
        gaps in proptest::collection::vec(2_000usize..20_000, 1..5),
        lens in proptest::collection::vec(400usize..4_000, 5),
        seed in 0u64..500,
    ) {
        let mut bursts = Vec::new();
        let mut pos = 3_000usize;
        for (i, g) in gaps.iter().enumerate() {
            bursts.push((pos, lens[i % lens.len()]));
            pos += lens[i % lens.len()] + g;
        }
        let n = pos + 3_000;
        let sig = bursty(n, &bursts, 1e-4, seed);
        let peaks = detect_peaks(
            &sig,
            8e6,
            PeakDetectorConfig { noise_floor: Some(1e-4), ..Default::default() },
        );
        // One peak per burst.
        prop_assert_eq!(peaks.len(), bursts.len());
        // Ordered and non-overlapping, ids increasing.
        for w in peaks.windows(2) {
            prop_assert!(w[0].peak.end <= w[1].peak.start);
            prop_assert!(w[0].peak.id < w[1].peak.id);
        }
        // Each burst covered with tight edges.
        for ((s, l), pb) in bursts.iter().zip(peaks.iter()) {
            let p = pb.peak;
            prop_assert!((p.start as i64 - *s as i64).abs() <= 30, "start {} vs {}", p.start, s);
            prop_assert!((p.end as i64 - (*s + *l) as i64).abs() <= 60, "end {} vs {}", p.end, s + l);
            // PeakBlock samples must match the original stream.
            let a = (p.start - pb.sample_start) as usize;
            for k in (0..(p.len() as usize)).step_by(97) {
                prop_assert_eq!(pb.samples[a + k], sig[p.start as usize + k]);
            }
        }
    }

    /// CRC engines detect every 1- and 2-bit error.
    #[test]
    fn crc_detects_small_errors(
        data in proptest::collection::vec(any::<u8>(), 4..64),
        which in 0usize..3,
        b1 in 0usize..512,
        b2 in 0usize..512,
    ) {
        let crc = [Crc::crc32_ieee(), Crc::crc16_x25(), Crc::crc16_802154()]
            [which]
            .clone();
        let good = crc.compute(&data);
        let nbits = data.len() * 8;
        let (b1, b2) = (b1 % nbits, b2 % nbits);
        let mut bad = data.clone();
        bad[b1 / 8] ^= 1 << (b1 % 8);
        prop_assert_ne!(crc.compute(&bad), good, "single-bit error missed");
        if b2 != b1 {
            bad[b2 / 8] ^= 1 << (b2 % 8);
            prop_assert_ne!(crc.compute(&bad), good, "double-bit error missed");
        }
    }

    /// Scrambler/descrambler and whitener are exact inverses; bit<->byte
    /// packing round-trips.
    #[test]
    fn coding_round_trips(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        seed in 0u8..0x80,
        clk in 0u32..64,
    ) {
        let bits = bytes_to_bits_lsb(&data);
        prop_assert_eq!(bits_to_bytes_lsb(&bits), data.clone());

        let tx = Scrambler::new(seed).scramble(&bits);
        prop_assert_eq!(Scrambler::new(seed).descramble(&tx), bits.clone());

        let mut w = bits.clone();
        Whitener::for_bt_clock(clk).apply(&mut w);
        Whitener::for_bt_clock(clk).apply(&mut w);
        prop_assert_eq!(w, bits.clone());

        prop_assert_eq!(repeat3_decode(&repeat3_encode(&bits)), bits.clone());
    }

    /// (15,10) FEC corrects any single error per block.
    #[test]
    fn hamming_corrects_any_single_error(
        blocks in 1usize..6,
        flip in proptest::collection::vec(0usize..15, 1..6),
        data_seed in any::<u64>(),
    ) {
        let nbits = blocks * 10;
        let data: Vec<bool> = (0..nbits).map(|i| (data_seed >> (i % 64)) & 1 == 1).collect();
        let mut coded = hamming1510_encode(&data);
        for (blk, &f) in flip.iter().take(blocks).enumerate() {
            coded[blk * 15 + f] = !coded[blk * 15 + f];
        }
        let (decoded, _) = hamming1510_decode(&coded);
        prop_assert_eq!(decoded, data);
    }

    /// Trace files round-trip arbitrary sample data within quantization.
    #[test]
    fn trace_format_round_trip(
        vals in proptest::collection::vec((-3.0f32..3.0, -3.0f32..3.0), 1..500),
        rate_mhz in 1u32..64,
    ) {
        let samples: Vec<Complex32> =
            vals.iter().map(|&(re, im)| Complex32::new(re, im)).collect();
        let header = rfd_ether::trace::TraceHeader {
            sample_rate: rate_mhz as f64 * 1e6,
            center_hz: 37e6,
            n_samples: samples.len() as u64,
            scale: rfd_ether::trace::auto_scale(&samples),
        };
        let bytes = rfd_ether::trace::encode_trace(&header, &samples);
        let (h2, s2) = rfd_ether::trace::decode_trace(bytes).unwrap();
        prop_assert_eq!(h2, header);
        prop_assert_eq!(s2.len(), samples.len());
        let tol = header.scale * 2e-4;
        for (a, b) in samples.iter().zip(s2.iter()) {
            prop_assert!((*a - *b).abs() <= tol, "{} vs {}", a, b);
        }
    }

    /// PLCP headers round-trip for every rate/length combination.
    #[test]
    fn plcp_header_round_trip(len in 0usize..2400, rate_idx in 0usize..4) {
        use rfd_phy::wifi::plcp::{PlcpHeader, WifiRate};
        let rate = [WifiRate::R1, WifiRate::R2, WifiRate::R5_5, WifiRate::R11][rate_idx];
        let h = PlcpHeader::for_psdu(len, rate);
        let parsed = PlcpHeader::from_bits(&h.to_bits()).unwrap();
        prop_assert_eq!(parsed.psdu_len(), len);
        prop_assert_eq!(parsed.rate, rate);
    }

    /// MAC frames round-trip and corruption is always caught by the FCS.
    #[test]
    fn mac_frame_fcs_guarantees(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        seq in 0u16..4096,
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        use rfd_phy::wifi::frame::{MacAddr, MacFrame};
        let f = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            seq,
            body,
        );
        let bytes = f.to_bytes();
        prop_assert_eq!(MacFrame::from_bytes(&bytes).unwrap(), f);
        let mut bad = bytes.clone();
        let idx = (flip_byte as usize) % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(MacFrame::from_bytes(&bad).is_none(), "corruption at byte {idx} accepted");
    }
}

/// The dispatcher conserves peaks: every offered peak is either dispatched
/// (≥1 vote) or counted unclassified — no loss, no duplication.
#[test]
fn dispatcher_conserves_peaks() {
    use rfd_phy::Protocol;
    use rfdump::chunk::{Peak, PeakBlock};
    use rfdump::detect::Classification;
    use rfdump::dispatch::{DispatchConfig, Dispatcher};
    use std::sync::Arc;

    let mut rng = rfd_dsp::rng::Xoshiro256::new(99);
    let mut d = Dispatcher::new(DispatchConfig::default());
    let total = 200u64;
    let mut dispatched = 0u64;
    for id in 0..total {
        let pb = PeakBlock {
            peak: Peak {
                id,
                start: id * 5_000,
                end: id * 5_000 + 1_000,
                mean_power: 1.0,
                noise_floor: 1e-4,
            },
            samples: Arc::new(vec![]),
            sample_start: id * 5_000,
            sample_rate: 8e6,
        };
        let votes = if rng.next_bool(0.6) {
            vec![Classification {
                peak_id: id,
                protocol: if rng.next_bool(0.5) { Protocol::Wifi } else { Protocol::Bluetooth },
                confidence: 0.5 + rng.next_f32() * 0.5,
                channel: None,
                range: None,
            }]
        } else {
            vec![]
        };
        dispatched += d.on_peak(pb, votes).len() as u64;
    }
    dispatched += d.finish().len() as u64;
    let stats = d.stats();
    assert_eq!(stats.total_peaks, total);
    assert_eq!(dispatched + stats.unclassified_peaks, total);
}
