//! End-to-end integration: MAC schedule → ether rendering → monitoring
//! architectures → accuracy evaluation, across crates.

use rfd_integration::{mixed_trace, piconet, LAP};
use rfd_phy::Protocol;
use rfdump::arch::{run_architecture, ArchConfig, ArchKind, DetectorSet};
use rfdump::eval::{score_detector, EvalOptions};
use rfdump::records::PacketInfo;

#[test]
fn rfdump_matches_ground_truth_at_high_snr() {
    let trace = mixed_trace(4, 20, 30.0, 11);
    let cfg = ArchConfig::rfdump(vec![piconet()]);
    let out = run_architecture(&cfg, &trace.samples, trace.band.sample_rate);

    let wifi = score_detector(
        Protocol::Wifi,
        &trace.truth,
        &trace.collided_ids(),
        &out.classified,
        trace.samples.len() as u64,
        EvalOptions {
            discount_collisions: true,
            ..Default::default()
        },
    );
    assert!(
        wifi.miss_rate < 0.1,
        "wifi miss rate {} ({} of {})",
        wifi.miss_rate,
        wifi.missed,
        wifi.total_true
    );

    let bt = score_detector(
        Protocol::Bluetooth,
        &trace.truth,
        &trace.collided_ids(),
        &out.classified,
        trace.samples.len() as u64,
        EvalOptions {
            discount_collisions: true,
            ..Default::default()
        },
    );
    // The slot-timing first-packet miss allows a small nonzero rate.
    assert!(
        bt.miss_rate < 0.35,
        "bt miss rate {} ({} of {})",
        bt.miss_rate,
        bt.missed,
        bt.total_true
    );
}

#[test]
fn decoded_wifi_sequence_numbers_match_transmitted() {
    let trace = mixed_trace(5, 0, 30.0, 13);
    let cfg = ArchConfig::rfdump(vec![]);
    let out = run_architecture(&cfg, &trace.samples, trace.band.sample_rate);
    // Every transmitted data frame's MAC seq should appear among decodes.
    let mut want: Vec<u16> = Vec::new();
    for t in &trace.truth {
        if let rfd_ether::scene::TruthDetail::Wifi {
            seq: Some(s),
            psdu_len,
            ..
        } = t.detail
        {
            if psdu_len > 100 {
                want.push(s);
            }
        }
    }
    let got: Vec<u16> = out
        .records
        .iter()
        .filter_map(|r| match r.info {
            PacketInfo::Wifi {
                seq: Some(s),
                fcs_ok: true,
                psdu_len,
                ..
            } if psdu_len > 100 => Some(s),
            _ => None,
        })
        .collect();
    for s in &want {
        assert!(
            got.contains(s),
            "seq {s} transmitted but not decoded (got {got:?})"
        );
    }
}

#[test]
fn bluetooth_payload_sizes_recover_sequence_numbers() {
    // The paper's ground-truth trick (§5.1.1): sequence numbers recovered
    // from packet sizes across the 8-of-79-channel bottleneck.
    let trace = mixed_trace(0, 40, 30.0, 17);
    let cfg = ArchConfig::rfdump(vec![piconet()]);
    let out = run_architecture(&cfg, &trace.samples, trace.band.sample_rate);
    let decoded_sizes: Vec<usize> = out
        .records
        .iter()
        .filter_map(|r| match &r.info {
            PacketInfo::Bluetooth {
                payload_len,
                crc_ok: true,
                lap,
                ..
            } if *lap == LAP => Some(*payload_len),
            _ => None,
        })
        .collect();
    assert!(!decoded_sizes.is_empty(), "no Bluetooth packets decoded");
    let truth_sizes: Vec<usize> = trace
        .truth
        .iter()
        .filter_map(|t| match t.detail {
            rfd_ether::scene::TruthDetail::Bluetooth { payload_len, .. } if t.in_band => {
                Some(payload_len)
            }
            _ => None,
        })
        .collect();
    for s in &decoded_sizes {
        assert!(
            truth_sizes.contains(s),
            "decoded size {s} not in ground truth"
        );
        // Sequence-in-size: 225 + seq % 114.
        assert!(
            (225..339).contains(s),
            "size {s} outside the l2ping encoding"
        );
    }
}

#[test]
fn naive_and_rfdump_find_the_same_wifi_packets() {
    let trace = mixed_trace(4, 0, 30.0, 19);
    let naive = run_architecture(
        &ArchConfig::naive(vec![]),
        &trace.samples,
        trace.band.sample_rate,
    );
    let rfdump = run_architecture(
        &ArchConfig::rfdump(vec![]),
        &trace.samples,
        trace.band.sample_rate,
    );
    let decoded = |out: &rfdump::arch::ArchOutput| -> Vec<(u16, usize)> {
        let mut v: Vec<(u16, usize)> = out
            .records
            .iter()
            .filter_map(|r| match r.info {
                PacketInfo::Wifi {
                    seq: Some(s),
                    psdu_len,
                    fcs_ok: true,
                    ..
                } => Some((s, psdu_len)),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let a = decoded(&naive);
    let b = decoded(&rfdump);
    assert_eq!(a, b, "the architectures must agree on decoded frames");
    assert!(!a.is_empty());
}

#[test]
fn trace_file_round_trip_preserves_analysis() {
    let trace = mixed_trace(3, 10, 28.0, 23);
    let dir = std::env::temp_dir().join("rfd-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.rfdt");
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    let (h, replayed) = rfd_ether::trace::read_trace(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = ArchConfig::rfdump(vec![piconet()]);
    let live = run_architecture(&cfg, &trace.samples, trace.band.sample_rate);
    let replay = run_architecture(&cfg, &replayed, h.sample_rate);
    assert_eq!(live.records.len(), replay.records.len());
    for (a, b) in live.records.iter().zip(replay.records.iter()) {
        assert_eq!(a.protocol, b.protocol);
        assert!((a.start_us - b.start_us).abs() < 5.0);
    }
}

#[test]
fn efficiency_ordering_holds_on_a_light_trace() {
    let trace = mixed_trace(3, 10, 30.0, 29);
    let run = |kind, demod| {
        let cfg = ArchConfig {
            kind,
            demodulate: demod,
            band: trace.band,
            piconets: vec![piconet()],
            noise_floor: Some(trace.noise_power),
            zigbee: false,
            microwave: false,
            threaded: false,
            telemetry: false,
            workers: rfdump::arch::default_workers(),
            faults: rfd_fault::FaultPlan::ambient(),
            governor: None,
            chunk_samples: rfdump::CHUNK_SAMPLES,
            durability: None,
        };
        run_architecture(&cfg, &trace.samples, trace.band.sample_rate).cpu_over_realtime()
    };
    let naive = run(ArchKind::Naive, true);
    let gated = run(ArchKind::NaiveEnergy, true);
    let rfd = run(ArchKind::RfDump(DetectorSet::TimingAndPhase), true);
    let rfd_nodemod = run(ArchKind::RfDump(DetectorSet::Timing), false);
    assert!(gated < naive, "energy gating must help: {gated} vs {naive}");
    assert!(rfd < naive, "rfdump must beat naive: {rfd} vs {naive}");
    assert!(
        rfd_nodemod < rfd,
        "detection alone must be cheapest: {rfd_nodemod} vs {rfd}"
    );
}

#[test]
fn multithreaded_flowgraph_agrees_with_single_threaded() {
    // The MT scheduler is the paper's unexploited "inherent parallelism";
    // both schedulers must produce identical analysis.
    use rfd_flowgraph::blocks::{FnBlock, VecSink, VecSource};
    use rfd_flowgraph::Flowgraph;
    let data: Vec<i64> = (0..10_000).collect();
    let build = |data: Vec<i64>| {
        let mut fg = Flowgraph::new();
        let src = fg.add(Box::new(VecSource::new("src", data, 64)));
        let stage1 = fg.add(Box::new(FnBlock::new("x3", |x: i64| Some(x * 3))));
        let stage2 = fg.add(Box::new(FnBlock::new("odd", |x: i64| {
            (x % 2 == 1).then_some(x)
        })));
        let sink = Box::new(VecSink::<i64>::new("sink"));
        let out = sink.storage();
        let k = fg.add(sink);
        fg.connect(src, 0, stage1, 0);
        fg.connect(stage1, 0, stage2, 0);
        fg.connect(stage2, 0, k, 0);
        (fg, out)
    };
    let (mut fg1, o1) = build(data.clone());
    fg1.run();
    let (mut fg2, o2) = build(data);
    fg2.run_threaded();
    assert_eq!(*o1.lock(), *o2.lock());
}
