//! Live loopback vs offline differential: a trace replayed through
//! `TraceSender → Server(LivePipeline) → RecordSubscriber` must yield a
//! record stream **byte-identical** to offline `run_architecture` on the
//! same trace — at any worker count. This is the acceptance contract of
//! the whole net subsystem: the wire (i16 IQ + scale) and the end-of-
//! session sorted publish preserve both samples and ordering exactly.

use rfd_integration::{mixed_trace, piconet};
use rfd_net::{
    FleetConfig, FleetServer, HubMsg, RecordSubscriber, SendRate, Server, ServerConfig, SubEvent,
    TraceSender,
};
use rfdump::arch::{run_architecture, ArchConfig};
use rfdump::live::LivePipeline;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Renders the mixed scene once and stores it as a `.rfdt` file, the way
/// a real deployment would replay a USRP capture.
fn trace_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-net-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(3, 8, 28.0, 4242);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

fn offline_lines(path: &std::path::Path, workers: usize) -> Vec<String> {
    let (header, samples) = rfd_ether::trace::read_trace(path).unwrap();
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = rfd_ether::Band {
        sample_rate: header.sample_rate,
        center_hz: header.center_hz,
    };
    cfg.telemetry = false;
    cfg.workers = workers;
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    out.records.iter().map(|r| r.format_line()).collect()
}

fn loopback_lines(path: &std::path::Path, workers: usize, rate: SendRate) -> Vec<String> {
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.telemetry = false;
    cfg.workers = workers;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            queue_cap: 8,
            ..Default::default()
        },
        Box::new(LivePipeline::new(cfg)),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let mut tx = TraceSender::connect(addr).unwrap();
    let report = tx.send_trace_file(path, rate, 1000).unwrap();
    tx.finish().unwrap();
    assert!(report.samples > 0);

    let mut lines = Vec::new();
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(r) => lines.push(r.line),
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let stats = run.join().unwrap();
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.samples_in, report.samples);
    assert_eq!(stats.seq_gaps, 0, "lossless path must have no seq gaps");
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.chunks_dropped, 0, "block policy must not drop");
    lines
}

#[test]
fn loopback_is_byte_identical_to_offline_at_any_worker_count() {
    let path = trace_file("identity.rfdt");
    let offline0 = offline_lines(&path, 0);
    assert!(
        !offline0.is_empty(),
        "scene must produce records for the diff to mean anything"
    );
    for workers in [0usize, 4] {
        let offline = offline_lines(&path, workers);
        assert_eq!(
            offline, offline0,
            "offline output must not vary (w={workers})"
        );
        let live = loopback_lines(&path, workers, SendRate::Max);
        assert_eq!(
            live, offline,
            "live stream must be byte-identical to offline (w={workers})"
        );
    }
}

#[test]
fn two_subscribers_see_the_same_stream() {
    let path = trace_file("fanout.rfdt");
    let cfg = {
        let mut c = ArchConfig::rfdump(vec![piconet()]);
        c.telemetry = false;
        c.workers = 0;
        c
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            ..Default::default()
        },
        Box::new(LivePipeline::new(cfg)),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let subs: Vec<RecordSubscriber> = (0..2)
        .map(|_| RecordSubscriber::connect(addr).unwrap())
        .collect();
    let mut tx = TraceSender::connect(addr).unwrap();
    tx.send_trace_file(&path, SendRate::Max, 4096).unwrap();
    tx.finish().unwrap();

    let mut streams = Vec::new();
    for mut sub in subs {
        let mut lines = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::Record(r) => lines.push(r.line),
                SubEvent::Bye => break,
                _ => {}
            }
        }
        streams.push(lines);
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], offline_lines(&path, 0));
    let stats = run.join().unwrap();
    assert_eq!(stats.subscribers, 2);
    assert_eq!(stats.subscribers_evicted, 0);
}

/// Renders a distinct scene per fleet source, so cross-source
/// contamination would be caught by the per-source diffs.
fn fleet_trace_file(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-net-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(2, 4, 28.0, seed);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

/// The fleet acceptance contract: three concurrent senders, each source's
/// record stream — whether observed through an in-process filtered hub
/// subscription or partitioned out of a network subscriber's tagged
/// stream — must be byte-identical to running that trace alone offline.
fn fleet_sources_match_offline(workers: usize) {
    let names = ["roof", "lab-3", "van.2"];
    let paths: Vec<PathBuf> = names
        .iter()
        .enumerate()
        .map(|(i, n)| fleet_trace_file(&format!("fleet-{n}-w{workers}.rfdt"), 9000 + i as u64))
        .collect();
    let offline: Vec<Vec<String>> = paths.iter().map(|p| offline_lines(p, workers)).collect();
    assert!(
        offline.iter().all(|l| !l.is_empty()),
        "every scene must produce records for the diff to mean anything"
    );

    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.telemetry = false;
    cfg.workers = workers;
    let slot = Arc::new(Mutex::new(None));
    let factory = rfdump::fleet::pipeline_factory(cfg, None, slot);
    let server = FleetServer::bind(
        "127.0.0.1:0",
        FleetConfig {
            expect: Some(names.len() as u64),
            ..Default::default()
        },
        factory,
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    // One filtered in-process subscription per source...
    let filtered: Vec<_> = names.iter().map(|n| server.subscribe_filtered(n)).collect();
    let run = std::thread::spawn(move || server.run().unwrap());
    // ...plus one network subscriber seeing the whole merged stream (its
    // handshake needs the readiness loop running).
    let mut net_sub = RecordSubscriber::connect(addr).unwrap();

    let senders: Vec<_> = names
        .iter()
        .zip(paths.iter())
        .map(|(name, path)| {
            let name = name.to_string();
            let path = path.clone();
            std::thread::spawn(move || {
                let mut tx = TraceSender::connect_source(addr, &name).unwrap();
                let report = tx.send_trace_file(&path, SendRate::Max, 1000).unwrap();
                tx.finish().unwrap();
                report.samples
            })
        })
        .collect();
    let sent: u64 = senders.into_iter().map(|t| t.join().unwrap()).sum();

    // Partition the network subscriber's merged stream by tag.
    let mut by_tag: BTreeMap<String, Vec<String>> = BTreeMap::new();
    loop {
        match net_sub.next_event().unwrap() {
            SubEvent::SourceRecord { source, record } => {
                by_tag.entry(source).or_default().push(record.line)
            }
            SubEvent::Bye => break,
            _ => {}
        }
    }
    let snap = run.join().unwrap();
    assert_eq!(snap.sources_joined, names.len() as u64);
    assert_eq!(snap.sources_done, names.len() as u64);
    assert_eq!(snap.net.samples_in, sent);
    assert_eq!(snap.net.decode_errors, 0);

    for ((name, sub), offline) in names.iter().zip(filtered).zip(offline.iter()) {
        let mut lines = Vec::new();
        loop {
            match sub.rx.recv().unwrap() {
                HubMsg::SourceRecord { record, .. } => lines.push(record.line),
                HubMsg::SourceBye { .. } | HubMsg::Bye => break,
                _ => {}
            }
        }
        assert_eq!(
            &lines, offline,
            "filtered hub stream for '{name}' must be byte-identical to offline (w={workers})"
        );
        assert_eq!(
            by_tag.get(*name),
            Some(offline),
            "tagged network stream for '{name}' must be byte-identical to offline (w={workers})"
        );
        let per = snap.per_source.iter().find(|s| s.source == *name).unwrap();
        assert_eq!(per.records, offline.len() as u64);
        assert!(per.done);
    }
}

#[test]
fn fleet_sources_are_byte_identical_to_offline_single_threaded() {
    fleet_sources_match_offline(0);
}

#[test]
fn fleet_sources_are_byte_identical_to_offline_with_workers() {
    fleet_sources_match_offline(4);
}

#[test]
fn real_time_pacing_still_matches_offline() {
    // A short tail of the scene at real-time rate: pacing changes arrival
    // timing, which must not leak into the analysis output.
    let dir = std::env::temp_dir().join("rfd-net-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("paced.rfdt");
    let trace = mixed_trace(1, 2, 28.0, 777);
    // Keep the paced replay under ~150 ms of signal.
    let n = trace
        .samples
        .len()
        .min((trace.band.sample_rate * 0.15) as usize);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples[..n],
    )
    .unwrap();
    let offline = offline_lines(&path, 0);
    let live = loopback_lines(&path, 0, SendRate::RealTime);
    assert_eq!(live, offline);
}
