//! Live loopback vs offline differential: a trace replayed through
//! `TraceSender → Server(LivePipeline) → RecordSubscriber` must yield a
//! record stream **byte-identical** to offline `run_architecture` on the
//! same trace — at any worker count. This is the acceptance contract of
//! the whole net subsystem: the wire (i16 IQ + scale) and the end-of-
//! session sorted publish preserve both samples and ordering exactly.

use rfd_integration::{mixed_trace, piconet};
use rfd_net::{RecordSubscriber, SendRate, Server, ServerConfig, SubEvent, TraceSender};
use rfdump::arch::{run_architecture, ArchConfig};
use rfdump::live::LivePipeline;
use std::path::PathBuf;

/// Renders the mixed scene once and stores it as a `.rfdt` file, the way
/// a real deployment would replay a USRP capture.
fn trace_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rfd-net-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let trace = mixed_trace(3, 8, 28.0, 4242);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples,
    )
    .unwrap();
    path
}

fn offline_lines(path: &std::path::Path, workers: usize) -> Vec<String> {
    let (header, samples) = rfd_ether::trace::read_trace(path).unwrap();
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.band = rfd_ether::Band {
        sample_rate: header.sample_rate,
        center_hz: header.center_hz,
    };
    cfg.telemetry = false;
    cfg.workers = workers;
    let out = run_architecture(&cfg, &samples, header.sample_rate);
    out.records.iter().map(|r| r.format_line()).collect()
}

fn loopback_lines(path: &std::path::Path, workers: usize, rate: SendRate) -> Vec<String> {
    let mut cfg = ArchConfig::rfdump(vec![piconet()]);
    cfg.telemetry = false;
    cfg.workers = workers;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            queue_cap: 8,
            ..Default::default()
        },
        Box::new(LivePipeline::new(cfg)),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let mut sub = RecordSubscriber::connect(addr).unwrap();
    let mut tx = TraceSender::connect(addr).unwrap();
    let report = tx.send_trace_file(path, rate, 1000).unwrap();
    tx.finish().unwrap();
    assert!(report.samples > 0);

    let mut lines = Vec::new();
    loop {
        match sub.next_event().unwrap() {
            SubEvent::Record(r) => lines.push(r.line),
            SubEvent::Bye => break,
            SubEvent::Meta(_) | SubEvent::Stats(_) | SubEvent::Heartbeat => {}
        }
    }
    let stats = run.join().unwrap();
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.samples_in, report.samples);
    assert_eq!(stats.seq_gaps, 0, "lossless path must have no seq gaps");
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.chunks_dropped, 0, "block policy must not drop");
    lines
}

#[test]
fn loopback_is_byte_identical_to_offline_at_any_worker_count() {
    let path = trace_file("identity.rfdt");
    let offline0 = offline_lines(&path, 0);
    assert!(
        !offline0.is_empty(),
        "scene must produce records for the diff to mean anything"
    );
    for workers in [0usize, 4] {
        let offline = offline_lines(&path, workers);
        assert_eq!(
            offline, offline0,
            "offline output must not vary (w={workers})"
        );
        let live = loopback_lines(&path, workers, SendRate::Max);
        assert_eq!(
            live, offline,
            "live stream must be byte-identical to offline (w={workers})"
        );
    }
}

#[test]
fn two_subscribers_see_the_same_stream() {
    let path = trace_file("fanout.rfdt");
    let cfg = {
        let mut c = ArchConfig::rfdump(vec![piconet()]);
        c.telemetry = false;
        c.workers = 0;
        c
    };
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            once: true,
            ..Default::default()
        },
        Box::new(LivePipeline::new(cfg)),
        None,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let run = std::thread::spawn(move || server.run().unwrap());

    let subs: Vec<RecordSubscriber> = (0..2)
        .map(|_| RecordSubscriber::connect(addr).unwrap())
        .collect();
    let mut tx = TraceSender::connect(addr).unwrap();
    tx.send_trace_file(&path, SendRate::Max, 4096).unwrap();
    tx.finish().unwrap();

    let mut streams = Vec::new();
    for mut sub in subs {
        let mut lines = Vec::new();
        loop {
            match sub.next_event().unwrap() {
                SubEvent::Record(r) => lines.push(r.line),
                SubEvent::Bye => break,
                _ => {}
            }
        }
        streams.push(lines);
    }
    assert_eq!(streams[0], streams[1]);
    assert_eq!(streams[0], offline_lines(&path, 0));
    let stats = run.join().unwrap();
    assert_eq!(stats.subscribers, 2);
    assert_eq!(stats.subscribers_evicted, 0);
}

#[test]
fn real_time_pacing_still_matches_offline() {
    // A short tail of the scene at real-time rate: pacing changes arrival
    // timing, which must not leak into the analysis output.
    let dir = std::env::temp_dir().join("rfd-net-loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("paced.rfdt");
    let trace = mixed_trace(1, 2, 28.0, 777);
    // Keep the paced replay under ~150 ms of signal.
    let n = trace
        .samples
        .len()
        .min((trace.band.sample_rate * 0.15) as usize);
    rfd_ether::trace::write_trace(
        &path,
        trace.band.sample_rate,
        trace.band.center_hz,
        &trace.samples[..n],
    )
    .unwrap();
    let offline = offline_lines(&path, 0);
    let live = loopback_lines(&path, 0, SendRate::RealTime);
    assert_eq!(live, offline);
}
