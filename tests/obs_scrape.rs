//! Integration tests of the live metrics plane (`rfd-obs`) over real
//! pipeline runs: the golden scrape (a pipeline-backed `/metrics` payload
//! must be valid Prometheus 0.0.4 text carrying the per-stage latency
//! waterfall), HTTP fuzzing of the listener, and scraping concurrently
//! with a chaos run without perturbing the record stream.

use rfd_fault::FaultPlan;
use rfd_integration::{mixed_trace, piconet, random_bytes, seeded_cases};
use rfd_obs::{prom, scrape, MetricsServer};
use rfd_telemetry::Registry;
use rfdump::arch::{run_architecture_with_registry, ArchConfig, ArchOutput};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn cfg(workers: usize) -> ArchConfig {
    let trace = mixed_trace(2, 2, 25.0, 42);
    ArchConfig {
        band: trace.band,
        noise_floor: Some(trace.noise_power),
        telemetry: true,
        workers,
        ..ArchConfig::rfdump(vec![piconet()])
    }
}

fn run_with(registry: Arc<Registry>, workers: usize) -> ArchOutput {
    let trace = mixed_trace(2, 2, 25.0, 42);
    run_architecture_with_registry(
        &cfg(workers),
        &trace.samples,
        trace.band.sample_rate,
        Some(registry),
    )
}

/// Golden scrape: run the full pipeline into a served registry, then
/// require the `/metrics` payload to be strictly parseable 0.0.4 text
/// containing the counter families and the per-stage latency histograms
/// the dashboard depends on, with e2e covering every analyzed chunk.
#[test]
fn pipeline_scrape_is_valid_exposition() {
    let reg = Arc::new(Registry::new());
    let srv = MetricsServer::bind("127.0.0.1:0", reg.clone()).unwrap();
    let addr = srv.local_addr().unwrap().to_string();
    let handle = srv.spawn();

    let out = run_with(reg, 0);
    assert!(!out.records.is_empty(), "trace decoded no records");

    let text = scrape(&addr, "/metrics").unwrap();
    let exp = prom::validate(&text).expect("pipeline scrape must be 0.0.4");
    for family in [
        "rfd_peaks_detected",
        "rfd_trace_samples",
        "rfd_events_emitted",
        "rfd_latency_detect_us",
        "rfd_latency_dispatch_us",
        "rfd_latency_analyze_us",
        "rfd_latency_e2e_us",
    ] {
        assert!(exp.has_family(family), "family {family} missing:\n{text}");
    }
    assert_eq!(
        exp.families["rfd_latency_e2e_us"],
        prom::FamilyType::Histogram
    );
    // The e2e histogram observed at least one chunk, and its +Inf bucket
    // agrees with what `top` would re-derive from the cumulative buckets.
    let samples = rfd_obs::top::parse_samples(&text);
    let count = samples["rfd_latency_e2e_us_count"];
    assert!(count >= 1.0, "e2e latency histogram is empty");
    assert!(rfd_obs::top::quantile(&samples, "rfd_latency_e2e_us", 0.5).is_some());

    // The event ring endpoint serves parseable JSON alongside.
    let events = scrape(&addr, "/events").unwrap();
    rfd_telemetry::json::parse(&events).expect("/events must be JSON");
    handle.join();
}

/// Fuzz the listener with random garbage: every connection must get an
/// answer (or a clean close) without wedging the server, and a
/// well-formed scrape must still validate afterwards.
#[test]
fn listener_survives_http_fuzz() {
    let reg = Arc::new(Registry::new());
    reg.counter("peaks.detected").add(5);
    let srv = MetricsServer::bind("127.0.0.1:0", reg).unwrap();
    let addr = srv.local_addr().unwrap().to_string();
    let handle = srv.spawn();

    seeded_cases(0xB0B, 32, |rng| {
        let mut req = random_bytes(rng, 0, 600);
        // Half the cases are "almost HTTP": a real verb, then noise.
        if rng.next_range(2) == 0 {
            let mut framed = b"GET /".to_vec();
            framed.extend_from_slice(&req);
            framed.extend_from_slice(b" HTTP/1.0\r\n\r\n");
            req = framed;
        } else {
            req.extend_from_slice(b"\r\n\r\n");
        }
        // Any response (or clean close) is acceptable; a hang or panic
        // is not. scrape_raw enforces a 2 s timeout.
        let _ = rfd_obs::client::scrape_raw(&addr, &req);
    });

    let text = scrape(&addr, "/metrics").expect("server must survive the fuzz");
    prom::validate(&text).expect("post-fuzz scrape must still be 0.0.4");
    assert!(text.contains("rfd_peaks_detected 5"));
    handle.join();
}

/// Chaos + concurrent scraping must not perturb the record stream: a run
/// with fault injection, a live endpoint and a scraper hammering it
/// produces byte-for-byte the records of the same chaos run without any
/// observer, and the endpoint stays parseable throughout.
#[test]
fn scrape_under_chaos_leaves_records_intact() {
    let trace = mixed_trace(2, 2, 25.0, 42);
    // Rule counters live inside the plan, so each arm gets a fresh parse
    // of the same spec — a shared plan would fire its `#2` panic in one
    // run only.
    let chaos_cfg = |workers: usize| ArchConfig {
        faults: Some(Arc::new(
            FaultPlan::parse("seed=7;slow=analyze%5/200us;panic=analyze:wifi#2").unwrap(),
        )),
        ..cfg(workers)
    };

    for workers in [0, 4] {
        // Reference arm: chaos, telemetry, no endpoint, no scraper.
        let baseline = run_architecture_with_registry(
            &chaos_cfg(workers),
            &trace.samples,
            trace.band.sample_rate,
            None,
        );

        // Observed arm: same chaos run with a served registry and a
        // scraper thread polling it for the whole run.
        let reg = Arc::new(Registry::new());
        let srv = MetricsServer::bind("127.0.0.1:0", reg.clone()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = srv.spawn();
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let (addr, stop) = (addr.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut ok = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(text) = scrape(&addr, "/metrics") {
                        prom::validate(&text).expect("mid-run scrape must be 0.0.4");
                        ok += 1;
                    }
                }
                ok
            })
        };

        let observed = run_architecture_with_registry(
            &chaos_cfg(workers),
            &trace.samples,
            trace.band.sample_rate,
            Some(reg),
        );
        stop.store(true, Ordering::Relaxed);
        let scrapes = scraper.join().unwrap();
        assert!(scrapes > 0, "scraper never completed a scrape");

        assert_eq!(
            baseline.records, observed.records,
            "workers={workers}: scraping changed the record stream"
        );
        let text = scrape(&addr, "/metrics").unwrap();
        prom::validate(&text).expect("post-run scrape must be 0.0.4");
        handle.join();
    }
}
