//! Randomized-case tests of the PHY layers: round-trip invariants over
//! randomized payloads, rates, channel impairments. Each test sweeps
//! deterministic seeded cases via [`rfd_integration::seeded_cases`].

use rfd_dsp::nco::frequency_shift;
use rfd_dsp::resample::resample_windowed_sinc;
use rfd_dsp::rng::GaussianGen;
use rfd_dsp::Complex32;
use rfd_integration::{random_bytes, seeded_cases};
use rfd_phy::bluetooth::gfsk::{modulate as bt_modulate, BtTxConfig};
use rfd_phy::bluetooth::packet::{parse_after_access_code, BtPacket, BtPacketType};
use rfd_phy::wifi::frame::{MacAddr, MacFrame};
use rfd_phy::wifi::modulator::{modulate as wifi_modulate, WifiTxConfig};
use rfd_phy::wifi::plcp::WifiRate;

fn pad(w: &[Complex32], lead: usize, tail: usize) -> Vec<Complex32> {
    let mut v = vec![Complex32::ZERO; lead];
    v.extend_from_slice(w);
    v.extend(vec![Complex32::ZERO; tail]);
    v
}

/// demod(mod(frame)) == frame for random 802.11b payloads and rates, at
/// native chip rate.
#[test]
fn wifi_round_trip_native() {
    seeded_cases(0x5EED_1001, 24, |rng| {
        let payload = random_bytes(rng, 1, 400);
        let rate =
            [WifiRate::R1, WifiRate::R2, WifiRate::R5_5, WifiRate::R11][rng.next_range(4) as usize];
        let lead = 20 + rng.next_range(180) as usize;
        let psdu = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            (payload.len() % 4096) as u16,
            payload,
        )
        .to_bytes();
        let w = wifi_modulate(&psdu, WifiTxConfig { rate });
        let rx = rfd_phy::wifi::demodulate(&pad(&w.samples, lead, 64), 11e6).expect("clean decode");
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
        assert_eq!(rx.header.rate, rate);
    });
}

/// 1 Mbps frames survive the 8 Msps bottleneck with noise and CFO.
#[test]
fn wifi_1mbps_through_8msps_with_impairments() {
    seeded_cases(0x5EED_1002, 24, |rng| {
        let payload = random_bytes(rng, 1, 200);
        let cfo = (rng.next_f64() - 0.5) * 30e3;
        let noise_seed = rng.next_range(1000);
        let psdu = MacFrame::data(
            MacAddr::station(3),
            MacAddr::station(4),
            MacAddr::station(0),
            7,
            payload,
        )
        .to_bytes();
        let w = wifi_modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        let at8 = resample_windowed_sinc(&pad(&w.samples, 55, 55), 11e6, 8e6, 8);
        let mut sig = frequency_shift(&at8, cfo, 8e6);
        GaussianGen::new(noise_seed).add_awgn(&mut sig, 1e-3); // 30 dB
        let rx = rfd_phy::wifi::demodulate(&sig, 8e6).expect("decode");
        assert!(rx.fcs_ok);
        assert_eq!(rx.psdu, psdu);
    });
}

/// Bluetooth baseband bits round-trip for every ACL type, any payload, any
/// clock.
#[test]
fn bt_air_bits_round_trip() {
    seeded_cases(0x5EED_1003, 48, |rng| {
        let ptype = [
            BtPacketType::Dm1,
            BtPacketType::Dh1,
            BtPacketType::Dm3,
            BtPacketType::Dh3,
            BtPacketType::Dm5,
            BtPacketType::Dh5,
        ][rng.next_range(6) as usize];
        let len = ((ptype.max_payload() as f64) * rng.next_f64()) as usize;
        let clock = rng.next_range(1 << 20) as u32;
        let lt_addr = 1 + rng.next_range(7) as u8;
        let payload: Vec<u8> = (0..len).map(|i| (i * 29 + 3) as u8).collect();
        let pkt = BtPacket::new(0x9E8B33, 0x47, lt_addr, ptype, clock, payload.clone());
        let air = pkt.to_air_bits();
        let parsed = parse_after_access_code(&air[72..], 0x47).expect("parse");
        assert!(parsed.crc_ok);
        assert_eq!(parsed.ptype, ptype);
        assert_eq!(parsed.payload, payload);
        assert_eq!(parsed.lt_addr, lt_addr);
    });
}

/// GFSK modulation + channel receiver round-trips DH1 packets under
/// moderate noise at random channel offsets.
#[test]
fn bt_gfsk_rf_round_trip() {
    seeded_cases(0x5EED_1004, 24, |rng| {
        let len = 1 + rng.next_range(26) as usize;
        let clock = rng.next_range(64) as u32;
        let offset_mhz = rng.next_range(7) as i32 - 3;
        let noise_seed = rng.next_range(500);
        let payload: Vec<u8> = (0..len).map(|i| (i * 17 + 1) as u8).collect();
        let pkt = BtPacket::new(0x9E8B33, 0x47, 1, BtPacketType::Dh1, clock, payload.clone());
        let w = bt_modulate(&pkt, BtTxConfig { sample_rate: 8e6 });
        let mut sig = frequency_shift(&pad(&w.samples, 200, 200), offset_mhz as f64 * 1e6, 8e6);
        GaussianGen::new(noise_seed).add_awgn(&mut sig, 1e-3);
        let mut rx = rfd_phy::bluetooth::demod::BtChannelRx::new(
            0,
            8e6,
            offset_mhz as f64 * 1e6,
            vec![rfd_phy::bluetooth::demod::PiconetId {
                lap: 0x9E8B33,
                uap: 0x47,
            }],
        );
        rx.process(&sig);
        let results = rx.finish();
        assert_eq!(results.len(), 1);
        let parsed = results[0].parsed.as_ref().expect("parsed");
        assert!(parsed.crc_ok);
        assert_eq!(&parsed.payload, &payload);
    });
}

/// ZigBee frames round-trip for random payloads.
#[test]
fn zigbee_round_trip() {
    seeded_cases(0x5EED_1005, 24, |rng| {
        let payload = random_bytes(rng, 1, 100);
        let lead = 16 + rng.next_range(104) as usize;
        let frame = rfd_phy::zigbee::ZigbeeFrame::new(payload);
        let w = rfd_phy::zigbee::modulate(&frame, 4);
        let sig = pad(&w.samples, lead, 64);
        let rx = rfd_phy::zigbee::demodulate(&sig, 4).expect("decode");
        assert_eq!(rx, frame);
    });
}

/// Distinct LAPs always yield sync words at BCH distance >= 14.
#[test]
fn sync_word_distance() {
    seeded_cases(0x5EED_1006, 256, |rng| {
        let a = rng.next_range(0x100_0000) as u32;
        let b = rng.next_range(0x100_0000) as u32;
        if a == b {
            return;
        }
        let d = (rfd_phy::bluetooth::access_code::sync_word(a)
            ^ rfd_phy::bluetooth::access_code::sync_word(b))
        .count_ones();
        assert!(d >= 14, "laps {a:06x}/{b:06x} distance {d}");
    });
}
