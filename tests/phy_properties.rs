//! Property-based tests of the PHY layers: round-trip invariants over
//! randomized payloads, rates, channel impairments.

use proptest::prelude::*;
use rfd_dsp::nco::frequency_shift;
use rfd_dsp::resample::resample_windowed_sinc;
use rfd_dsp::rng::GaussianGen;
use rfd_dsp::Complex32;
use rfd_phy::bluetooth::gfsk::{modulate as bt_modulate, BtTxConfig};
use rfd_phy::bluetooth::packet::{parse_after_access_code, BtPacket, BtPacketType};
use rfd_phy::wifi::frame::{MacAddr, MacFrame};
use rfd_phy::wifi::modulator::{modulate as wifi_modulate, WifiTxConfig};
use rfd_phy::wifi::plcp::WifiRate;

fn pad(w: &[Complex32], lead: usize, tail: usize) -> Vec<Complex32> {
    let mut v = vec![Complex32::ZERO; lead];
    v.extend_from_slice(w);
    v.extend(vec![Complex32::ZERO; tail]);
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// demod(mod(frame)) == frame for random 802.11b payloads and rates,
    /// at native chip rate.
    #[test]
    fn wifi_round_trip_native(
        payload in proptest::collection::vec(any::<u8>(), 1..400),
        rate_idx in 0usize..4,
        lead in 20usize..200,
    ) {
        let rate = [WifiRate::R1, WifiRate::R2, WifiRate::R5_5, WifiRate::R11][rate_idx];
        let psdu = MacFrame::data(
            MacAddr::station(1),
            MacAddr::station(2),
            MacAddr::station(0),
            (payload.len() % 4096) as u16,
            payload,
        )
        .to_bytes();
        let w = wifi_modulate(&psdu, WifiTxConfig { rate });
        let rx = rfd_phy::wifi::demodulate(&pad(&w.samples, lead, 64), 11e6)
            .expect("clean decode");
        prop_assert!(rx.fcs_ok);
        prop_assert_eq!(rx.psdu, psdu);
        prop_assert_eq!(rx.header.rate, rate);
    }

    /// 1 Mbps frames survive the 8 Msps bottleneck with noise and CFO.
    #[test]
    fn wifi_1mbps_through_8msps_with_impairments(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        cfo in -15e3f64..15e3,
        seed in 0u64..1000,
    ) {
        let psdu = MacFrame::data(
            MacAddr::station(3),
            MacAddr::station(4),
            MacAddr::station(0),
            7,
            payload,
        )
        .to_bytes();
        let w = wifi_modulate(&psdu, WifiTxConfig { rate: WifiRate::R1 });
        let at8 = resample_windowed_sinc(&pad(&w.samples, 55, 55), 11e6, 8e6, 8);
        let mut sig = frequency_shift(&at8, cfo, 8e6);
        GaussianGen::new(seed).add_awgn(&mut sig, 1e-3); // 30 dB
        let rx = rfd_phy::wifi::demodulate(&sig, 8e6).expect("decode");
        prop_assert!(rx.fcs_ok);
        prop_assert_eq!(rx.psdu, psdu);
    }

    /// Bluetooth baseband bits round-trip for every ACL type, any payload,
    /// any clock.
    #[test]
    fn bt_air_bits_round_trip(
        len_frac in 0.0f64..1.0,
        type_idx in 0usize..6,
        clock in 0u32..(1 << 20),
        lt_addr in 1u8..8,
    ) {
        let ptype = [
            BtPacketType::Dm1, BtPacketType::Dh1, BtPacketType::Dm3,
            BtPacketType::Dh3, BtPacketType::Dm5, BtPacketType::Dh5,
        ][type_idx];
        let len = ((ptype.max_payload() as f64) * len_frac) as usize;
        let payload: Vec<u8> = (0..len).map(|i| (i * 29 + 3) as u8).collect();
        let pkt = BtPacket::new(0x9E8B33, 0x47, lt_addr, ptype, clock, payload.clone());
        let air = pkt.to_air_bits();
        let parsed = parse_after_access_code(&air[72..], 0x47).expect("parse");
        prop_assert!(parsed.crc_ok);
        prop_assert_eq!(parsed.ptype, ptype);
        prop_assert_eq!(parsed.payload, payload);
        prop_assert_eq!(parsed.lt_addr, lt_addr);
    }

    /// GFSK modulation + channel receiver round-trips DH1 packets under
    /// moderate noise at random channel offsets.
    #[test]
    fn bt_gfsk_rf_round_trip(
        len in 1usize..27,
        clock in 0u32..64,
        offset_mhz in -3i32..=3,
        seed in 0u64..500,
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (i * 17 + 1) as u8).collect();
        let pkt = BtPacket::new(0x9E8B33, 0x47, 1, BtPacketType::Dh1, clock, payload.clone());
        let w = bt_modulate(&pkt, BtTxConfig { sample_rate: 8e6 });
        let mut sig = frequency_shift(&pad(&w.samples, 200, 200), offset_mhz as f64 * 1e6, 8e6);
        GaussianGen::new(seed).add_awgn(&mut sig, 1e-3);
        let mut rx = rfd_phy::bluetooth::demod::BtChannelRx::new(
            0,
            8e6,
            offset_mhz as f64 * 1e6,
            vec![rfd_phy::bluetooth::demod::PiconetId { lap: 0x9E8B33, uap: 0x47 }],
        );
        rx.process(&sig);
        let results = rx.finish();
        prop_assert_eq!(results.len(), 1);
        let parsed = results[0].parsed.as_ref().expect("parsed");
        prop_assert!(parsed.crc_ok);
        prop_assert_eq!(&parsed.payload, &payload);
    }

    /// ZigBee frames round-trip for random payloads.
    #[test]
    fn zigbee_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..100),
        lead in 16usize..120,
    ) {
        let frame = rfd_phy::zigbee::ZigbeeFrame::new(payload);
        let w = rfd_phy::zigbee::modulate(&frame, 4);
        let sig = pad(&w.samples, lead, 64);
        let rx = rfd_phy::zigbee::demodulate(&sig, 4).expect("decode");
        prop_assert_eq!(rx, frame);
    }

    /// Distinct LAPs always yield sync words at BCH distance >= 14.
    #[test]
    fn sync_word_distance(a in 0u32..0x100_0000, b in 0u32..0x100_0000) {
        prop_assume!(a != b);
        let d = (rfd_phy::bluetooth::access_code::sync_word(a)
            ^ rfd_phy::bluetooth::access_code::sync_word(b))
        .count_ones();
        prop_assert!(d >= 14, "laps {a:06x}/{b:06x} distance {d}");
    }
}
